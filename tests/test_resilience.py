"""Tests for the resilience layer: fault plans, the supervised pool,
partial-result salvage, and degradation telemetry.

The deterministic pool tests run ``run_supervised`` directly with
``workers=1`` so worker death cannot race sibling futures; the end-to-end
acceptance tests go through the public engine API with scripted
``EngineConfig.fault_plan`` specs.
"""

from __future__ import annotations

import os
import pathlib
import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.core.engine import SegosIndex
from repro.core.stats import QueryStats
from repro.core.verify import verify_candidates
from repro.datasets import aids_like, sample_queries
from repro.errors import PoolBrokenError, ReproError, WorkerTimeout
from repro.graphs.model import Graph
from repro.perf.parallel import parallel_batch_range_query
from repro.resilience import (
    EMPTY_PLAN,
    DegradationEvent,
    FaultInjected,
    FaultPlan,
    FaultRule,
    PoolTask,
    ResiliencePolicy,
    random_spec,
    resolve_fault_plan,
    run_supervised,
)
from repro.resilience.faults import INJECTION_POINTS


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_empty_specs_are_falsy_noops(self):
        for spec in (None, "", "   ", " ; "):
            plan = FaultPlan.parse(spec)
            assert not plan
            assert plan.fire("worker.crash") is None

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault injection point"):
            FaultPlan.parse("worker.explode")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule key"):
            FaultPlan.parse("worker.crash:color=red")

    def test_malformed_token_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.parse("worker.crash:times")

    def test_times_counts_down(self):
        plan = FaultPlan.parse("worker.crash:times=2")
        assert plan.fire("worker.crash") is not None
        assert plan.fire("worker.crash") is not None
        assert plan.fire("worker.crash") is None

    def test_times_inf_never_burns_out(self):
        plan = FaultPlan.parse("chunk.result:times=inf")
        for _ in range(10):
            assert plan.fire("chunk.result") is not None

    def test_task_filter(self):
        plan = FaultPlan.parse("worker.crash:chunk=1")
        assert plan.fire("worker.crash", task=0) is None
        rule = plan.fire("worker.crash", task=1)
        assert rule is not None and rule.task == 1

    def test_stage_filter(self):
        plan = FaultPlan.parse("pickle.engine:stage=verify")
        assert plan.fire("pickle.engine", stage="batch") is None
        assert plan.fire("pickle.engine", stage="verify") is not None

    def test_seconds_parsed_for_hang(self):
        plan = FaultPlan.parse("worker.hang:seconds=2.5")
        rule = plan.fire("worker.hang")
        assert rule is not None and rule.seconds == 2.5

    def test_multi_rule_plans(self):
        plan = FaultPlan.parse("pool.spawn:times=1; chunk.result:stage=verify")
        assert plan.fire("pool.spawn") is not None
        assert plan.fire("chunk.result", stage="batch") is None
        assert plan.fire("chunk.result", stage="verify") is not None

    def test_resolve_passthrough_keeps_countdown_state(self):
        plan = FaultPlan.parse("worker.crash:times=1")
        plan.fire("worker.crash")
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan(plan).fire("worker.crash") is None

    def test_resolve_falls_back_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "pool.spawn:times=3")
        plan = resolve_fault_plan(None)
        assert plan and plan.rules[0].point == "pool.spawn"
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert not resolve_fault_plan(None)

    def test_random_spec_deterministic_and_valid(self):
        for seed in range(50):
            spec = random_spec(seed)
            assert spec == random_spec(seed)
            plan = FaultPlan.parse(spec)
            assert plan and plan.rules[0].point in INJECTION_POINTS

    def test_random_spec_never_draws_io_points(self):
        # An ambient io.* rule would SIGKILL the chaos leg's own pytest
        # process mid-save; those sites belong to random_io_spec.
        from repro.resilience.faults import POOL_POINTS

        for seed in range(200):
            point = random_spec(seed).split(":", 1)[0]
            assert point in POOL_POINTS

    def test_offset_key_parsed_for_torn_writes(self):
        plan = FaultPlan.parse("io.write:stage=delta.record:offset=17")
        rule = plan.fire("io.write", stage="delta.record")
        assert rule is not None and rule.offset == 17

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset"):
            FaultPlan.parse("io.write:offset=-1")

    def test_random_io_spec_deterministic_and_hits_real_sites(self):
        from repro.resilience.faults import (
            IO_REWRITE_SITES,
            IO_SAVE_SITES,
            random_io_spec,
        )

        sites = set(IO_SAVE_SITES + IO_REWRITE_SITES)
        for seed in range(50):
            spec = random_io_spec(seed)
            assert spec == random_io_spec(seed)
            rule = FaultPlan.parse(spec).rules[0]
            assert (rule.point, rule.stage) in sites
            assert rule.times == 1

    def test_fault_injected_is_a_repro_error(self):
        assert issubclass(FaultInjected, ReproError)


# ----------------------------------------------------------------------
# Policy resolution
# ----------------------------------------------------------------------
class TestResiliencePolicy:
    def test_defaults(self):
        policy = ResiliencePolicy()
        assert policy.task_timeout is None
        assert policy.max_pool_retries == 2
        assert policy.retry_backoff == pytest.approx(0.05)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_MAX_POOL_RETRIES", "4")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        policy = ResiliencePolicy.from_env()
        assert policy == ResiliencePolicy(7.5, 4, 0.25)

    def test_from_config_and_engine_kwargs(self):
        engine = SegosIndex(task_timeout=3.0, max_pool_retries=5, retry_backoff=0.1)
        policy = ResiliencePolicy.from_config(engine.config)
        assert policy == ResiliencePolicy(3.0, 5, 0.1)

    def test_backoff_is_exponential(self):
        policy = ResiliencePolicy(retry_backoff=0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)
        assert ResiliencePolicy(retry_backoff=0.0).backoff_seconds(5) == 0.0


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
class TestConfigKnobs:
    def test_env_then_kwarg_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "9")
        monkeypatch.setenv("REPRO_FAULT_PLAN", "pool.spawn")
        config = EngineConfig.from_env()
        assert config.task_timeout == 9.0
        assert config.fault_plan == "pool.spawn"
        config = EngineConfig.from_env(task_timeout=1.0, fault_plan=None)
        assert config.task_timeout == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig.from_env(task_timeout=0)
        with pytest.raises(ValueError):
            EngineConfig.from_env(max_pool_retries=-1)
        with pytest.raises(ValueError):
            EngineConfig.from_env(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            EngineConfig.from_env(fault_plan="worker.explode")


# ----------------------------------------------------------------------
# The supervised pool (workers=1 keeps worker death deterministic)
# ----------------------------------------------------------------------
def _double(x):
    return 2 * x


def _sleep_forever(x):  # pragma: no cover - killed by the supervisor
    time.sleep(60)
    return x


def _counted_double(marker_dir, task_id, x):
    """Append one line per *execution* so tests can prove non-recomputation."""
    path = pathlib.Path(marker_dir) / f"calls-{task_id}.txt"
    with open(path, "a") as fh:
        fh.write("x\n")
    return 2 * x


def _executions(marker_dir, task_id):
    path = pathlib.Path(marker_dir) / f"calls-{task_id}.txt"
    return len(path.read_text().splitlines()) if path.exists() else 0


FAST = ResiliencePolicy(task_timeout=None, max_pool_retries=2, retry_backoff=0.0)


def _tasks(n=3):
    return [PoolTask(i, _double, (i,)) for i in range(n)]


class TestRunSupervised:
    def test_healthy_run(self):
        outcome = run_supervised(_tasks(), workers=1, policy=FAST)
        assert outcome.ok
        assert outcome.results == {0: 0, 1: 2, 2: 4}
        assert outcome.rounds == 1
        assert outcome.retries == 0
        assert outcome.events == []

    def test_chunk_result_fault_retried(self):
        faults = FaultPlan.parse("chunk.result:times=1")
        outcome = run_supervised(_tasks(), workers=1, policy=FAST, faults=faults)
        assert outcome.ok
        assert outcome.results == {0: 0, 1: 2, 2: 4}
        assert outcome.retries == 1
        (event,) = outcome.events
        assert event.point == "chunk.result" and event.injected
        assert event.fallback == "retry" and event.lost == 0

    def test_pool_spawn_fault_respawned(self):
        faults = FaultPlan.parse("pool.spawn:times=1")
        outcome = run_supervised(_tasks(), workers=1, policy=FAST, faults=faults)
        assert outcome.ok
        (event,) = outcome.events
        assert event.point == "pool.spawn" and event.injected
        assert event.fallback == "respawn" and event.requeued == 3

    def test_worker_crash_salvages_completed_tasks(self, tmp_path):
        """Satellite: crash one of three tasks; the other two are *reused*.

        With one worker the tasks run strictly in order: task 0 completes,
        the crash directive kills the worker on task 1, task 2 never
        starts.  The retry round must re-run only tasks 1 and 2 — the
        worker-side execution counter proves task 0 was salvaged, not
        recomputed.
        """
        marker = str(tmp_path)
        tasks = [PoolTask(i, _counted_double, (marker, i, i)) for i in range(3)]
        faults = FaultPlan.parse("worker.crash:chunk=1:times=1")
        outcome = run_supervised(tasks, workers=1, policy=FAST, faults=faults)
        assert outcome.ok
        assert outcome.results == {0: 0, 1: 2, 2: 4}
        assert [_executions(marker, i) for i in range(3)] == [1, 1, 1]
        (event,) = outcome.events
        assert event.point == "worker.crash" and event.injected
        assert event.salvaged == 1 and event.requeued == 2 and event.lost == 0
        assert event.fallback == "respawn" and event.retries == 1

    def test_worker_hang_bounded_by_task_timeout(self):
        policy = ResiliencePolicy(task_timeout=1.0, max_pool_retries=2, retry_backoff=0.0)
        faults = FaultPlan.parse("worker.hang:times=1:seconds=60")
        started = time.perf_counter()
        outcome = run_supervised(_tasks(), workers=1, policy=policy, faults=faults)
        elapsed = time.perf_counter() - started
        assert outcome.ok
        assert elapsed < 30, f"hung worker not reaped in time ({elapsed:.1f}s)"
        assert any(e.point == "worker.hang" and e.injected for e in outcome.events)

    def test_circuit_breaker_opens_after_no_progress(self):
        policy = ResiliencePolicy(task_timeout=None, max_pool_retries=1, retry_backoff=0.0)
        faults = FaultPlan.parse("chunk.result:chunk=0:times=inf")
        outcome = run_supervised(_tasks(), workers=1, policy=policy, faults=faults)
        assert not outcome.ok
        assert outcome.unfinished == [0]
        assert outcome.results == {1: 2, 2: 4}  # healthy siblings salvaged
        terminal = outcome.events[-1]
        assert terminal.fallback == "serial" and terminal.lost == 1

    def test_deadline_kills_pool_and_abandons(self):
        tasks = [PoolTask(i, _sleep_forever, (i,)) for i in range(2)]
        started = time.perf_counter()
        outcome = run_supervised(
            tasks, workers=1, policy=FAST, deadline=0.3, started=started
        )
        elapsed = time.perf_counter() - started
        assert outcome.deadline_blown
        assert elapsed < 30, f"deadline did not bound wall-clock ({elapsed:.1f}s)"
        assert set(outcome.unfinished) == {0, 1}
        (event,) = outcome.events
        assert event.point == "deadline" and event.fallback == "abandon"
        assert event.lost == 2

    def test_errors_exported(self):
        assert issubclass(PoolBrokenError, ReproError)
        assert issubclass(WorkerTimeout, ReproError)
        exc = WorkerTimeout(3, 1.5)
        assert exc.task_id == 3 and exc.timeout == 1.5


# ----------------------------------------------------------------------
# End-to-end: batch queries under faults
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus():
    data = aids_like(16, seed=5, mean_order=6, stddev=1)
    graphs = {str(gid): g for gid, g in data.graphs.items()}
    queries = sample_queries(data, 6, seed=9)
    return graphs, queries


def _answers(results):
    return [
        (sorted(map(str, r.candidates)), sorted(map(str, r.matches)))
        for r in results
    ]


class TestBatchUnderFaults:
    def test_worker_crash_acceptance(self, corpus):
        """The ISSUE's acceptance bar: one scripted crash must yield one
        retry, zero lost tasks, exactly one event, and identical results."""
        graphs, queries = corpus
        clean = SegosIndex(graphs).batch_range_query(queries, tau=2)
        engine = SegosIndex(
            graphs, fault_plan="worker.crash:times=1", retry_backoff=0.0
        )
        faulted = engine.batch_range_query(queries, tau=2, workers=2)
        assert _answers(faulted) == _answers(clean)
        events = faulted[0].stats.degradations
        assert len(events) == 1
        (event,) = events
        assert event.point == "worker.crash" and event.injected
        assert event.retries == 1
        assert event.lost == 0
        assert event.fallback == "respawn"

    def test_injected_pickle_fault_falls_back_serial(self, corpus):
        graphs, queries = corpus
        clean = SegosIndex(graphs).batch_range_query(queries, tau=2)
        engine = SegosIndex(graphs, fault_plan="pickle.engine")
        faulted = engine.batch_range_query(queries, tau=2, workers=2)
        assert _answers(faulted) == _answers(clean)
        (event,) = faulted[0].stats.degradations
        assert event.point == "pickle.engine" and event.injected
        assert event.fallback == "serial"

    def test_real_pickle_failure_recorded_not_swallowed(self, corpus):
        """The sqlite backend cannot travel to workers; the fallback must
        say so (this used to be a silent bare-except)."""
        graphs, queries = corpus
        engine = SegosIndex(graphs, backend="sqlite")
        results = engine.batch_range_query(queries, tau=2, workers=2)
        (event,) = results[0].stats.degradations
        assert event.point == "pickle.engine" and not event.injected
        assert "pickle" in event.cause.lower() or "Connection" in event.cause

    def test_unrelated_pickle_time_error_propagates(self, corpus):
        """Only pickling-related errors mean "fall back serially"; a
        genuine bug raised while serialising must propagate."""
        graphs, queries = corpus
        engine = _BrokenGetstateIndex(graphs)
        with pytest.raises(RuntimeError, match="corrupted state"):
            parallel_batch_range_query(engine, queries, 2, workers=2)

    def test_circuit_breaker_salvages_whole_batch_serially(self, corpus):
        graphs, queries = corpus
        clean = SegosIndex(graphs).batch_range_query(queries, tau=2)
        engine = SegosIndex(
            graphs,
            fault_plan="worker.crash:times=inf",
            max_pool_retries=1,
            retry_backoff=0.0,
        )
        faulted = engine.batch_range_query(queries, tau=2, workers=2)
        assert _answers(faulted) == _answers(clean)
        events = faulted[0].stats.degradations
        assert events[-1].fallback == "serial" and events[-1].lost > 0


class _BrokenGetstateIndex(SegosIndex):
    def __getstate__(self):
        raise RuntimeError("corrupted state")


# ----------------------------------------------------------------------
# End-to-end: verification under faults
# ----------------------------------------------------------------------
def _rand_graph(n, seed, extra=3, labels="abcd"):
    rng = random.Random(seed)
    ls = [rng.choice(labels) for _ in range(n)]
    edges = [(i, i + 1) for i in range(n - 1)]
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        edge = (min(u, v), max(u, v))
        if edge not in edges:
            edges.append(edge)
    return Graph(ls, edges)


@pytest.fixture(scope="module")
def verify_corpus():
    """A corpus/query pair whose bounds stay inconclusive, so several A*
    runs actually reach the worker pool."""
    graphs = {f"v{i}": _rand_graph(7, seed=i) for i in range(14)}
    query = _rand_graph(7, seed=99)
    baseline = verify_candidates(graphs, query, sorted(graphs), 4)
    assert baseline.astar_runs > 1  # precondition for every pool test below
    return graphs, query, baseline


class TestVerifyUnderFaults:
    def test_worker_crash_identical_verdicts(self, verify_corpus):
        graphs, query, baseline = verify_corpus
        report = verify_candidates(
            graphs,
            query,
            sorted(graphs),
            4,
            workers=2,
            resilience=ResiliencePolicy(retry_backoff=0.0),
            fault_plan="worker.crash:times=1",
        )
        assert report.matches == baseline.matches
        assert report.rejected == baseline.rejected
        (event,) = report.degradations
        assert event.point == "worker.crash" and event.stage == "verify"

    def test_pickle_fault_serial_fallback(self, verify_corpus):
        graphs, query, baseline = verify_corpus
        report = verify_candidates(
            graphs, query, sorted(graphs), 4, workers=2, fault_plan="pickle.engine"
        )
        assert report.matches == baseline.matches
        assert report.rejected == baseline.rejected
        (event,) = report.degradations
        assert event.point == "pickle.engine" and event.fallback == "serial"

    def test_blown_deadline_bounds_wall_clock(self, verify_corpus):
        """Satellite: a hung worker must not make verify_deadline a lie."""
        graphs, query, _ = verify_corpus
        started = time.perf_counter()
        report = verify_candidates(
            graphs,
            query,
            sorted(graphs),
            4,
            workers=2,
            deadline=0.5,
            resilience=ResiliencePolicy(retry_backoff=0.0),
            fault_plan="worker.hang:times=inf:seconds=60",
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 30, f"deadline did not bound wall-clock ({elapsed:.1f}s)"
        assert report.undecided  # abandoned runs are undecided, not lost
        assert any(e.point == "deadline" for e in report.degradations)

    def test_session_config_reaches_verify_pool(self, verify_corpus):
        graphs, query, _ = verify_corpus
        engine = SegosIndex(graphs, retry_backoff=0.0)
        clean = engine.range_query(query, tau=4.0, verify="exact")
        session = engine.session(
            verify_workers=2, fault_plan="worker.crash:times=1:stage=verify"
        )
        faulted = session.range_query(query, tau=4.0, verify="exact")
        assert faulted.matches == clean.matches
        (event,) = faulted.stats.degradations
        assert event.point == "worker.crash" and event.stage == "verify"


# ----------------------------------------------------------------------
# Property: any scripted single fault leaves answers byte-identical
# ----------------------------------------------------------------------
SINGLE_FAULTS = (
    "pickle.engine:times=1",
    "pool.spawn:times=1",
    "worker.crash:times=1",
    "worker.hang:times=1:seconds=60",
    "chunk.result:times=1",
)


class TestSingleFaultProperty:
    @settings(deadline=None, max_examples=len(SINGLE_FAULTS))
    @given(spec=st.sampled_from(SINGLE_FAULTS))
    def test_batch_identical_to_serial_under_any_fault(self, corpus, spec):
        graphs, queries = corpus
        serial = SegosIndex(graphs)._serial_batch_range_query(queries, 2)
        engine = SegosIndex(
            graphs, fault_plan=spec, task_timeout=1.0, retry_backoff=0.0
        )
        faulted = engine.batch_range_query(queries, tau=2, workers=2)
        assert _answers(faulted) == _answers(serial)
        events = faulted[0].stats.degradations
        assert events, f"fault {spec!r} left no telemetry"
        assert all(e.injected for e in events)

    @settings(deadline=None, max_examples=len(SINGLE_FAULTS))
    @given(spec=st.sampled_from(SINGLE_FAULTS))
    def test_verify_identical_to_serial_under_any_fault(self, verify_corpus, spec):
        graphs, query, baseline = verify_corpus
        report = verify_candidates(
            graphs,
            query,
            sorted(graphs),
            4,
            workers=2,
            resilience=ResiliencePolicy(task_timeout=1.0, retry_backoff=0.0),
            fault_plan=spec,
        )
        assert report.matches == baseline.matches
        assert report.rejected == baseline.rejected
        assert not report.undecided
        assert report.degradations, f"fault {spec!r} left no telemetry"


# ----------------------------------------------------------------------
# Telemetry surfaces
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_event_summary_mentions_the_story(self):
        event = DegradationEvent(
            point="worker.crash",
            stage="batch",
            injected=True,
            retries=1,
            salvaged=2,
            requeued=1,
            fallback="respawn",
        )
        line = event.summary()
        assert "worker.crash[batch]" in line
        assert "retry #1" in line and "salvaged 2" in line
        assert "requeued 1" in line and "respawn" in line

    def test_stats_summary_and_merge_fold_degradations(self):
        stats = QueryStats()
        assert "degraded" not in stats.summary()
        stats.degradations.append(DegradationEvent(point="pool.broken", retries=1))
        other = QueryStats()
        other.degradations.append(DegradationEvent(point="deadline"))
        stats.merge(other)
        assert len(stats.degradations) == 2
        assert "degraded: 2 event(s), 1 retries" in stats.summary()

    def test_explain_renders_resilience_lines(self, corpus):
        from repro.core.explain import explain_range_query

        graphs, queries = corpus
        engine = SegosIndex(graphs)
        explanation = explain_range_query(engine, queries[0], tau=1)
        explanation.stats.degradations.append(
            DegradationEvent(point="worker.crash", stage="batch", fallback="respawn")
        )
        assert "resilience: worker.crash[batch]" in explanation.render()

    def test_empty_plan_shared_instance_never_fires(self):
        assert not EMPTY_PLAN
        assert EMPTY_PLAN.fire("worker.crash") is None
        assert EMPTY_PLAN.rules == []

    def test_fault_rule_defaults(self):
        rule = FaultRule(point="worker.hang")
        assert rule.times == 1 and rule.seconds == 60.0


# ----------------------------------------------------------------------
# Guard: the supervised pool owns every ProcessPoolExecutor
# ----------------------------------------------------------------------
class TestPoolOwnershipGuard:
    def test_no_process_pool_outside_resilience(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.parent.name == "resilience":
                continue
            if "ProcessPoolExecutor" in path.read_text():
                offenders.append(str(path.relative_to(src)))
        assert offenders == [], (
            "hand-rolled pools found outside repro.resilience.pool: "
            f"{offenders}"
        )
