"""Tests for the benchmark support layer."""

from __future__ import annotations

import pytest

from repro.baselines import LinearScan
from repro.bench import (
    MethodRun,
    ParamGrid,
    SCALED_DEFAULTS,
    Series,
    average_stats,
    format_table,
    run_queries,
    time_build,
)
from repro.datasets import aids_like, sample_queries


class TestHarness:
    def test_run_queries_averages(self):
        data = aids_like(8, seed=1, mean_order=5, stddev=1)
        queries = sample_queries(data, 2, seed=3)
        run = run_queries(LinearScan(data.graphs), queries, tau=1)
        assert run.method == "Linear-Exact"
        assert run.avg_time > 0
        assert run.avg_accessed == len(data.graphs)

    def test_run_queries_empty_workload(self):
        data = aids_like(3, seed=1, mean_order=4, stddev=1)
        with pytest.raises(ValueError):
            run_queries(LinearScan(data.graphs), [], tau=1)

    def test_time_build(self):
        data = aids_like(5, seed=2, mean_order=4, stddev=1)
        method, elapsed = time_build(lambda: LinearScan(data.graphs))
        assert isinstance(method, LinearScan)
        assert elapsed >= 0

    def test_average_stats(self):
        assert average_stats([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            average_stats([])

    def test_series_and_table(self):
        s1 = Series("SEGOS")
        s1.add(1, 0.5)
        s1.add(2, 0.25)
        s2 = Series("C-Star")
        s2.add(1, 1.0)
        table = format_table("Fig X", "tau", [1, 2], [s1, s2])
        assert "Fig X" in table
        assert "SEGOS" in table
        assert "C-Star" in table
        assert "-" in table  # missing point for s2 at x=2

    def test_param_grid_defaults(self):
        grid = SCALED_DEFAULTS
        assert isinstance(grid, ParamGrid)
        assert grid.default_k in grid.k_values
        assert grid.default_h in grid.h_values
        assert grid.default_db_size in grid.db_sizes
        assert grid.default_tau in grid.tau_values
