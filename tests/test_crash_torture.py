"""Kill-torture: SIGKILL a real writer at every I/O fault point.

Each round spawns a fresh Python subprocess that loads a saved database,
removes one graph, and saves — with a ``REPRO_FAULT_PLAN`` that SIGKILLs
it at one specific ``(point, stage)`` site of the write path.  The parent
then reopens the pair and asserts the recovery invariant:

* ``load_index`` always succeeds and answers **byte-identically** to a
  forced rebuild of whatever text survived;
* the surviving graph set is the *old* state or the *new* state, never a
  mix — degrading to a rebuild is allowed, wrong answers never are;
* ``repro index scrub --repair`` leaves a state that still loads
  consistently (and, for the orphan-record window, restores a mappable
  sidecar without a rebuild).

Unlike ``tests/test_durability.py`` (which simulates crashes in-process),
these are real ``SIGKILL``s: no ``finally`` blocks, no interpreter
shutdown, exactly what a power-cut-to-the-process looks like.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.core.persistence import load_index, save_index
from repro.core.engine import SegosIndex
from repro.datasets import aids_like
from repro.perf.diskcat import read_header, scrub_sidecar
from repro.resilience.faults import (
    IO_REWRITE_SITES,
    IO_SAVE_SITES,
    FaultPlan,
    random_io_spec,
)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: The subprocess body: load, mutate, save — and prove it died mid-save.
WRITER = """
import sys
from repro.core.persistence import load_index, save_index
path, mode = sys.argv[1], sys.argv[2]
engine = load_index(path, mmap=(mode == "delta"))
engine.remove(sorted(engine.gids())[0])
save_index(engine, path)
print("SURVIVED")
"""


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """The parent's own loads/saves must never trip an ambient plan."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)


def build_pair(tmp_path):
    """A saved pair with one delta segment (so appends have a baseline)."""
    data = aids_like(12, seed=7, mean_order=8, stddev=2)
    engine = SegosIndex(data.graphs)
    path = tmp_path / "db.segos"
    save_index(engine, path)
    engine.remove(sorted(engine.gids())[0])
    save_index(engine, path)
    return path, sorted(engine.gids())


def run_writer(path, spec, mode):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env["REPRO_FAULT_PLAN"] = spec
    return subprocess.run(
        [sys.executable, "-c", WRITER, str(path), mode],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def assert_old_or_new(path, old_gids, removed_gid, context):
    """The core invariant: consistent old-or-new state, never a mix."""
    loaded = load_index(path)
    rebuilt = load_index(path, mmap=False)
    got = sorted(str(g) for g in loaded.gids())
    assert got == sorted(str(g) for g in rebuilt.gids()), context
    old = sorted(old_gids)
    new = sorted(set(old_gids) - {removed_gid})
    assert got in (old, new), f"{context}: mixed state {got}"
    query = rebuilt.graph(got[0])
    a = loaded.range_query(query, tau=2, verify="exact")
    b = rebuilt.range_query(query, tau=2, verify="exact")
    assert list(a.candidates) == list(b.candidates), context
    assert sorted(a.matches) == sorted(b.matches), context
    return loaded


def torture_round(tmp_path, spec, mode):
    path, old_gids = build_pair(tmp_path)
    removed = old_gids[0]
    context = f"plan={spec!r} mode={mode}"
    proc = run_writer(path, spec, mode)
    assert proc.returncode == -9, (
        f"{context}: writer survived its own crash point "
        f"(rc={proc.returncode}, out={proc.stdout!r}, err={proc.stderr!r})"
    )
    assert "SURVIVED" not in proc.stdout, context
    assert_old_or_new(path, old_gids, removed, context)
    # Scrub must cope with whatever the crash left; after a repair the
    # pair must still satisfy the same invariant.
    report = scrub_sidecar(str(path) + ".segosx", repair=True)
    assert_old_or_new(path, old_gids, removed, f"{context} post-scrub")
    return report


def _spec(point, stage, offset=None):
    spec = f"{point}:stage={stage}:times=1"
    if offset is not None:
        spec += f":offset={offset}"
    return spec


class TestKillAtEverySite:
    @pytest.mark.parametrize("point,stage", IO_SAVE_SITES)
    def test_delta_append_path(self, tmp_path, point, stage):
        torture_round(tmp_path, _spec(point, stage), "delta")

    @pytest.mark.parametrize("point,stage", IO_REWRITE_SITES)
    def test_full_rewrite_path(self, tmp_path, point, stage):
        torture_round(tmp_path, _spec(point, stage), "rewrite")

    @pytest.mark.parametrize(
        "stage,offset",
        [("delta.record", 7), ("delta.header", 7), ("delta.header", 0)],
    )
    def test_torn_write_offsets(self, tmp_path, stage, offset):
        torture_round(tmp_path, _spec("io.write", stage, offset), "delta")


class TestRecoveryQuality:
    def test_orphan_record_window_salvages_without_rebuild(self, tmp_path):
        """The acceptance bar: a crash after the record barrier but before
        the header rewrite must NOT force a full rebuild — load salvages,
        and scrub --repair makes the sidecar self-consistent again."""
        path, old_gids = build_pair(tmp_path)
        before = read_header(str(path) + ".segosx")
        # io.write at delta.header with the default offset=0: the record is
        # durable (fsync barrier already crossed) but no header byte lands.
        proc = run_writer(path, _spec("io.write", "delta.header"), "delta")
        assert proc.returncode == -9
        loaded = load_index(path)
        handle = loaded.disk_handle()
        assert handle is not None, "orphan-record crash forced a rebuild"
        assert handle.disk_generation == before.generation + 1
        assert sorted(loaded.gids()) == sorted(old_gids[1:])
        report = scrub_sidecar(str(path) + ".segosx", repair=True)
        assert report.repaired and not report.fatal
        after = read_header(str(path) + ".segosx")
        assert after.generation == before.generation + 1
        assert after.delta_count == before.delta_count + 1
        assert load_index(path).disk_handle() is not None
        assert scrub_sidecar(str(path) + ".segosx").clean

    def test_seeded_random_plan(self, tmp_path):
        """The crash-torture CI leg's entry point: one random site drawn
        from a printed seed, reproducible as
        ``REPRO_TORTURE_SEED=<seed> pytest tests/test_crash_torture.py``."""
        seed = int(os.environ.get("REPRO_TORTURE_SEED", "20260808"))
        spec = random_io_spec(seed)
        rule = FaultPlan.parse(spec).rules[0]
        mode = "rewrite" if rule.stage.startswith("sidecar.") else "delta"
        print(f"torture seed={seed} plan={spec!r} mode={mode}")
        torture_round(tmp_path, spec, mode)
