"""The staged query executor: one TA → CA → verify path for every query mode.

The paper's pipeline is a single conceptual dataflow — top-k sub-unit
search (Algorithm 2) → CA graph pruning (Algorithm 3) → exact verification
— but it used to be executed through five divergent code paths (plain
range queries, batches, the pipelined scheduler, kNN rings and similarity
joins), each hand-threading its own counters, wall clocks and cache
snapshots.  This module makes the dataflow explicit:

* a :class:`Stage` is a composable unit with a uniform
  ``run(ctx) -> ctx`` contract (:class:`TAStage`, :class:`CAStage`,
  :class:`VerifyStage`, and the pipelined fused stage in
  :mod:`repro.core.pipeline`);
* a :class:`QueryPlan` is an ordered tuple of stages;
* :func:`execute_plan` runs a plan over an :class:`ExecutionContext`,
  capturing per-stage wall clock into ``QueryStats.stage_seconds`` and the
  SED-cache delta automatically — no stage does its own timing;
* a :class:`QuerySession` owns the state *shared across related queries*
  (the top-k sub-unit cache plus a resolved :class:`EngineConfig`) and is
  the public API batches, joins and kNN rings build on.

Every front-end — ``SegosIndex.range_query``, ``batch_range_query``,
``PipelinedSegos``, ``knn_query``, ``similarity_join``,
``SubgraphSearch`` — builds a plan and hands it to this one executor.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..config import EngineConfig
from ..graphs.model import Graph
from ..graphs.star import Star, decompose
from ..obs.metrics import GLOBAL_METRICS, record_query_metrics
from ..obs.trace import NULL_TRACER, Trace, Tracer, activate, current_tracer
from ..perf.sed_cache import GLOBAL_SED_CACHE, publish_cache_metrics
from ..resilience.pool import ResiliencePolicy
from .ca_search import ca_range_query
from .graph_lists import QueryStarLists, build_all_lists
from .stats import QueryStats, WallClock
from .ta_search import TopKResult
from .tiers import AnchorTier, resolve_tier_chain
from .verify import verify_candidates

if TYPE_CHECKING:  # pragma: no cover - typing only (engine imports us)
    from .engine import SegosIndex


@dataclass
class QueryResult:
    """Everything a range query produces.

    Attributes
    ----------
    candidates:
        gids passing every filter; superset of the true answers.
    matches:
        gids *known* to satisfy ``λ(q, g) ≤ τ`` (upper-bound confirmed,
        plus exact verification when requested).
    stats:
        filtering counters (see :class:`repro.core.stats.QueryStats`),
        including the executor's per-stage ``stage_seconds``.
    elapsed:
        wall-clock seconds spent inside the executor.
    verified:
        True when ``matches`` is exactly the answer set.
    trace:
        span-tree handle for traced executions (see
        :mod:`repro.obs.trace`); ``None`` when tracing was off.
    """

    candidates: List[object]
    matches: Set[object]
    stats: QueryStats
    elapsed: float
    verified: bool
    trace: Optional[Trace] = None


@dataclass
class ExecutionContext:
    """Mutable state threaded through the stages of one query execution.

    Stages read their knobs exclusively from ``config`` (already resolved:
    env < engine < per-call) and communicate through the fields below —
    ``lists`` flows TA → CA, ``candidates``/``confirmed`` flow CA → verify.
    """

    engine: "SegosIndex"
    query: Graph
    tau: float
    config: EngineConfig
    verify: str = "none"
    #: metrics label for this execution's mode (range / subsearch / ...)
    mode: str = "range"
    #: the tracer carried through every stage (NULL_TRACER when off)
    tracer: object = NULL_TRACER
    #: True when this context created its tracer (and so owns exporting
    #: to ``config.trace_path``); False under an ambient ``trace_query``
    #: or a worker-side tracer, whose owner exports instead
    owns_tracer: bool = False
    #: span-tree handle filled in by the executor on traced runs
    trace: Optional[Trace] = None
    #: signature → TopKResult, shared across queries via a QuerySession
    topk_cache: Dict[str, TopKResult] = field(default_factory=dict)
    stats: QueryStats = field(default_factory=QueryStats)
    # --- stage outputs -------------------------------------------------
    query_stars: List[Star] = field(default_factory=list)
    #: gids proven non-answers by the embedding pre-filter tier; the CA
    #: scan (serial and pipelined alike) never accumulates state for them
    embed_excluded: frozenset = frozenset()
    lists: List[QueryStarLists] = field(default_factory=list)
    candidates: List[object] = field(default_factory=list)
    confirmed: Set[object] = field(default_factory=set)
    matches: Set[object] = field(default_factory=set)
    verified: bool = False
    elapsed: float = 0.0

    def to_result(self) -> QueryResult:
        """Package the context's outcome as the public result object."""
        return QueryResult(
            candidates=self.candidates,
            matches=self.matches,
            stats=self.stats,
            elapsed=self.elapsed,
            verified=self.verified,
            trace=self.trace,
        )


#: Public per-call aliases for the tuning knobs: every query front-end
#: accepts the short names and maps them onto the canonical
#: :class:`EngineConfig` fields before overriding.
CALL_ALIASES: Mapping[str, str] = {
    "workers": "verify_workers",
    "timeout": "verify_deadline",
}


def apply_call_aliases(
    overrides: Dict[str, object],
    aliases: Mapping[str, str] = CALL_ALIASES,
) -> Dict[str, object]:
    """Map public per-call aliases onto their canonical config fields.

    ``workers=4`` becomes ``verify_workers=4`` (``batch_workers`` on the
    batch front-ends) and ``timeout=2.5`` becomes ``verify_deadline=2.5``.
    Passing both an alias and its canonical name is a ``TypeError`` — one
    call must not say two different things about one knob.
    """
    resolved = dict(overrides)
    for alias, canonical in aliases.items():
        if alias not in resolved:
            continue
        value = resolved.pop(alias)
        if value is None:
            continue
        if resolved.get(canonical) is not None:
            raise TypeError(
                f"pass either {alias!r} or {canonical!r}, not both"
            )
        resolved[canonical] = value
    return resolved


def resolve_tracer(config: EngineConfig) -> Tuple[object, bool]:
    """The tracer an execution should carry, and whether it owns it.

    Precedence: an ambient tracer (``with trace_query():`` around the
    call, or the worker-side tracer installed by the supervised pool)
    joins the existing trace; otherwise ``config.trace`` starts a fresh
    one; otherwise the shared null tracer rides along for free.
    """
    ambient = current_tracer()
    if ambient is not None:
        return ambient, False
    if config.trace:
        return Tracer(), True
    return NULL_TRACER, False


@contextmanager
def traced_scope(config: EngineConfig, name: str, **attrs) -> Iterator[object]:
    """One trace around a multi-query operation (batch, join, kNN rings).

    Resolves a tracer exactly like a single execution would, installs it
    as ambient (so every nested :func:`execute_plan` joins it instead of
    starting its own), opens one *name* span over the whole block, and —
    for owned tracers — appends the finished spans to ``config.trace_path``
    on exit.  With tracing off this yields :data:`NULL_TRACER` at the cost
    of one function call.
    """
    tracer, owns_tracer = resolve_tracer(config)
    if not tracer.enabled:
        yield tracer
        return
    with activate(tracer):
        with tracer.span(name, **attrs):
            yield tracer
    if owns_tracer and config.trace_path:
        from ..obs.export import write_spans_jsonl

        write_spans_jsonl(tracer.drain_unexported(), config.trace_path)


def make_context(
    engine: "SegosIndex",
    query: Graph,
    tau: float,
    *,
    config: EngineConfig,
    verify: str = "none",
    mode: str = "range",
    topk_cache: Optional[Dict[str, TopKResult]] = None,
) -> ExecutionContext:
    """Validate the public query arguments and assemble a fresh context."""
    if query.order == 0:
        raise ValueError("query graph must not be empty")
    if tau < 0:
        raise ValueError("tau must be non-negative")
    if verify not in ("none", "exact"):
        raise ValueError(f"unknown verify mode {verify!r}")
    tracer, owns_tracer = resolve_tracer(config)
    return ExecutionContext(
        engine=engine,
        query=query,
        tau=tau,
        config=config,
        verify=verify,
        mode=mode,
        tracer=tracer,
        owns_tracer=owns_tracer,
        topk_cache=topk_cache if topk_cache is not None else {},
    )


class Stage:
    """One composable step of a query plan.

    Subclasses set ``name`` (the key under which the executor records the
    stage's wall clock in ``QueryStats.stage_seconds``) and implement
    :meth:`run`, mutating and returning the context.
    """

    name = "stage"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        raise NotImplementedError


class TAStage(Stage):
    """Top-k sub-unit search (Algorithm 2) + graph score-list construction.

    Decomposes the query into stars and builds, per star occurrence, the
    two size-side graph lists — memoising top-k searches by signature in
    the context's (possibly session-shared) cache.
    """

    name = "ta"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        ctx.query_stars = decompose(ctx.query)
        ta_results: List[TopKResult] = []
        ctx.lists = build_all_lists(
            ctx.engine.index,
            ctx.query_stars,
            ctx.query.order,
            ctx.config.k,
            topk_cache=ctx.topk_cache,
            ta_results=ta_results,
            backend=ctx.config.topk_backend,
        )
        ctx.stats.ta_searches = len(ta_results)
        ctx.stats.ta_accesses = sum(r.accesses for r in ta_results)
        for result in ta_results:
            ctx.stats.count_topk_backend(result.backend, result.scan_width)
        return ctx


class EmbedStage(Stage):
    """The embedding pre-filter tier: one vectorized sweep before TA.

    Scores the admissible label/degree bound of every database graph
    against the query (:meth:`repro.perf.columnar.GraphEmbeddings.lower_bounds`)
    and marks graphs whose bound already exceeds τ·1 — provable
    non-answers, since the bound never exceeds the exact GED — as
    excluded.  The CA scan then skips their state entirely while walking
    the same cursor/checkpoint cadence, so every surviving graph sees the
    exact same bound evaluations as an unfiltered run.
    """

    name = "embed"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        embeddings = ctx.engine.embeddings(stats=ctx.stats)
        bounds = embeddings.lower_bounds(ctx.query)
        excluded = set()
        tau = ctx.tau
        for gid, bound in zip(embeddings.gids, bounds):
            value = float(bound)
            ctx.stats.record_tier_bound("embed", value)
            if value > tau:
                excluded.add(gid)
                ctx.stats.count_prune("embed")
        ctx.embed_excluded = frozenset(excluded)
        return ctx


class AnchorStage(Stage):
    """The anchored assignment tier between CA and exact verification.

    One linear-assignment solve per unconfirmed candidate yields a lower
    bound (prunes candidates the aggregation bounds let through) *and*
    anchors a vertex mapping whose edit cost is an upper bound (settles
    candidates as matches without paying for an A* run —
    ``stats.anchor_settled`` counts those).
    """

    name = "anchor"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        if not ctx.candidates:
            return ctx
        tier = AnchorTier(ctx.config.assignment_backend)
        survivors: List[object] = []
        for gid in ctx.candidates:
            if gid in ctx.confirmed:
                survivors.append(gid)
                continue
            lower, upper = tier.bounds(ctx.query, ctx.engine._graphs[gid])
            ctx.stats.record_tier_bound("anchor", float(lower))
            if lower > ctx.tau:
                ctx.stats.count_prune("anchor")
                continue
            survivors.append(gid)
            if upper <= ctx.tau:
                ctx.confirmed.add(gid)
                ctx.matches.add(gid)
                ctx.stats.anchor_settled += 1
        ctx.candidates = survivors
        ctx.stats.candidates = len(survivors)
        ctx.stats.confirmed_matches = len(ctx.confirmed)
        return ctx


class CAStage(Stage):
    """CA round-robin scan + DC bound chain (Algorithm 3, Sections V-C/D)."""

    name = "ca"

    def __init__(self, disabled_bounds: frozenset = frozenset()) -> None:
        self.disabled_bounds = disabled_bounds

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        result = ca_range_query(
            ctx.engine.index,
            ctx.engine._graphs,
            ctx.query,
            ctx.tau,
            ctx.lists,
            h=ctx.config.h,
            partial_fraction=ctx.config.partial_fraction,
            stats=ctx.stats,
            disabled_bounds=self.disabled_bounds,
            assignment_backend=ctx.config.assignment_backend,
            excluded=ctx.embed_excluded,
        )
        ctx.candidates = result.candidates
        ctx.confirmed = set(result.confirmed)
        ctx.matches = set(result.confirmed)
        return ctx


class VerifyStage(Stage):
    """Exact verification via the scheduled verifier (bounds first, budgeted
    A* in ascending-``L_m`` order, optional process fan-out and deadline).

    A no-op when the context asks for ``verify="none"`` — the stage is part
    of every plan so the two modes share one code path, and its recorded
    wall clock is ~0 in filter-only runs.
    """

    name = "verify"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        if ctx.verify != "exact":
            ctx.verified = False
            return ctx
        report = verify_candidates(
            ctx.engine._graphs,
            ctx.query,
            ctx.candidates,
            int(ctx.tau),
            already_confirmed=ctx.matches,
            budget_per_candidate=ctx.config.verify_budget,
            deadline=ctx.config.verify_deadline,
            workers=ctx.config.verify_workers,
            assignment_backend=ctx.config.assignment_backend,
            resilience=ResiliencePolicy.from_config(ctx.config),
            fault_plan=ctx.config.fault_plan,
            tracer=ctx.tracer,
            # Engines synced with an on-disk index twin ship workers a
            # (path, generation) handle instead of pickled graphs; duck-typed
            # engine stand-ins in tests simply don't offer one.
            disk_handle=getattr(ctx.engine, "disk_handle", lambda: None)(),
        )
        ctx.matches = set(report.matches)
        ctx.stats.settled_by_bounds = report.settled_by_bounds
        ctx.stats.astar_runs = report.astar_runs
        ctx.stats.astar_expansions = report.astar_expansions
        ctx.stats.degradations.extend(report.degradations)
        ctx.verified = report.decided()
        return ctx


@dataclass(frozen=True)
class QueryPlan:
    """An ordered, immutable sequence of stages plus a human-readable label."""

    stages: Tuple[Stage, ...]
    description: str = ""

    @classmethod
    def range_query(
        cls, *, disabled_bounds: frozenset = frozenset()
    ) -> "QueryPlan":
        """The legacy paper chain (TA → CA → verify), tier knob ignored."""
        return cls(
            stages=(TAStage(), CAStage(disabled_bounds), VerifyStage()),
            description="ta -> ca -> verify",
        )

    @classmethod
    def from_tiers(
        cls,
        config: EngineConfig,
        *,
        disabled_bounds: frozenset = frozenset(),
    ) -> "QueryPlan":
        """The serial plan for ``config.filter_tiers`` — one stage per tier.

        ``("ta", "ca", "verify")`` reproduces :meth:`range_query` exactly;
        enabling ``embed``/``anchor`` inserts their stages in chain order.
        """
        tiers = resolve_tier_chain(config.filter_tiers)
        builders = {
            "embed": EmbedStage,
            "ta": TAStage,
            "ca": lambda: CAStage(disabled_bounds),
            "anchor": AnchorStage,
            "verify": VerifyStage,
        }
        return cls(
            stages=tuple(builders[name]() for name in tiers),
            description=" -> ".join(tiers),
        )


def execute_plan(plan: QueryPlan, ctx: ExecutionContext) -> ExecutionContext:
    """Run *plan*'s stages in order over *ctx* — the one executor.

    Uniform bookkeeping lives here and nowhere else: per-stage wall clock
    (``stats.stage_seconds``), total elapsed time, the process-global
    SED-cache hit/miss delta attributable to this execution — and, on
    traced runs, the ``query`` → stage span tree plus the JSONL export to
    ``config.trace_path`` (owned tracers only, so shared ambient traces
    are not exported piecemeal by every nested query).  Metrics recording
    happens *after* the stats stop changing, so traced and untraced runs
    report identical counters.
    """
    tracer = ctx.tracer
    clock = WallClock.start()
    cache_before = GLOBAL_SED_CACHE.info()
    with tracer.span(
        "query", plan=plan.description, tau=ctx.tau, verify=ctx.verify
    ):
        for stage in plan.stages:
            started = time.perf_counter()
            with tracer.span(stage.name):
                ctx = stage.run(ctx)
            seconds = time.perf_counter() - started
            ctx.stats.stage_seconds[stage.name] = (
                ctx.stats.stage_seconds.get(stage.name, 0.0) + seconds
            )
    cache_after = GLOBAL_SED_CACHE.info()
    ctx.stats.sed_cache_hits = cache_after.hits - cache_before.hits
    ctx.stats.sed_cache_misses = cache_after.misses - cache_before.misses
    ctx.elapsed = clock.elapsed()
    if tracer.enabled:
        ctx.trace = tracer.to_trace()
        if ctx.owns_tracer and ctx.config.trace_path:
            from ..obs.export import write_spans_jsonl

            write_spans_jsonl(tracer.drain_unexported(), ctx.config.trace_path)
    if ctx.config.metrics:
        record_query_metrics(
            GLOBAL_METRICS, ctx.stats, ctx.elapsed, mode=ctx.mode
        )
        publish_cache_metrics(GLOBAL_METRICS)
    return ctx


def merge_shard_results(
    engine: "SegosIndex",
    shard_results: Sequence[QueryResult],
    *,
    verify: str,
    shards_scattered: int,
    shards_pruned: int,
) -> QueryResult:
    """Gather per-shard results into one answer under the global contract.

    Shards hold disjoint graph subsets, so candidate membership is a plain
    union; ordering is canonicalised to the parent database's insertion
    order (``engine.gids()``), which makes the merged candidate list a
    deterministic function of the database alone — byte-identical however
    the shards were scheduled, completed or load-balanced.  ``matches`` is
    the union of shard matches (with ``verify="exact"`` each shard's
    matches are its exact answers, so the union is the exact global answer
    set); ``verified`` holds only when every scattered shard fully decided
    its candidates.
    """
    candidate_set: Set[object] = set()
    matches: Set[object] = set()
    for result in shard_results:
        candidate_set.update(result.candidates)
        matches.update(result.matches)
    candidates = [gid for gid in engine.gids() if gid in candidate_set]
    stats = QueryStats.merged([result.stats for result in shard_results])
    stats.shards_scattered = shards_scattered
    stats.shards_pruned = shards_pruned
    return QueryResult(
        candidates=candidates,
        matches=matches,
        stats=stats,
        elapsed=0.0,
        verified=(verify == "exact" and all(r.verified for r in shard_results)),
    )


class ShardedExecutor:
    """Scatter one query across catalog shards and gather the answers.

    The executor runs the *same* staged plan the monolithic path would run
    — once per surviving shard, against that shard's sub-engine — then
    merges with :func:`merge_shard_results`.  Pivot pruning (see
    :mod:`repro.perf.shard`) skips shards the triangle inequality rules
    out before TA ever runs; each skip is counted in ``shards_pruned`` and
    surfaced as a ``shard.pruned`` trace event, each scatter as a
    ``shard`` span.

    Shard executions run with ``metrics=False``; the executor records the
    merged stats once, so a sharded query lands in the metrics registry as
    exactly one query — same as the monolithic path.
    """

    def __init__(
        self,
        engine: "SegosIndex",
        config: EngineConfig,
        *,
        shard_caches: Optional[Dict[int, Dict]] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        #: shard id → that shard's top-k cache.  Shard catalogs have
        #: disjoint sid spaces, so caches must never be shared across
        #: shards; a QuerySession owns these so related queries still
        #: reuse each other's TA searches per shard.
        self.shard_caches: Dict[int, Dict] = (
            shard_caches if shard_caches is not None else {}
        )

    def view(self):
        from ..perf.shard import sharded_view

        return sharded_view(self.engine, self.config)

    def execute(
        self,
        query: Graph,
        tau: float,
        *,
        verify: str = "none",
        mode: str = "range",
        plan_for_shard=None,
        use_pivots: bool = True,
    ) -> QueryResult:
        """Run the scatter-gather for one query, serially in-process.

        ``plan_for_shard(shard) -> QueryPlan`` lets the pipelined and
        subsearch front-ends scatter their own plans; the default is the
        standard range plan.  ``use_pivots=False`` disables shard pruning
        for distances where the triangle inequality does not hold (the
        subgraph edit distance).
        """
        # Same argument validation as make_context, hoisted: with every
        # shard pruned (or an empty database) no per-shard context would
        # ever be built to reject bad input.
        if query.order == 0:
            raise ValueError("query graph must not be empty")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        view = self.view()
        shard_config = self.config.override(shards=1, metrics=False)
        if plan_for_shard is None:
            # The default shard plan follows the configured tier chain, so
            # sharded and monolithic executions run the same stages.
            plan_for_shard = (
                lambda shard: QueryPlan.from_tiers(shard_config)  # noqa: E731
            )
        clock = WallClock.start()
        with traced_scope(
            self.config,
            "sharded_query",
            shards=len(view.shards),
            tau=tau,
            mode=mode,
        ) as tracer:
            skips = (
                view.skips(query, tau, backend=self.config.assignment_backend)
                if use_pivots
                else set()
            )
            shard_results: List[QueryResult] = []
            scattered = pruned = 0
            for shard in view.live_shards():
                if shard.shard_id in skips:
                    pruned += 1
                    if tracer.enabled:
                        tracer.event("shard.pruned", shard=shard.shard_id)
                    continue
                scattered += 1
                ctx = make_context(
                    shard.engine,
                    query,
                    tau,
                    config=shard_config,
                    verify=verify,
                    mode=mode,
                    topk_cache=self.shard_caches.setdefault(shard.shard_id, {}),
                )
                with tracer.span(
                    "shard", shard=shard.shard_id, graphs=len(shard.gids)
                ):
                    ctx = execute_plan(plan_for_shard(shard), ctx)
                shard_results.append(ctx.to_result())
            merged = merge_shard_results(
                self.engine,
                shard_results,
                verify=verify,
                shards_scattered=scattered,
                shards_pruned=pruned,
            )
            merged.elapsed = clock.elapsed()
            if tracer.enabled:
                merged.trace = tracer.to_trace()
        if self.config.metrics:
            record_query_metrics(
                GLOBAL_METRICS, merged.stats, merged.elapsed, mode=mode
            )
            publish_cache_metrics(GLOBAL_METRICS)
        return merged


class QuerySession:
    """Shared execution state for a group of related queries.

    A session pins one resolved :class:`EngineConfig` and one top-k
    sub-unit cache, so successive queries reuse each other's TA searches —
    the optimisation behind batch queries (Figure 11's streams), similarity
    joins (stars repeat heavily inside one corpus) and kNN ring expansion
    (top-k results do not depend on τ).  Sessions are the *public* route to
    cache-sharing; no caller needs the engine's internals any more.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> engine_graphs = {"g": Graph(["a", "b"], [(0, 1)])}
    >>> from repro.core.engine import SegosIndex
    >>> session = SegosIndex(engine_graphs).session()
    >>> session.range_query(Graph(["a", "b"], [(0, 1)]), tau=0).candidates
    ['g']
    >>> session.range_query(Graph(["a", "b"], [(0, 1)]), tau=1).stats.ta_searches
    0
    """

    def __init__(
        self, engine: "SegosIndex", *, config: Optional[EngineConfig] = None
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else engine.config
        self.topk_cache: Dict[str, TopKResult] = {}
        # Sharded-execution state: (view key, shard id → top-k cache).
        # Shard catalogs have disjoint sid spaces, so the session keeps one
        # cache per shard; a view rebuild (generation bump, knob change)
        # drops them all.
        self._shard_state: Optional[Tuple[tuple, Dict[int, Dict]]] = None

    def sharded_executor(
        self, config: Optional[EngineConfig] = None
    ) -> ShardedExecutor:
        """A :class:`ShardedExecutor` sharing this session's shard caches."""
        from ..perf.shard import _view_key

        config = config if config is not None else self.config
        key = _view_key(self.engine, config)
        if self._shard_state is None or self._shard_state[0] != key:
            self._shard_state = (key, {})
        return ShardedExecutor(
            self.engine, config, shard_caches=self._shard_state[1]
        )

    def plan(
        self,
        *,
        disabled_bounds: frozenset = frozenset(),
        config: Optional[EngineConfig] = None,
    ) -> QueryPlan:
        """The plan this session would execute (introspection/extension)."""
        return QueryPlan.from_tiers(
            config if config is not None else self.config,
            disabled_bounds=disabled_bounds,
        )

    def context(
        self, query: Graph, tau: float, *, verify: str = "none", **overrides
    ) -> ExecutionContext:
        """Build a context bound to this session's cache and config."""
        return make_context(
            self.engine,
            query,
            tau,
            config=self.config.override(**overrides),
            verify=verify,
            topk_cache=self.topk_cache,
        )

    def execute(
        self, plan: QueryPlan, ctx: ExecutionContext
    ) -> ExecutionContext:
        """Run *plan* over *ctx* through the shared executor."""
        return execute_plan(plan, ctx)

    def range_query(
        self, query: Graph, *, tau: float, verify: str = "none", **overrides
    ) -> QueryResult:
        """One range query through the staged executor.

        Everything but the query graph is keyword-only.  ``overrides`` are
        per-call :class:`EngineConfig` fields (``k``, ``h``,
        ``partial_fraction``, ``verify_workers``, ``verify_budget``,
        ``verify_deadline``, ``trace``, ...) — the innermost layer of the
        precedence chain — plus the public aliases ``workers``
        (= ``verify_workers``) and ``timeout`` (= ``verify_deadline``).
        """
        overrides = apply_call_aliases(overrides)
        config = self.config.override(**overrides)
        if config.shards > 1:
            return self.sharded_executor(config).execute(
                query, tau, verify=verify
            )
        ctx = self.context(query, tau, verify=verify, **overrides)
        return self.execute(self.plan(config=config), ctx).to_result()
