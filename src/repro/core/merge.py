"""Sorted-list construction for the TA stage (Algorithm 1, Section V-A).

A lower-level label list is stored as size groups, each already sorted by
decreasing frequency.  The TA stage needs a *single* frequency-descending
list over all groups on one side of the query's leaf-size boundary.  Since
every group is sorted, this is a k-way merge; ``|AL|`` (the number of
groups) is small, so the paper treats the merge as effectively linear.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Sequence

from .index import LowerEntry


def merge_groups(groups: Sequence[Sequence[LowerEntry]]) -> Iterator[LowerEntry]:
    """Lazily merge frequency-descending groups into one such stream.

    Ties broken by (leaf size, sid) so the output is deterministic.  Lazy
    because TA usually halts long before the merged list is exhausted.
    """
    heap: List[tuple] = []
    for group_index, group in enumerate(groups):
        if group:
            entry = group[0]
            heap.append((-entry.freq, entry.leaf_size, entry.sid, group_index, 0))
    heapq.heapify(heap)
    while heap:
        _, _, _, group_index, position = heapq.heappop(heap)
        group = groups[group_index]
        yield group[position]
        position += 1
        if position < len(group):
            entry = group[position]
            heapq.heappush(
                heap, (-entry.freq, entry.leaf_size, entry.sid, group_index, position)
            )


def merge_groups_eager(groups: Sequence[Sequence[LowerEntry]]) -> List[LowerEntry]:
    """Eager variant of :func:`merge_groups` (used by tests and benches)."""
    return list(merge_groups(groups))
