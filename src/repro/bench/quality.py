"""Filter-quality measurement: precision against the exact oracle.

The paper argues candidate-set size is the metric that matters because GED
verification is NP-hard ("it makes sense to sacrifice a little more time to
filter out as many candidates as possible").  This module quantifies that
directly: **precision** = |true answers| / |candidates| (recall is always 1
for a sound filter, which is asserted, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Set

from ..baselines.base import RangeQueryMethod
from ..graphs.edit_distance import ged_within
from ..graphs.model import Graph


@dataclass(frozen=True)
class QualityReport:
    """Averaged filter quality over a query workload."""

    method: str
    precision: float  # |truth| / |candidates|, 1.0 when both are empty
    recall: float  # must be 1.0 for a sound filter
    avg_candidates: float
    avg_truth: float


def ground_truth(
    graphs: Mapping[object, Graph], query: Graph, tau: int
) -> Set[object]:
    """Exact answers via threshold-pruned A* (small corpora only)."""
    return {gid for gid, g in graphs.items() if ged_within(query, g, tau)}


def measure_quality(
    method: RangeQueryMethod,
    graphs: Mapping[object, Graph],
    queries: Sequence[Graph],
    tau: int,
    *,
    truths: Sequence[Set[object]] = (),
) -> QualityReport:
    """Run the workload and average precision/recall.

    Pass precomputed ``truths`` to amortise the oracle across methods.
    """
    if not queries:
        raise ValueError("empty query workload")
    if truths and len(truths) != len(queries):
        raise ValueError("truths must align with queries")
    precision_total = recall_total = 0.0
    candidate_total = truth_total = 0
    for i, query in enumerate(queries):
        truth = truths[i] if truths else ground_truth(graphs, query, tau)
        candidates = set(method.range_query(query, tau=tau).candidates)
        candidate_total += len(candidates)
        truth_total += len(truth)
        if candidates:
            precision_total += len(truth & candidates) / len(candidates)
        else:
            precision_total += 1.0 if not truth else 0.0
        recall_total += (
            len(truth & candidates) / len(truth) if truth else 1.0
        )
    n = len(queries)
    return QualityReport(
        method=method.name,
        precision=precision_total / n,
        recall=recall_total / n,
        avg_candidates=candidate_total / n,
        avg_truth=truth_total / n,
    )
