"""Tests for the pluggable assignment backends (repro.perf.assignment)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import chemical_like, make_label_alphabet
from repro.matching.hungarian import hungarian
from repro.matching.mapping import (
    mapping_distance,
    mapping_result,
    partial_mapping_distance,
)
from repro.graphs.star import decompose
from repro.perf import assignment
from repro.perf.assignment import (
    available_backends,
    resolve_backend,
    scipy_available,
    solve_assignment,
)

square_int_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.lists(
        st.lists(
            st.integers(min_value=0, max_value=50).map(float),
            min_size=n,
            max_size=n,
        ),
        min_size=n,
        max_size=n,
    )
)


class TestRegistry:
    def test_pure_always_registered(self):
        assert "pure" in available_backends()
        assert available_backends()["pure"] is True

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv(assignment.ENV_BACKEND, raising=False)
        assert resolve_backend("pure") == "pure"
        monkeypatch.setenv(assignment.ENV_BACKEND, "pure")
        assert resolve_backend() == "pure"
        # Explicit argument beats the environment.
        assert resolve_backend("scipy") == "scipy"

    def test_resolve_auto(self, monkeypatch):
        monkeypatch.delenv(assignment.ENV_BACKEND, raising=False)
        expected = "scipy" if scipy_available() else "pure"
        assert resolve_backend() == expected
        assert resolve_backend("auto") == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown assignment backend"):
            resolve_backend("fortran77")

    def test_engine_rejects_unknown_backend(self):
        from repro.core.engine import SegosIndex

        with pytest.raises(ValueError, match="unknown assignment backend"):
            SegosIndex(assignment_backend="fortran77")

    def test_scipy_falls_back_gracefully(self, monkeypatch):
        """Requesting scipy without SciPy installed must still solve."""
        monkeypatch.setattr(assignment, "_scipy_lsa", None)
        monkeypatch.setattr(assignment, "_scipy_checked", True)
        matrix = [[4.0, 1.0], [2.0, 0.0]]
        assert solve_assignment(matrix, "scipy") == hungarian(matrix)
        assert available_backends()["scipy"] is False
        assert resolve_backend("auto") == "pure"

    def test_empty_and_degenerate_matrices(self):
        for backend in ("pure", "scipy"):
            assert solve_assignment([], backend) == (0.0, [])
        with pytest.raises(ValueError):
            solve_assignment([[]], "scipy")


@pytest.mark.skipif(not scipy_available(), reason="SciPy not installed")
class TestBackendAgreement:
    @settings(max_examples=150, deadline=None)
    @given(matrix=square_int_matrices)
    def test_identical_costs_on_integer_matrices(self, matrix):
        """Integer-valued costs sum exactly: totals must be bit-identical."""
        pure_total, pure_assign = solve_assignment(matrix, "pure")
        scipy_total, scipy_assign = solve_assignment(matrix, "scipy")
        assert scipy_total == pure_total
        # Either optimal assignment must price to the optimal total.
        assert sum(matrix[i][j] for i, j in enumerate(scipy_assign)) == pure_total

    def test_rectangular_wide(self):
        matrix = [[3.0, 1.0, 2.0], [2.0, 4.0, 6.0]]
        pure = solve_assignment(matrix, "pure")
        scipy = solve_assignment(matrix, "scipy")
        assert scipy[0] == pure[0]
        assert all(col != -1 for col in scipy[1])

    def test_rectangular_tall_marks_unassigned_rows(self):
        matrix = [[3.0], [1.0], [2.0]]
        pure_total, pure_assign = solve_assignment(matrix, "pure")
        scipy_total, scipy_assign = solve_assignment(matrix, "scipy")
        assert scipy_total == pure_total == 1.0
        assert pure_assign.count(-1) == scipy_assign.count(-1) == 2
        assert scipy_assign[1] == 0

    def test_float_matrices_agree_closely(self):
        rng = random.Random(7)
        for _ in range(25):
            n = rng.randint(1, 8)
            matrix = [[rng.random() * 10 for _ in range(n)] for _ in range(n)]
            pure_total, _ = solve_assignment(matrix, "pure")
            scipy_total, _ = solve_assignment(matrix, "scipy")
            assert math.isclose(pure_total, scipy_total, rel_tol=1e-9, abs_tol=1e-9)

    def test_identical_mapping_distances_on_random_graphs(self):
        """Definition 1's µ is backend-independent on real star matrices."""
        rng = random.Random(2012)
        labels = make_label_alphabet(6)
        graphs = [
            chemical_like(rng, labels, rng.randint(2, 10)) for _ in range(12)
        ]
        for g1 in graphs[:6]:
            for g2 in graphs[6:]:
                mu_pure = mapping_distance(g1, g2, backend="pure")
                mu_scipy = mapping_distance(g1, g2, backend="scipy")
                assert mu_pure == mu_scipy

    def test_partial_mapping_distance_backend_independent(self):
        rng = random.Random(99)
        labels = make_label_alphabet(4)
        g1 = chemical_like(rng, labels, 7)
        g2 = chemical_like(rng, labels, 9)
        qs, ds = decompose(g1), decompose(g2)
        for cut in range(len(ds) + 1):
            assert partial_mapping_distance(
                qs, ds[:cut], len(ds), backend="pure"
            ) == partial_mapping_distance(qs, ds[:cut], len(ds), backend="scipy")


class TestMappingResultContract:
    def test_mapping_result_upper_bound_stays_valid(self):
        """Backends may pick different optimal alignments; both must induce
        a vertex mapping whose edit cost upper-bounds GED (Lemma 3 holds
        for *any* mapping)."""
        from repro.graphs.edit_distance import graph_edit_distance
        from repro.matching.mapping import edit_cost_under_mapping

        rng = random.Random(5)
        labels = make_label_alphabet(3)
        for _ in range(8):
            g1 = chemical_like(rng, labels, rng.randint(2, 6))
            g2 = chemical_like(rng, labels, rng.randint(2, 6))
            ged = graph_edit_distance(g1, g2)
            for backend in ("pure", "scipy"):
                result = mapping_result(g1, g2, backend=backend)
                cost = edit_cost_under_mapping(g1, g2, result.vertex_mapping)
                assert cost >= ged
