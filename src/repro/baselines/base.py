"""Common interface for the range-query methods benchmarked in the paper.

Every method — SEGOS itself (adapted in :mod:`repro.baselines.segos_adapter`)
and the three comparison systems — exposes the same small surface so the
benchmark harness can sweep them uniformly:

* ``build(graphs)`` happens in the constructor (timed by the Figure 13/14
  benches);
* :meth:`range_query` returns a :class:`FilterResult` whose ``candidates``
  must be a superset of the true answers (soundness is property-tested);
* :meth:`index_size` reports a machine-independent footprint metric.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from ..graphs.model import Graph


@dataclass
class FilterResult:
    """Outcome of one filtering run (before any exact verification)."""

    candidates: List[object]
    #: candidates confirmed as true matches by an upper bound (may be empty
    #: for methods that do not produce upper bounds)
    confirmed: Set[object] = field(default_factory=set)
    #: graphs whose mapping distance (or equivalent heavy check) was computed
    graphs_accessed: int = 0
    elapsed: float = 0.0


class RangeQueryMethod(abc.ABC):
    """Abstract base for the filtering methods under comparison."""

    #: short display name used by bench report tables
    name: str = "method"

    def __init__(self, graphs: Mapping[object, Graph]) -> None:
        self.graphs: Dict[object, Graph] = dict(graphs)

    @abc.abstractmethod
    def range_query(self, query: Graph, *, tau: float) -> FilterResult:
        """Return a sound candidate set for ``{g : λ(q, g) ≤ τ}``."""

    @abc.abstractmethod
    def index_size(self) -> int:
        """Footprint metric: number of stored index entries."""

    def timed_range_query(self, query: Graph, tau: float) -> FilterResult:
        """Run :meth:`range_query` and stamp the elapsed wall-clock time."""
        started = time.perf_counter()
        result = self.range_query(query, tau=tau)
        result.elapsed = time.perf_counter() - started
        return result
