"""Graph similarity join: all pairs within GED τ.

The companion problem to the paper's range query: given graph sets ``R``
and ``S`` (or one set, for a self-join), report every pair with
``λ(r, s) ≤ τ``.  The SEGOS index turns the naive ``|R|·|S|`` scan into
|R| indexed range queries, with two extra join-level savings:

* all probes run through one :class:`~repro.core.plan.QuerySession`, so
  the TA top-k cache is shared across them (stars repeat heavily inside
  one corpus — the same effect as
  :meth:`~repro.core.engine.SegosIndex.batch_range_query`);
* for self-joins each unordered pair is probed once (candidates with
  ``gid ≤ probe`` are skipped), halving the work.

Results are *candidate* pairs (sound, no false negatives) unless
``verify="exact"`` upgrades them to exact pairs via threshold-pruned A*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..graphs.model import Graph
from .engine import SegosIndex
from .plan import QueryResult, traced_scope
from .stats import QueryStats
from .verify import verify_candidates


@dataclass
class JoinResult(QueryResult):
    """Outcome of a similarity join.

    A :class:`~repro.core.plan.QueryResult` over *pairs*: ``candidates``
    holds the candidate ``(left gid, right gid)`` pairs (a superset of the
    true pairs), ``matches`` the pairs confirmed ``λ ≤ τ`` (all of them,
    when verified), and ``stats`` / ``elapsed`` / ``trace`` the merged
    filter counters, wall clock and span-tree handle.
    """

    @property
    def pairs(self) -> List[Tuple[object, object]]:
        """The candidate pairs — alias of ``candidates``."""
        return self.candidates


def similarity_self_join(
    engine: SegosIndex, *, tau: float, verify: str = "none"
) -> JoinResult:
    """All unordered pairs of indexed graphs within GED τ.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> db = SegosIndex()
    >>> db.add("a", Graph(["x", "y"], [(0, 1)]))
    >>> db.add("b", Graph(["x", "y"], [(0, 1)]))
    >>> db.add("c", Graph(["q", "q", "q"]))
    >>> similarity_self_join(db, tau=0, verify="exact").matches
    {('a', 'b')}
    """
    return _join(engine, None, tau, verify=verify)


def similarity_join(
    engine: SegosIndex,
    probes: Mapping[object, Graph],
    *,
    tau: float,
    verify: str = "none",
) -> JoinResult:
    """All ``(probe, indexed)`` pairs within GED τ.

    The right side is the indexed set; ``probes`` may be any graphs (they
    need not be indexed).
    """
    return _join(engine, dict(probes), tau, verify=verify)


def _join(
    engine: SegosIndex,
    probes: Optional[Dict[object, Graph]],
    tau: float,
    *,
    verify: str,
) -> JoinResult:
    if tau < 0:
        raise ValueError("tau must be non-negative")
    if verify not in ("none", "exact"):
        raise ValueError(f"unknown verify mode {verify!r}")
    started = time.perf_counter()
    self_join = probes is None
    if self_join:
        probes = {gid: engine.graph(gid) for gid in engine.gids()}

    stats = QueryStats()
    # One session for the whole join: every probe shares its TA top-k
    # searches through the session cache (the public cache-sharing API).
    session = engine.session()
    pairs: List[Tuple[object, object]] = []
    confirmed: Set[Tuple[object, object]] = set()
    verified = verify == "exact"

    with traced_scope(session.config, "join", probes=len(probes)) as tracer:
        # Deterministic probe order; for self-joins it also defines the
        # pair ordering used to halve the work.
        ordering = {gid: i for i, gid in enumerate(sorted(probes, key=str))}
        pending: Dict[object, List[object]] = {}
        for left in sorted(probes, key=str):
            query = probes[left]
            result = session.range_query(query, tau=tau)
            stats.merge(result.stats)
            for right in result.candidates:
                if self_join and (
                    right not in ordering or ordering[right] <= ordering[left]
                ):
                    continue  # own reflection, or the mirrored pair
                pair = (left, right)
                pairs.append(pair)
                if right in result.matches:
                    confirmed.add(pair)
                else:
                    pending.setdefault(left, []).append(right)

        if verified:
            # Confirmation goes through the scheduled verifier, grouped
            # per probe: bounds settle most pairs without A*, the rest run
            # budgeted and most-promising-first — and the runs land in the
            # shared stats/trace like every other verification.
            for left, rights in pending.items():
                report = verify_candidates(
                    {gid: engine.graph(gid) for gid in rights},
                    probes[left],
                    rights,
                    int(tau),
                    assignment_backend=session.config.assignment_backend,
                    tracer=tracer,
                )
                stats.settled_by_bounds += report.settled_by_bounds
                stats.astar_runs += report.astar_runs
                stats.astar_expansions += report.astar_expansions
                confirmed.update((left, right) for right in report.matches)
                verified = verified and report.decided()
    return JoinResult(
        candidates=pairs,
        matches=confirmed,
        stats=stats,
        elapsed=time.perf_counter() - started,
        verified=verified,
        trace=tracer.to_trace() if tracer.enabled else None,
    )
