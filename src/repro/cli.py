"""Command-line interface: build, inspect and query SEGOS databases.

Installed as ``python -m repro`` (see ``__main__.py``).  Subcommands::

    build   <graphs.txt> <db.segos>        build + persist a database
    stats   <db.segos>                     index statistics
    query   <db.segos> <query.txt> --tau N range query (first graph of file)
    knn     <db.segos> <query.txt> -k N    k nearest neighbours
    trace   <db.segos> <query.txt> --tau N traced query + span-tree export
    generate {aids,pdg} <out.txt> -n N     write a synthetic corpus
    index build   <db.segos>               (re)write the .segosx mmap sidecar
    index inspect <db.segos> [--verify]    describe / checksum-audit a sidecar
    index scrub   <db.segos> [--repair]    audit / repair torn delta tails

The query file is the usual transaction format; its first graph is the
query.  Everything prints plain text and exits non-zero on bad input.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core.engine import SegosIndex
from .core.explain import explain_range_query
from .core.join import similarity_self_join
from .core.knn import knn_query
from .core.persistence import load_index, save_index, sidecar_path_for
from .datasets import aids_like, pdg_like
from .errors import ReproError
from .graphs import io as gio
from .obs import (
    GLOBAL_METRICS,
    prometheus_text,
    write_chrome_trace,
    write_spans_jsonl,
)


def _load_query(path: str):
    pairs = gio.load(path)
    if not pairs:
        raise ReproError(f"no graphs in query file {path!r}")
    return pairs[0][1]


def _cmd_build(args: argparse.Namespace) -> int:
    pairs = gio.load(args.graphs)
    engine = SegosIndex(k=args.k, h=args.h)
    for gid, graph in pairs:
        engine.add(gid, graph)
    save_index(engine, args.output)
    print(
        f"indexed {len(engine)} graphs "
        f"({engine.distinct_star_count()} distinct stars, "
        f"{engine.index_size()} index entries) -> {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    engine = load_index(args.database)
    orders = [engine.graph(gid).order for gid in engine.gids()]
    print(f"graphs:         {len(engine)}")
    print(f"distinct stars: {engine.distinct_star_count()}")
    print(f"index entries:  {engine.index_size()}")
    if orders:
        print(f"order range:    {min(orders)}..{max(orders)}")
        print(f"avg order:      {sum(orders) / len(orders):.2f}")
    print(f"max degree:     {engine.index.database_max_degree()}")
    print(f"parameters:     k={engine.k} h={engine.h}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = load_index(args.database)
    query = _load_query(args.query)
    if args.explain:
        print(explain_range_query(engine, query, tau=args.tau).render())
        return 0
    if args.metrics:
        # EngineConfig is frozen; swap in a metered copy for this run.
        engine.config = engine.config.override(metrics=True)
    result = engine.range_query(
        query,
        tau=args.tau,
        verify="exact" if args.verify else "none",
        trace=True if args.trace else None,
    )
    kind = "matches" if args.verify else "candidates"
    hits = sorted(result.matches) if args.verify else sorted(map(str, result.candidates))
    print(f"{kind} (tau={args.tau}): {len(hits)}")
    for gid in hits:
        print(f"  {gid}")
    print(
        f"accessed {result.stats.graphs_accessed} graphs, "
        f"pruned {dict(result.stats.pruned_by)}, "
        f"{result.elapsed * 1000:.1f} ms"
    )
    if result.stats.shards_scattered or result.stats.shards_pruned:
        print(
            f"shards: {result.stats.shards_scattered} scattered, "
            f"{result.stats.shards_pruned} pruned"
        )
    # Degraded execution (worker lost, pool retried, serial fallback) must
    # be visible to the operator, not only in programmatic stats.
    for event in result.stats.degradations:
        print(f"degraded: {event.summary()}")
    if args.trace and result.trace is not None:
        print("trace:")
        print(result.trace.render())
    if args.metrics:
        print(prometheus_text(GLOBAL_METRICS), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    engine = load_index(args.database)
    query = _load_query(args.query)
    result = engine.range_query(
        query,
        tau=args.tau,
        verify="exact" if args.verify else "none",
        trace=True,
    )
    trace = result.trace
    assert trace is not None  # trace=True guarantees a handle
    print(trace.render())
    spans = trace.spans
    if args.output:
        if args.format == "chrome":
            write_chrome_trace(spans, args.output)
        else:
            write_spans_jsonl(spans, args.output, append=False)
        print(f"wrote {len(spans)} spans ({args.format}) -> {args.output}")
    return 0


def _cmd_knn(args: argparse.Namespace) -> int:
    engine = load_index(args.database)
    query = _load_query(args.query)
    result = knn_query(engine, query, k=args.k)
    print(f"{args.k}-nearest neighbours ({result.rings} rings):")
    for gid, distance in result.neighbours:
        print(f"  {gid}  ged={distance}")
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    engine = load_index(args.database)
    result = similarity_self_join(
        engine, tau=args.tau, verify="exact" if args.verify else "none"
    )
    pairs = sorted(result.matches) if args.verify else sorted(
        (str(a), str(b)) for a, b in result.pairs
    )
    kind = "matched pairs" if args.verify else "candidate pairs"
    print(f"{kind} (tau={args.tau}): {len(pairs)}")
    for a, b in pairs:
        print(f"  {a} -- {b}")
    print(
        f"accessed {result.stats.graphs_accessed} graphs for mapping "
        f"distances, {result.elapsed * 1000:.1f} ms"
    )
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    import dataclasses
    import os

    from .perf import diskcat

    # Rebuild in memory from the text (never trust an existing sidecar
    # here — this command is how you *replace* one), then columnarise.
    engine = load_index(args.database, mmap=False)
    sidecar = args.output or sidecar_path_for(args.database, engine.config)
    if getattr(args, "shards", 1) and args.shards > 1:
        from .perf.shard import persist_shards, sharded_view

        config = engine.config.override(
            shards=args.shards, shard_pivots=args.pivots
        )
        paths = persist_shards(engine, sidecar, config=config)
        view = sharded_view(engine, config)
        for shard, path in zip(view.shards, paths):
            size = os.path.getsize(path)
            print(
                f"  shard {shard.shard_id}: {len(shard.gids)} graphs, "
                f"{len(shard.pivots)} pivots, {size} bytes -> {path}"
            )
        print(
            f"wrote {len(paths)} shard sidecars "
            f"({len(engine.gids())} graphs, shard_by={config.shard_by}) "
            f"-> {sidecar}.shards.json"
        )
        return 0
    pairs = [(gid, engine.graph(gid)) for gid in engine.gids()]
    diskcat.write_sidecar(
        sidecar,
        pairs,
        config=dataclasses.asdict(engine.config),
        generation=0,
        source_size=os.path.getsize(args.database),
        source_sha=diskcat.file_sha256(args.database),
    )
    size = os.path.getsize(sidecar)
    print(
        f"wrote sidecar for {len(pairs)} graphs "
        f"({engine.distinct_star_count()} stars, {size} bytes) -> {sidecar}"
    )
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    import os

    from .perf import diskcat

    sidecar = args.index or (
        args.database + ".segosx" if not args.database.endswith(".segosx")
        else args.database
    )
    database = args.database if sidecar != args.database else None
    disk = diskcat.DiskCatalog(sidecar)
    try:
        header = disk.header
        print(f"sidecar:        {sidecar} ({os.path.getsize(sidecar)} bytes)")
        print(f"format version: {header.version}")
        print(
            f"generation:     {header.generation} "
            f"(base {header.base_generation})"
        )
        print(f"graphs:         {disk.n_graphs}")
        print(f"distinct stars: {disk.n_stars}")
        print(f"labels:         {disk.n_labels}")
        print(f"source:         {header.source_size} bytes, "
              f"sha256 {header.source_sha.hex()[:16]}…")
        segments = disk.delta_segments()
        ops = sum(len(s.ops) for s in segments)
        print(f"delta segments: {len(segments)} ({ops} ops, "
              f"{header.delta_bytes} bytes)")
        if disk.has_embeddings():
            print(f"embeddings:     present ({disk.embedding_bytes()} bytes; "
                  f"embed tier reads them zero-copy)")
        else:
            print("embeddings:     MISSING (pre-embedding layout; the embed "
                  "tier degrades to an on-the-fly build)")
        config = disk.config()
        if config:
            print(f"built with:     k={config.get('k')} h={config.get('h')} "
                  f"delta_compact={config.get('delta_compact')}")
        if database is not None and os.path.exists(database):
            fresh = disk.is_fresh(database)
            print(f"freshness:      {'fresh' if fresh else 'STALE'} "
                  f"against {database}")
        if args.verify:
            problems = disk.verify_checksums()
            if problems:
                for problem in problems:
                    print(f"corrupt: {problem}")
                return 1
            print("checksums:      all sections + delta journal OK")
    finally:
        disk.close()
    return 0


def _cmd_index_scrub(args: argparse.Namespace) -> int:
    from .perf import diskcat

    sidecar = args.index or (
        args.database + ".segosx" if not args.database.endswith(".segosx")
        else args.database
    )
    report = diskcat.scrub_sidecar(sidecar, repair=args.repair)
    print(f"sidecar:  {report.path}")
    if report.clean:
        print("scrub:    clean (header, sections and delta journal OK)")
        return 0
    for problem in report.problems:
        print(f"problem:  {problem}")
    verb = "repaired" if report.repaired else "would repair"
    for action in report.actions:
        print(f"{verb}: {action}")
    if report.fatal:
        print("scrub:    NOT repairable in place -- rebuild with "
              "'repro index build'")
        return 1
    if report.repaired:
        print("scrub:    repaired in place; the sidecar loads again")
        return 0
    print("scrub:    problems found (re-run with --repair to fix in place)")
    return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    maker = aids_like if args.kind == "aids" else pdg_like
    data = maker(args.count, seed=args.seed)
    gio.save(args.output, data.graphs.items())
    print(
        f"wrote {len(data)} {data.name} graphs "
        f"(avg order {data.average_order():.1f}) -> {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEGOS graph similarity search (ICDE 2012 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build and persist a database")
    build.add_argument("graphs", help="transaction-format graph file")
    build.add_argument("output", help="output .segos database file")
    build.add_argument("-k", type=int, default=100, help="TA top-k (default 100)")
    build.add_argument("--h", type=int, default=1000, help="CA checkpoint period")
    build.set_defaults(func=_cmd_build)

    stats = sub.add_parser("stats", help="print database statistics")
    stats.add_argument("database")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="GED range query")
    query.add_argument("database")
    query.add_argument("query", help="file whose first graph is the query")
    query.add_argument("--tau", type=float, required=True, help="GED threshold")
    query.add_argument(
        "--verify", action="store_true", help="verify candidates with exact GED"
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage EXPLAIN ANALYZE report instead of results",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="record a span tree for the query and print it after the results",
    )
    query.add_argument(
        "--metrics",
        action="store_true",
        help="print Prometheus-format query metrics after the results",
    )
    query.set_defaults(func=_cmd_query)

    trace = sub.add_parser(
        "trace", help="run a traced range query and export its span tree"
    )
    trace.add_argument("database")
    trace.add_argument("query", help="file whose first graph is the query")
    trace.add_argument("--tau", type=float, required=True, help="GED threshold")
    trace.add_argument(
        "--verify", action="store_true", help="verify candidates with exact GED"
    )
    trace.add_argument(
        "-o", "--output", help="write the span tree to this file"
    )
    trace.add_argument(
        "--format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="export format: JSONL spans or Chrome trace_event (default jsonl)",
    )
    trace.set_defaults(func=_cmd_trace)

    knn = sub.add_parser("knn", help="k nearest neighbours by exact GED")
    knn.add_argument("database")
    knn.add_argument("query")
    knn.add_argument("-k", type=int, default=5)
    knn.set_defaults(func=_cmd_knn)

    join = sub.add_parser("join", help="similarity self-join of the database")
    join.add_argument("database")
    join.add_argument("--tau", type=float, required=True, help="GED threshold")
    join.add_argument(
        "--verify", action="store_true", help="verify pairs with exact GED"
    )
    join.set_defaults(func=_cmd_join)

    index = sub.add_parser("index", help="manage the .segosx mmap sidecar")
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build", help="(re)write the sidecar for an existing database file"
    )
    index_build.add_argument("database", help=".segos database file")
    index_build.add_argument(
        "-o", "--output", help="sidecar path (default <database>.segosx)"
    )
    index_build.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the catalog into N shard sidecars plus a "
        "<sidecar>.shards.json manifest (default 1: single sidecar)",
    )
    index_build.add_argument(
        "--pivots",
        type=int,
        default=0,
        help="pivots per shard for query-time shard pruning (default 0)",
    )
    index_build.set_defaults(func=_cmd_index_build)
    index_inspect = index_sub.add_parser(
        "inspect", help="describe a sidecar (header, sections, deltas)"
    )
    index_inspect.add_argument(
        "database", help=".segos database file (or the .segosx itself)"
    )
    index_inspect.add_argument(
        "--index", help="explicit sidecar path (default <database>.segosx)"
    )
    index_inspect.add_argument(
        "--verify",
        action="store_true",
        help="CRC-audit every section and delta segment",
    )
    index_inspect.set_defaults(func=_cmd_index_inspect)
    index_scrub = index_sub.add_parser(
        "scrub",
        help="audit a sidecar's CRCs; --repair truncates torn delta tails "
        "in place",
    )
    index_scrub.add_argument(
        "database", help=".segos database file (or the .segosx sidecar itself)"
    )
    index_scrub.add_argument(
        "--index", help="explicit sidecar path (default <database>.segosx)"
    )
    index_scrub.add_argument(
        "--repair",
        action="store_true",
        help="fix repairable damage in place (adopt orphan delta records, "
        "truncate torn bytes, revert the header to the last intact state)",
    )
    index_scrub.set_defaults(func=_cmd_index_scrub)

    generate = sub.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("kind", choices=["aids", "pdg"])
    generate.add_argument("output")
    generate.add_argument("-n", "--count", type=int, default=100)
    generate.add_argument("--seed", type=int, default=2012)
    generate.set_defaults(func=_cmd_generate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
