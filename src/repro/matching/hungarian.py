"""Hungarian algorithm for the assignment problem (Kuhn [17]).

The paper computes the mapping distance ``µ(g1, g2)`` (Definition 1) by
running the Hungarian algorithm on the star-edit-distance cost matrix.  This
module provides an O(n³) shortest-augmenting-path implementation with dual
potentials — the Jonker–Volgenant formulation of the classic method — plus a
stateful :class:`HungarianSolver` whose duals and matching persist so that
:mod:`repro.matching.dynamic` can re-optimise after cost changes instead of
solving from scratch (the "Dynamic Hungarian" of reference [25]).

Everything here is pure Python over ``list[list[float]]`` cost matrices; the
matrices in this package are tiny (graph order ≤ a few hundred), so dense
row scans beat any sparse cleverness.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_INF = float("inf")

Matrix = Sequence[Sequence[float]]


class HungarianSolver:
    """Stateful assignment-problem solver with persistent duals.

    The matrix must have ``rows ≤ cols``; every row is matched to a distinct
    column.  Costs may be any finite numbers.

    The solver keeps the dual potentials ``u`` (rows) and ``v`` (columns) and
    the current matching between calls, which is what makes incremental
    updates (see :meth:`update_column` / :meth:`update_row`) cheap: a single
    changed line of the matrix costs one augmentation, O(rows·cols), rather
    than a full O(rows²·cols) re-solve.

    Examples
    --------
    >>> solver = HungarianSolver([[4, 1, 3], [2, 0, 5], [3, 2, 2]])
    >>> solver.solve()
    5.0
    >>> solver.assignment()
    [1, 0, 2]
    """

    def __init__(self, costs: Matrix) -> None:
        self._cost: List[List[float]] = [list(row) for row in costs]
        self.real_n = len(self._cost)
        self.m = len(self._cost[0]) if self.real_n else 0
        if any(len(row) != self.m for row in self._cost):
            raise ValueError("cost matrix rows have inconsistent lengths")
        if self.real_n > self.m:
            raise ValueError(
                f"matrix must have rows <= cols, got {self.real_n}x{self.m}; "
                "transpose it (or use the hungarian() helper, which does)"
            )
        # Pad to square with zero-cost dummy rows.  A dummy row matched to a
        # column simply means "column unused"; squaring keeps every column
        # matched, which is what makes the incremental dual repair in
        # update_column()/update_row() a valid optimality certificate.
        for _ in range(self.m - self.real_n):
            self._cost.append([0.0] * self.m)
        self.n = self.m if self.m else self.real_n
        self._u = [0.0] * self.n
        self._v = [0.0] * self.m
        self._match_row: List[int] = [-1] * self.n  # row -> col
        self._match_col: List[int] = [-1] * self.m  # col -> row
        self._solved = False

    # ------------------------------------------------------------------
    # Core routines
    # ------------------------------------------------------------------
    def solve(self) -> float:
        """Compute (or re-use) the optimal assignment; return its cost."""
        if not self._solved:
            for row in range(self.n):
                if self._match_row[row] == -1:
                    self._augment(row)
            self._solved = True
        return self.cost()

    def cost(self) -> float:
        """Total cost of the current matching (call :meth:`solve` first)."""
        total = 0.0
        for row in range(self.real_n):
            col = self._match_row[row]
            if col == -1:
                raise RuntimeError("matching incomplete; call solve() first")
            total += self._cost[row][col]
        return total

    def assignment(self) -> List[int]:
        """Return ``row → column`` of the current matching (a copy).

        Only the caller's real rows are reported; internal zero-cost padding
        rows are omitted.
        """
        return list(self._match_row[: self.real_n])

    def _augment(self, start_row: int) -> None:
        """Grow the matching with a shortest augmenting path from a free row.

        Dijkstra over reduced costs ``c[i][j] - u[i] - v[j]``; maintains dual
        feasibility and complementary slackness, the invariants that make
        incremental re-optimisation after cost updates valid.
        """
        cost, u, v = self._cost, self._u, self._v
        match_col = self._match_col
        m = self.m

        min_to = [_INF] * m  # current Dijkstra distance to each column
        prev_col: List[int] = [-1] * m  # predecessor column on the path
        visited = [False] * m

        cur_row = start_row
        cur_col = -1  # column we are scanning from; -1 = the free start row
        while True:
            # Relax all edges out of cur_row over reduced costs.
            best_delta = _INF
            best_col = -1
            row_u = u[cur_row]
            row_costs = cost[cur_row]
            for col in range(m):
                if visited[col]:
                    continue
                reduced = row_costs[col] - row_u - v[col]
                if reduced < min_to[col]:
                    min_to[col] = reduced
                    prev_col[col] = cur_col
                if min_to[col] < best_delta:
                    best_delta = min_to[col]
                    best_col = col
            if best_col == -1:
                raise RuntimeError("no augmenting path found (matrix malformed)")

            # Shift duals by the frontier distance so relaxed edges stay
            # tight; subtract it from pending distances.
            for col in range(m):
                if visited[col]:
                    u[match_col[col]] += best_delta
                    v[col] -= best_delta
                else:
                    min_to[col] -= best_delta
            u[start_row] += best_delta

            visited[best_col] = True
            cur_col = best_col
            if match_col[best_col] == -1:
                break
            cur_row = match_col[best_col]

        # Flip the alternating path ending at cur_col.
        col = cur_col
        while col != -1:
            parent = prev_col[col]
            row = self._match_col[parent] if parent != -1 else start_row
            self._match_col[col] = row
            self._match_row[row] = col
            col = parent

    # ------------------------------------------------------------------
    # Incremental updates (Dynamic Hungarian, reference [25])
    # ------------------------------------------------------------------
    def update_column(self, col: int, new_costs: Sequence[float]) -> None:
        """Replace column *col*'s costs and re-optimise incrementally.

        Restores dual feasibility for the changed column
        (``v[col] = min_i c[i][col] - u[i]``), frees the row that was matched
        to it, and re-augments that row — the column-update rule of the
        dynamic Hungarian algorithm.  O(rows·cols).
        """
        if not 0 <= col < self.m:
            raise IndexError(f"column {col} out of range")
        if len(new_costs) != self.real_n:
            raise ValueError(f"expected {self.real_n} costs, got {len(new_costs)}")
        for row in range(self.real_n):
            self._cost[row][col] = new_costs[row]
        if not self._solved:
            return  # nothing to repair; solve() will handle it
        self._v[col] = min(
            self._cost[row][col] - self._u[row] for row in range(self.n)
        )
        freed = self._match_col[col]
        if freed != -1:
            self._match_col[col] = -1
            self._match_row[freed] = -1
            self._augment(freed)

    def update_row(self, row: int, new_costs: Sequence[float]) -> None:
        """Replace row *row*'s costs and re-optimise incrementally."""
        if not 0 <= row < self.real_n:
            raise IndexError(f"row {row} out of range")
        if len(new_costs) != self.m:
            raise ValueError(f"expected {self.m} costs, got {len(new_costs)}")
        self._cost[row][:] = list(new_costs)
        if not self._solved:
            return
        self._u[row] = min(
            self._cost[row][col] - self._v[col] for col in range(self.m)
        )
        old_col = self._match_row[row]
        if old_col != -1:
            self._match_row[row] = -1
            self._match_col[old_col] = -1
        self._augment(row)

    def current_cost_of(self, row: int) -> float:
        """Cost contributed by *row* under the current matching."""
        col = self._match_row[row]
        if col == -1:
            raise RuntimeError("row is unmatched; call solve() first")
        return self._cost[row][col]


def hungarian(costs: Matrix) -> Tuple[float, List[int]]:
    """Solve an assignment problem; return ``(total_cost, row_to_col)``.

    Accepts any rectangular matrix.  When there are more rows than columns
    the matrix is transposed internally and the assignment translated back,
    with unmatched rows reported as ``-1``.

    Examples
    --------
    >>> hungarian([[1, 2], [2, 1]])
    (2.0, [0, 1])
    """
    n = len(costs)
    if n == 0:
        return 0.0, []
    m = len(costs[0])
    if m == 0:
        raise ValueError("cost matrix has zero columns")
    if n <= m:
        solver = HungarianSolver(costs)
        total = solver.solve()
        return total, solver.assignment()
    transposed = [[costs[i][j] for i in range(n)] for j in range(m)]
    solver = HungarianSolver(transposed)
    total = solver.solve()
    row_to_col = [-1] * n
    for col, row in enumerate(solver.assignment()):
        row_to_col[row] = col
    return total, row_to_col
