"""Tests for exact GED (A*) including threshold and budget behaviour."""

from __future__ import annotations

import pytest

from repro.errors import SearchBudgetExceeded
from repro.graphs.edit_distance import (
    ged_within,
    graph_edit_distance,
    naive_upper_bound,
    trivial_lower_bound,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.model import Graph


class TestExactValues:
    def test_identity(self, paper_g1):
        assert graph_edit_distance(paper_g1, paper_g1) == 0

    def test_isomorphic_with_different_ids(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph({7: "b", 3: "a"}, [(3, 7)])
        assert graph_edit_distance(g1, g2) == 0

    def test_single_relabel(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a", "c"], [(0, 1)])
        assert graph_edit_distance(g1, g2) == 1

    def test_single_edge_deletion(self):
        g1 = Graph(["a", "b", "c"], [(0, 1), (1, 2)])
        g2 = Graph(["a", "b", "c"], [(0, 1)])
        assert graph_edit_distance(g1, g2) == 1

    def test_vertex_insertion(self):
        g1 = Graph(["a"])
        g2 = Graph(["a", "b"])
        assert graph_edit_distance(g1, g2) == 1

    def test_vertex_with_edge_insertion(self):
        g1 = Graph(["a"])
        g2 = Graph(["a", "b"], [(0, 1)])
        assert graph_edit_distance(g1, g2) == 2

    def test_empty_vs_empty(self):
        assert graph_edit_distance(Graph(), Graph()) == 0

    def test_empty_vs_graph(self):
        g = Graph(["a", "b"], [(0, 1)])
        assert graph_edit_distance(Graph(), g) == 3
        assert graph_edit_distance(g, Graph()) == 3

    def test_symmetry(self, rng):
        for _ in range(10):
            g1 = erdos_renyi(rng, "ab", rng.randint(1, 4), 0.5)
            g2 = erdos_renyi(rng, "ab", rng.randint(1, 4), 0.5)
            assert graph_edit_distance(g1, g2) == graph_edit_distance(g2, g1)

    def test_paper_graphs(self, paper_g1, paper_g2):
        # g2 = g1 + one vertex 'd' + two edges: λ = 3.
        assert graph_edit_distance(paper_g1, paper_g2) == 3


class TestThreshold:
    def test_within_threshold_returns_value(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a", "c"], [(0, 1)])
        assert graph_edit_distance(g1, g2, threshold=1) == 1

    def test_beyond_threshold_returns_none(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["x", "y", "z"])
        assert graph_edit_distance(g1, g2, threshold=1) is None

    def test_ged_within(self, rng):
        for _ in range(10):
            g1 = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            g2 = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            exact = graph_edit_distance(g1, g2)
            for tau in range(0, exact + 2):
                assert ged_within(g1, g2, tau) == (exact <= tau)

    def test_threshold_zero_is_isomorphism_test(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["b", "a"], [(0, 1)])
        assert ged_within(g1, g2, 0)

    def test_empty_graph_threshold(self):
        g = Graph(["a", "b"], [(0, 1)])
        assert graph_edit_distance(Graph(), g, threshold=2) is None
        assert graph_edit_distance(Graph(), g, threshold=3) == 3


class TestBudget:
    def test_budget_exceeded_raises(self):
        g1 = erdos_renyi(__import__("random").Random(5), "ab", 8, 0.5)
        g2 = erdos_renyi(__import__("random").Random(6), "ab", 8, 0.5)
        with pytest.raises(SearchBudgetExceeded) as exc:
            graph_edit_distance(g1, g2, budget=3)
        assert exc.value.budget == 3
        assert exc.value.expanded > 3


class TestCheapBounds:
    def test_trivial_lower_bound_is_lower(self, rng):
        for _ in range(10):
            g1 = erdos_renyi(rng, "abc", rng.randint(1, 5), 0.4)
            g2 = erdos_renyi(rng, "abc", rng.randint(1, 5), 0.4)
            exact = graph_edit_distance(g1, g2)
            assert trivial_lower_bound(g1, g2) <= exact
            assert exact <= naive_upper_bound(g1, g2)

    def test_trivial_lower_bound_identity(self, paper_g1):
        assert trivial_lower_bound(paper_g1, paper_g1) == 0

    def test_naive_upper_bound_value(self):
        g1 = Graph(["a", "b"], [(0, 1)])  # 2 vertices + 1 edge
        g2 = Graph(["c"])  # 1 vertex
        assert naive_upper_bound(g1, g2) == 4
