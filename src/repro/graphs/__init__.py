"""Graph substrate: data model, star decomposition, GED, generators, I/O."""

from .model import (
    Graph,
    database_max_degree,
    degree_histogram,
    normalization_factor,
)
from .star import (
    Star,
    decompose,
    decompose_map,
    epsilon_distance,
    max_epsilon_distance,
    multiset_intersection_size,
    sed_via_common_leaves,
    star_at,
    star_edit_distance,
)
from .edit_distance import (
    ged_within,
    graph_edit_distance,
    naive_upper_bound,
    trivial_lower_bound,
)
from .editpath import (
    apply_edit_script,
    edit_script_from_mapping,
    extract_edit_script,
    render_edit_script,
)
from .isomorphism import are_isomorphic, find_isomorphism
from .subgraph_distance import (
    is_subgraph_isomorphic,
    subgraph_edit_distance,
    subgraph_label_lower_bound,
    subgraph_within,
)

__all__ = [
    "Graph",
    "Star",
    "apply_edit_script",
    "are_isomorphic",
    "edit_script_from_mapping",
    "extract_edit_script",
    "find_isomorphism",
    "database_max_degree",
    "decompose",
    "decompose_map",
    "degree_histogram",
    "epsilon_distance",
    "ged_within",
    "graph_edit_distance",
    "max_epsilon_distance",
    "multiset_intersection_size",
    "naive_upper_bound",
    "normalization_factor",
    "render_edit_script",
    "sed_via_common_leaves",
    "is_subgraph_isomorphic",
    "star_at",
    "star_edit_distance",
    "subgraph_edit_distance",
    "subgraph_label_lower_bound",
    "subgraph_within",
    "trivial_lower_bound",
]
