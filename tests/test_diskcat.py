"""Tests for the ``.segosx`` mmap sidecar, delta segments, and disk transport."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ENV_MMAP
from repro.core.engine import SegosIndex
from repro.core.join import similarity_self_join
from repro.core.knn import knn_query
from repro.core.persistence import load_index, save_index, sidecar_path_for
from repro.core.pipeline import PipelinedSegos
from repro.core.verify import verify_candidates
from repro.datasets import aids_like, sample_queries
from repro.errors import SidecarError, StaleSidecarError
from repro.graphs import io as gio
from repro.graphs.model import Graph
from repro.perf import columnar, diskcat
from repro.perf.diskcat import (
    ALIGNMENT,
    HEADER_SIZE,
    DiskCatalog,
    LazyGraphStore,
    default_sidecar_path,
    read_header,
    replay_generation_bumps,
    scan_graph_ranges,
)
from repro.perf.parallel import parallel_batch_range_query


def build_corpus(n=20, seed=7, **engine_kwargs):
    data = aids_like(n, seed=seed, mean_order=8, stddev=2)
    engine = SegosIndex(data.graphs, **engine_kwargs)
    return data, engine


@pytest.fixture
def saved(tmp_path):
    data, engine = build_corpus()
    path = tmp_path / "db.segos"
    save_index(engine, path)
    return data, engine, path


def answers(engine, data, tau=2):
    """Ordered answers across every query surface, for byte-identity checks."""
    queries = sample_queries(data, 2, seed=11)
    out = {
        "range": [
            (list(r.candidates), sorted(r.matches))
            for r in (engine.range_query(q, tau=tau, verify="exact") for q in queries)
        ],
        "batch": [
            list(r.candidates)
            for r in engine.batch_range_query(queries, tau=tau)
        ],
        "pipelined": [
            list(PipelinedSegos(engine).range_query(q, tau=tau).candidates)
            for q in queries
        ],
        "knn": knn_query(engine, queries[0], k=3).neighbours,
        "join": list(similarity_self_join(engine, tau=1).candidates),
    }
    return out


class TestSidecarFormat:
    def test_default_path_is_a_suffix(self, tmp_path):
        assert default_sidecar_path(tmp_path / "x.segos") == str(
            tmp_path / "x.segos.segosx"
        )

    def test_sidecar_written_next_to_text(self, saved):
        _, _, path = saved
        assert (path.parent / "db.segos.segosx").exists()

    def test_header_round_trip(self, saved):
        _, engine, path = saved
        header = read_header(default_sidecar_path(path))
        assert header.version == diskcat.FORMAT_VERSION
        assert header.generation == 0
        assert header.delta_count == 0
        assert header.source_size == path.stat().st_size

    def test_header_crc_corruption_rejected(self, saved):
        _, _, path = saved
        sidecar = default_sidecar_path(path)
        blob = bytearray(open(sidecar, "rb").read())
        blob[40] ^= 0xFF  # inside the header, past magic/version
        open(sidecar, "wb").write(blob)
        with pytest.raises(SidecarError):
            read_header(sidecar)

    def test_bad_magic_rejected(self, saved):
        _, _, path = saved
        sidecar = default_sidecar_path(path)
        blob = bytearray(open(sidecar, "rb").read())
        blob[:4] = b"NOPE"
        open(sidecar, "wb").write(blob)
        with pytest.raises(SidecarError):
            read_header(sidecar)

    def test_truncated_header_rejected(self, saved):
        _, _, path = saved
        sidecar = default_sidecar_path(path)
        blob = open(sidecar, "rb").read()
        open(sidecar, "wb").write(blob[: HEADER_SIZE // 2])
        with pytest.raises(SidecarError):
            read_header(sidecar)

    def test_sections_are_aligned(self, saved):
        _, _, path = saved
        with DiskCatalog(default_sidecar_path(path)) as disk:
            for name in diskcat.SECTION_NAMES:
                offset, _length, _crc = disk._sections[name]
                assert offset % ALIGNMENT == 0

    def test_checksums_verify_clean(self, saved):
        _, _, path = saved
        with DiskCatalog(default_sidecar_path(path)) as disk:
            assert disk.verify_checksums() == []

    def test_checksum_catches_section_corruption(self, saved):
        _, _, path = saved
        sidecar = default_sidecar_path(path)
        with DiskCatalog(sidecar) as disk:
            offset, length, _crc = disk._sections["cat_lids"]
        assert length > 0
        blob = bytearray(open(sidecar, "rb").read())
        blob[offset] ^= 0xFF
        open(sidecar, "wb").write(blob)
        with DiskCatalog(sidecar) as disk:
            assert any("cat_lids" in problem for problem in disk.verify_checksums())

    def test_sidecar_path_override_precedence(self, tmp_path):
        _, engine = build_corpus(n=4, index_path=str(tmp_path / "cfg.segosx"))
        path = tmp_path / "db.segos"
        assert sidecar_path_for(path, engine.config, None) == str(
            tmp_path / "cfg.segosx"
        )
        assert sidecar_path_for(path, engine.config, str(tmp_path / "arg.segosx")) == str(
            tmp_path / "arg.segosx"
        )

    def test_replay_generation_bumps(self):
        ops = [("add", "a", "t"), ("remove", "b", ""), ("update", "c", "t")]
        assert replay_generation_bumps(ops) == 4


class TestMmapLoad:
    def test_attaches_without_rebuilding(self, saved):
        _, _, path = saved
        loaded = load_index(path)
        assert loaded.disk_handle() is not None
        assert loaded.index.promoted is False

    def test_rebuild_when_mmap_disabled(self, saved, monkeypatch):
        _, _, path = saved
        assert load_index(path, mmap=False).disk_handle() is None
        monkeypatch.setenv(ENV_MMAP, "0")
        assert load_index(path).disk_handle() is None

    def test_consistency_while_mapped(self, saved):
        _, _, path = saved
        loaded = load_index(path)
        loaded.check_consistency()
        assert loaded.index.promoted is False

    @settings(
        deadline=None,
        max_examples=4,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 10_000))
    def test_mapped_equals_rebuilt_across_all_query_modes(self, tmp_path, seed):
        """Acceptance bar: mmap-loaded and rebuilt engines agree byte-for-byte
        on every query surface — range, batch, pipelined, knn, and join."""
        data, engine = build_corpus(n=12, seed=seed)
        path = tmp_path / f"db-{seed}.segos"
        save_index(engine, path)
        mapped = load_index(path)
        rebuilt = load_index(path, mmap=False)
        assert mapped.disk_handle() is not None
        assert answers(mapped, data) == answers(rebuilt, data)
        mapped.check_consistency()

    def test_graphs_served_lazily_from_text(self, saved):
        data, engine, path = saved
        loaded = load_index(path)
        for gid in loaded.gids():
            assert loaded.graph(gid).label_multiset() == engine.graph(
                gid
            ).label_multiset()


class TestStalenessFallbacks:
    def test_modified_text_falls_back_to_rebuild(self, saved, paper_g1):
        data, engine, path = saved
        with open(path, "a", encoding="utf-8") as fh:
            gio.write_graphs(fh, [("intruder", paper_g1)])
        loaded = load_index(path)
        assert loaded.disk_handle() is None  # stale sidecar: rebuilt instead
        assert "intruder" in set(loaded.gids())

    def test_truncated_sidecar_falls_back(self, saved):
        _, engine, path = saved
        sidecar = default_sidecar_path(path)
        blob = open(sidecar, "rb").read()
        open(sidecar, "wb").write(blob[: len(blob) // 2])
        loaded = load_index(path)
        assert loaded.disk_handle() is None
        assert set(loaded.gids()) == set(engine.gids())

    def test_missing_sidecar_falls_back(self, saved, tmp_path):
        import os

        _, engine, path = saved
        os.unlink(default_sidecar_path(path))
        loaded = load_index(path)
        assert loaded.disk_handle() is None
        assert set(loaded.gids()) == set(engine.gids())


class TestMutationPromotes:
    def test_remove_promotes_and_matches_rebuilt(self, saved):
        data, engine, path = saved
        victim = sorted(engine.gids())[0]
        mapped = load_index(path)
        rebuilt = load_index(path, mmap=False)
        mapped.remove(victim)
        rebuilt.remove(victim)
        assert mapped.index.promoted is True
        assert mapped.disk_handle() is None  # handle no longer covers state
        mapped.check_consistency()
        assert answers(mapped, data) == answers(rebuilt, data)

    def test_add_promotes(self, saved, paper_g1):
        _, _, path = saved
        mapped = load_index(path)
        mapped.add("fresh", paper_g1)
        assert mapped.index.promoted is True
        assert "fresh" in set(mapped.gids())
        mapped.check_consistency()

    def test_edge_edit_promotes(self, saved):
        _, _, path = saved
        mapped = load_index(path)
        gid = sorted(mapped.gids())[0]
        u, v = next(iter(mapped.graph(gid).edges()))
        mapped.remove_edge(gid, u, v)
        assert mapped.index.promoted is True
        mapped.check_consistency()

    def test_mapped_engine_pickles_by_promoting_a_copy(self, saved):
        data, _, path = saved
        mapped = load_index(path)
        clone = pickle.loads(pickle.dumps(mapped))
        assert set(clone.gids()) == set(mapped.gids())
        assert answers(clone, data) == answers(mapped, data)
        # Pickling materialises through promotion — the source index pays
        # the one-time build too (mapped views cannot cross processes).
        assert mapped.index.promoted is True


class TestDeltaSegments:
    def test_remove_appends_a_delta(self, saved):
        data, engine, path = saved
        victim = sorted(engine.gids())[0]
        engine.remove(victim)
        save_index(engine, path)
        header = read_header(default_sidecar_path(path))
        assert header.delta_count == 1
        assert header.generation == 1  # one remove = one bump
        reloaded = load_index(path)
        assert reloaded.disk_handle() is not None
        assert victim not in set(reloaded.gids())
        assert answers(reloaded, data) == answers(
            load_index(path, mmap=False), data
        )

    def test_update_bumps_generation_twice(self, saved):
        _, engine, path = saved
        gid = sorted(engine.gids())[0]
        u, v = next(iter(engine.graph(gid).edges()))
        engine.remove_edge(gid, u, v)
        save_index(engine, path)
        header = read_header(default_sidecar_path(path))
        assert header.delta_count == 1
        assert header.generation == 2  # update = remove + re-add of stars
        reloaded = load_index(path)
        assert reloaded.disk_handle() is not None
        assert reloaded.graph(gid).size == engine.graph(gid).size

    def test_compact_zero_always_rewrites(self, tmp_path):
        data, engine = build_corpus(delta_compact=0.0)
        path = tmp_path / "db.segos"
        save_index(engine, path)
        engine.remove(sorted(engine.gids())[0])
        save_index(engine, path)
        header = read_header(default_sidecar_path(path))
        assert header.delta_count == 0
        assert header.generation == 0  # fresh base, no replay tail

    def test_accumulated_deltas_compact_past_threshold(self, tmp_path):
        data, engine = build_corpus(n=12, delta_compact=0.25)
        path = tmp_path / "db.segos"
        save_index(engine, path)
        gids = sorted(engine.gids())
        engine.remove(gids[0])
        save_index(engine, path)
        assert read_header(default_sidecar_path(path)).delta_count == 1
        for gid in gids[1:5]:
            engine.remove(gid)
        save_index(engine, path)  # 5 net ops > 0.25 * 12 base graphs
        header = read_header(default_sidecar_path(path))
        assert header.delta_count == 0
        assert header.generation == 0
        reloaded = load_index(path)
        assert reloaded.disk_handle() is not None
        assert set(reloaded.gids()) == set(engine.gids())

    def test_noop_save_leaves_files_untouched(self, saved):
        import os

        _, engine, path = saved
        sidecar = default_sidecar_path(path)
        before = (os.stat(path).st_mtime_ns, open(sidecar, "rb").read())
        save_index(engine, path)
        after = (os.stat(path).st_mtime_ns, open(sidecar, "rb").read())
        assert before == after

    def test_external_rewrite_forces_full_base(self, saved, paper_g1):
        """A second writer invalidates the first engine's delta baseline; the
        next save must fall back to a full rewrite, not corrupt the chain."""
        data, engine, path = saved
        other = load_index(path, mmap=False)
        other.add("other", paper_g1)
        save_index(other, path)
        engine.remove(sorted(engine.gids())[0])
        save_index(engine, path)  # stale baseline: full rewrite
        header = read_header(default_sidecar_path(path))
        assert header.delta_count == 0
        reloaded = load_index(path)
        assert set(reloaded.gids()) == set(engine.gids())

    def test_non_string_gids_save_without_delta_tracking(
        self, tmp_path, paper_g1, paper_g2
    ):
        """Text round-trips stringify gids, so a non-string-gid engine cannot
        claim the saved file as its own baseline — but the file itself is a
        perfectly good (stringified) mmap target for the next load."""
        engine = SegosIndex()
        engine.add(1, paper_g1)
        engine.add(2, paper_g2)
        path = tmp_path / "ints.segos"
        save_index(engine, path)
        assert engine.disk_handle() is None
        loaded = load_index(path)
        assert loaded.disk_handle() is not None
        assert set(loaded.gids()) == {"1", "2"}


class TestWorkerTransports:
    def test_batch_disk_transport_matches_serial(self, saved):
        data, _, path = saved
        engine = load_index(path)
        assert engine.disk_handle() is not None
        queries = sample_queries(data, 4, seed=13)
        results, events = parallel_batch_range_query(
            engine, queries, 2, workers=2
        )
        assert events == []
        serial = engine._serial_batch_range_query(queries, 2)
        assert [sorted(r.candidates) for r in results] == [
            sorted(r.candidates) for r in serial
        ]

    def test_verify_disk_transport_matches_serial(self, saved):
        data, _, path = saved
        engine = load_index(path)
        handle = engine.disk_handle()
        assert handle is not None
        query = sample_queries(data, 1, seed=17)[0]
        result = engine.range_query(query, tau=3)
        serial = verify_candidates(
            dict((g, engine.graph(g)) for g in engine.gids()),
            query,
            list(result.candidates),
            3,
            workers=1,
        )
        pooled = verify_candidates(
            dict((g, engine.graph(g)) for g in engine.gids()),
            query,
            list(result.candidates),
            3,
            workers=2,
            disk_handle=handle,
        )
        assert pooled.matches == serial.matches

    def test_stale_handle_degrades_to_serial_same_answers(self, saved, paper_g1):
        """A handle invalidated on disk after load must degrade loudly —
        recorded degradation events — while still answering correctly."""
        data, _, path = saved
        engine = load_index(path)
        assert engine.disk_handle() is not None
        other = load_index(path, mmap=False)
        other.add("other", paper_g1)
        save_index(other, path)  # rewrites text + sidecar behind engine's back
        queries = sample_queries(data, 2, seed=19)
        results, events = parallel_batch_range_query(
            engine, queries, 2, workers=2
        )
        serial = engine._serial_batch_range_query(queries, 2)
        assert [sorted(r.candidates) for r in results] == [
            sorted(r.candidates) for r in serial
        ]
        assert events  # the fallback is loud, never silent


class TestPurePythonFallback:
    def test_mapped_views_without_numpy(self, saved, monkeypatch):
        data, _, path = saved
        monkeypatch.setattr(diskcat, "_np", None)
        monkeypatch.setattr(columnar, "_np", None)
        mapped = load_index(path)
        assert mapped.disk_handle() is not None
        rebuilt = load_index(path, mmap=False)
        queries = sample_queries(data, 2, seed=23)
        for q in queries:
            a = mapped.range_query(q, tau=2, verify="exact")
            b = rebuilt.range_query(q, tau=2, verify="exact")
            assert list(a.candidates) == list(b.candidates)
            assert a.matches == b.matches
        mapped.check_consistency()

    def test_int64_view_fallback_round_trips(self, monkeypatch):
        monkeypatch.setattr(diskcat, "_np", None)
        values = [0, 1, -1, 2**40, -(2**40)]
        packed = diskcat._pack_int64(values)
        view = diskcat._int64_view(memoryview(packed))
        assert [int(x) for x in view] == values


class TestLazyGraphStore:
    def test_scan_graph_ranges(self, tmp_path, paper_g1, paper_g2):
        path = tmp_path / "two.txt"
        gio.save(path, [("g1", paper_g1), ("g2", paper_g2)])
        blob = path.read_bytes()
        ranges = scan_graph_ranges(blob)
        assert list(ranges) == ["g1", "g2"]
        for gid, (lo, hi) in ranges.items():
            pairs = gio.loads(blob[lo:hi].decode("utf-8"))
            assert [g for g, _ in pairs] == [gid]

    def test_mapping_semantics(self, saved):
        data, engine, path = saved
        store = LazyGraphStore(str(path))
        assert len(store) == len(engine)
        assert set(store) == set(engine.gids())
        gid = sorted(engine.gids())[0]
        assert gid in store  # membership must not parse
        assert store[gid].label_multiset() == engine.graph(gid).label_multiset()
        store["extra"] = Graph(["z"])
        assert len(store) == len(engine) + 1
        del store[gid]
        assert gid not in store
        with pytest.raises(KeyError):
            store[gid]
        with pytest.raises(KeyError):
            del store["never-there"]

    def test_sha_mismatch_raises_stale(self, saved):
        _, _, path = saved
        with pytest.raises(StaleSidecarError):
            LazyGraphStore(str(path), expected_sha=b"\x00" * 32)

    def test_pickle_materialises(self, saved):
        _, engine, path = saved
        store = LazyGraphStore(str(path))
        clone = pickle.loads(pickle.dumps(store))
        assert set(clone) == set(engine.gids())
        gid = sorted(engine.gids())[0]
        assert clone[gid].label_multiset() == engine.graph(gid).label_multiset()
