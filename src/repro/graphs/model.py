"""Labelled, undirected, simple graphs — the data model of the paper.

The paper (Section III) works over a database of undirected simple graphs
whose vertices carry labels drawn from a finite alphabet with a total order.
Edges are unlabelled.  :class:`Graph` implements exactly that model, plus the
seven mutation kinds enumerated in Section IV-C (insert/delete graph happens
at the index layer; the per-graph mutations live here):

* insert an edge / delete an edge,
* insert a vertex / delete a vertex,
* relabel a vertex.

Vertices are identified by non-negative integers chosen by the caller.  Ids
do not need to be contiguous, which keeps deletion cheap and keeps ids stable
across mutations — a property the index-maintenance layer relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..errors import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    GraphError,
    VertexNotFound,
)

Label = str
Edge = Tuple[int, int]


def _normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """A labelled, undirected, simple graph.

    Parameters
    ----------
    labels:
        Mapping from vertex id to vertex label.  May also be an iterable of
        labels, in which case vertices are numbered ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops and duplicate edges are
        rejected because the model is a *simple* graph.

    Examples
    --------
    >>> g = Graph(["a", "b", "c"], [(0, 1), (1, 2)])
    >>> g.order
    3
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_labels", "_adj", "_num_edges")

    def __init__(
        self,
        labels: Mapping[int, Label] | Iterable[Label] = (),
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self._labels: Dict[int, Label] = {}
        self._adj: Dict[int, Set[int]] = {}
        self._num_edges = 0
        if isinstance(labels, Mapping):
            items: Iterable[Tuple[int, Label]] = labels.items()
        else:
            items = enumerate(labels)
        for vid, label in items:
            self.add_vertex(vid, label)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Read-only accessors
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of vertices, written ``|g|`` in the paper."""
        return len(self._labels)

    @property
    def size(self) -> int:
        """Number of edges."""
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids (in insertion order)."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once in canonical order."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u <= v:
                    yield (u, v)

    def label(self, vertex: int) -> Label:
        """Return the label of *vertex*."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise VertexNotFound(vertex) from None

    def labels(self) -> Dict[int, Label]:
        """Return a copy of the vertex → label mapping."""
        return dict(self._labels)

    def label_multiset(self) -> List[Label]:
        """Return the sorted multiset of all vertex labels."""
        return sorted(self._labels.values())

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._labels

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, vertex: int) -> Set[int]:
        """Return the set of neighbours of *vertex* (a copy)."""
        try:
            return set(self._adj[vertex])
        except KeyError:
            raise VertexNotFound(vertex) from None

    def degree(self, vertex: int) -> int:
        """``deg(v)`` from Table I."""
        try:
            return len(self._adj[vertex])
        except KeyError:
            raise VertexNotFound(vertex) from None

    def max_degree(self) -> int:
        """``δ(g) = max_v deg(v)`` from Table I; 0 for the empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # Mutations (Section IV-C update kinds 3–7)
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, label: Label) -> None:
        """Insert a new isolated vertex with the given label."""
        if not isinstance(vertex, int) or vertex < 0:
            raise GraphError(f"vertex ids must be non-negative ints, got {vertex!r}")
        if vertex in self._labels:
            raise DuplicateVertex(vertex)
        self._labels[vertex] = label
        self._adj[vertex] = set()

    def remove_vertex(self, vertex: int) -> None:
        """Delete *vertex* and every edge incident to it."""
        if vertex not in self._labels:
            raise VertexNotFound(vertex)
        for nbr in self._adj[vertex]:
            self._adj[nbr].discard(vertex)
            self._num_edges -= 1
        del self._adj[vertex]
        del self._labels[vertex]

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``{u, v}``."""
        if u == v:
            raise GraphError(f"self loops are not allowed (vertex {u})")
        if u not in self._labels:
            raise VertexNotFound(u)
        if v not in self._labels:
            raise VertexNotFound(v)
        if v in self._adj[u]:
            raise DuplicateEdge(u, v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}``."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFound(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def relabel_vertex(self, vertex: int, label: Label) -> None:
        """Replace the label of *vertex*."""
        if vertex not in self._labels:
            raise VertexNotFound(vertex)
        self._labels[vertex] = label

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy of this graph."""
        clone = Graph()
        clone._labels = dict(self._labels)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def relabelled_compact(self) -> Tuple["Graph", Dict[int, int]]:
        """Return a copy with vertices renumbered ``0..n-1``.

        Also returns the mapping from old ids to new ids.  Useful before
        handing the graph to dense-matrix algorithms (A*, Hungarian).
        """
        mapping = {old: new for new, old in enumerate(self._labels)}
        clone = Graph(
            [self._labels[old] for old in self._labels],
            [(mapping[u], mapping[v]) for u, v in self.edges()],
        )
        return clone, mapping

    def connected_components(self) -> List[Set[int]]:
        """Return the vertex sets of the connected components."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self._labels:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nbr in self._adj[node]:
                    if nbr not in component:
                        component.add(nbr)
                        frontier.append(nbr)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True when the graph has at most one connected component."""
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural identity: same ids, labels and edges.

        Note this is *not* isomorphism — two isomorphic graphs with
        different vertex ids compare unequal.  Use
        :func:`repro.graphs.edit_distance.graph_edit_distance` ``== 0`` for
        an isomorphism check.
        """
        if not isinstance(other, Graph):
            return NotImplemented
        return self._labels == other._labels and self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - exercised implicitly
        return hash(
            (
                tuple(sorted(self._labels.items())),
                tuple(sorted(self.edges())),
            )
        )

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._labels

    def __repr__(self) -> str:
        return f"Graph(order={self.order}, size={self.size})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls, labels: Iterable[Label], edges: Iterable[Tuple[int, int]]
    ) -> "Graph":
        """Build a graph from 0-based labels and an edge list."""
        return cls(list(labels), edges)

    @classmethod
    def single_vertex(cls, label: Label) -> "Graph":
        """Build the one-vertex graph with the given label."""
        return cls([label])


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return ``{degree: count}`` over all vertices of *graph*."""
    histogram: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def database_max_degree(graphs: Iterable[Graph]) -> int:
    """``δ(D) = max_g δ(g)`` from Table I; 0 for an empty iterable."""
    result = 0
    for g in graphs:
        d = g.max_degree()
        if d > result:
            result = d
    return result


def normalization_factor(
    query: Graph, other: Optional[Graph] = None, *, database_max: int = 0
) -> int:
    """The paper's ``δ' = max{4, ⌈max{δ(q), δ(·)} + 1⌉}`` denominator.

    Used by Lemma 2 (``other`` = a concrete graph) and by the CA halting test
    (``database_max`` = δ over all still-unseen graphs, for which δ(D) is a
    safe over-approximation).
    """
    delta = query.max_degree()
    if other is not None:
        delta = max(delta, other.max_degree())
    delta = max(delta, database_max)
    return max(4, delta + 1)
