"""Tests for the columnar star-catalog mirror and the top-k backend planner."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import GraphMeta, TwoLevelIndex
from repro.core.sqlite_index import SqliteTwoLevelIndex
from repro.core import ta_search
from repro.core.ta_search import (
    ENV_TOPK_BACKEND,
    brute_force_top_k,
    plan_topk_backend,
    resolve_topk_backend,
    top_k_stars,
)
from repro.graphs.generators import corpus
from repro.graphs.star import Star, decompose, star_edit_distance
from repro.perf import columnar
from repro.perf.columnar import ColumnarCatalog, columnar_snapshot, numpy_available

LABELS = "abcd"

labels_st = st.sampled_from(LABELS)
star_st = st.builds(Star, labels_st, st.lists(labels_st, max_size=6))


def build_index(n_graphs=12, seed=5, backend="memory"):
    rng = random.Random(seed)
    graphs = corpus(rng, n_graphs, kind="chemical", mean_order=8, stddev=2)
    index = SqliteTwoLevelIndex() if backend == "sqlite" else TwoLevelIndex()
    for i, graph in enumerate(graphs):
        index.add_graph(f"g{i}", graph, decompose(graph))
    return index, graphs


@pytest.fixture(scope="module")
def catalog_setup():
    return build_index()


class TestSnapshotBuild:
    def test_rows_are_live_sids_sorted(self, catalog_setup):
        index, _ = catalog_setup
        snapshot = ColumnarCatalog.build(index)
        assert list(snapshot.sids) == sorted(index.catalog.live_sids())
        assert snapshot.n_rows == len(index.catalog)

    def test_label_ids_follow_string_order(self, catalog_setup):
        index, _ = catalog_setup
        snapshot = ColumnarCatalog.build(index)
        labels = sorted(snapshot.label_to_id)
        assert [snapshot.label_to_id[label] for label in labels] == list(
            range(len(labels))
        )

    def test_leaf_csr_mirrors_star_leaves(self, catalog_setup):
        index, _ = catalog_setup
        snapshot = ColumnarCatalog.build(index)
        id_to_label = {i: label for label, i in snapshot.label_to_id.items()}
        for row, sid in enumerate(snapshot.sids):
            star = index.catalog.star(int(sid))
            lo, hi = int(snapshot.leaf_offsets[row]), int(snapshot.leaf_offsets[row + 1])
            assert [id_to_label[int(i)] for i in snapshot.leaf_ids[lo:hi]] == list(
                star.leaves
            )
            assert int(snapshot.leaf_sizes[row]) == star.leaf_size
            assert id_to_label[int(snapshot.root_ids[row])] == star.root

    def test_sqlite_backend_columnarises_identically(self):
        """Same corpus ⇒ same columnar content (sid numbering may differ)."""

        def rows(snapshot):
            out = []
            for row in range(snapshot.n_rows):
                lo = int(snapshot.leaf_offsets[row])
                hi = int(snapshot.leaf_offsets[row + 1])
                out.append(
                    (
                        int(snapshot.root_ids[row]),
                        tuple(int(i) for i in snapshot.leaf_ids[lo:hi]),
                    )
                )
            return sorted(out)

        mem = ColumnarCatalog.build(build_index(backend="memory")[0])
        sql = ColumnarCatalog.build(build_index(backend="sqlite")[0])
        assert mem.label_to_id == sql.label_to_id
        assert rows(mem) == rows(sql)


class TestSedAgainstAll:
    @settings(deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(star_st)
    def test_matches_scalar_sed(self, catalog_setup, query):
        """The vectorized kernel equals the scalar Lemma 1, row by row."""
        index, _ = catalog_setup
        snapshot = columnar_snapshot(index)
        sed = snapshot.sed_against_all(query)
        for row, sid in enumerate(snapshot.sids):
            assert int(sed[row]) == star_edit_distance(
                query, index.catalog.star(int(sid))
            )

    def test_pure_python_fallback_matches(self, catalog_setup, monkeypatch):
        index, _ = catalog_setup
        query = Star("a", "bbcc")
        with_numpy = ColumnarCatalog.build(index)
        vec = [int(x) for x in with_numpy.sed_against_all(query)]
        entries, width = with_numpy.top_k(query, 5)
        monkeypatch.setattr(columnar, "_np", None)
        assert not numpy_available()
        fallback = ColumnarCatalog.build(index)
        assert fallback.sed_against_all(query) == vec
        assert fallback.top_k(query, 5) == (entries, width)


class TestGenerationCoherence:
    def test_snapshot_cached_until_mutation(self):
        index, graphs = build_index()
        first = columnar_snapshot(index)
        assert columnar_snapshot(index) is first
        index.remove_graph("g0")
        second = columnar_snapshot(index)
        assert second is not first
        assert second.generation == index.generation
        assert list(second.sids) == sorted(index.catalog.live_sids())

    def test_all_mutators_bump_generation(self):
        index, graphs = build_index(n_graphs=3)
        start = index.generation
        extra = corpus(random.Random(99), 1, kind="chemical", mean_order=6)[0]
        index.add_graph("extra", extra, decompose(extra))
        assert index.generation == start + 1
        stars = decompose(extra)
        meta = GraphMeta(order=extra.order, max_degree=max(map(extra.degree, range(extra.order))))
        index.apply_star_delta("extra", stars, stars, meta)
        assert index.generation == start + 2
        index.remove_graph("extra")
        assert index.generation == start + 3

    def test_sqlite_backend_invalidates_on_mutation(self):
        """Generation coherence is backend-independent: the sqlite index must
        invalidate its cached mirror exactly like the in-memory one."""
        index, _ = build_index(backend="sqlite")
        first = columnar_snapshot(index)
        assert columnar_snapshot(index) is first
        index.remove_graph("g0")
        second = columnar_snapshot(index)
        assert second is not first
        assert second.generation == index.generation
        assert list(map(int, second.sids)) == sorted(index.catalog.live_sids())

    def test_concurrent_readers_get_a_coherent_snapshot(self):
        """Racing columnar_snapshot calls between mutations may build the
        mirror twice, but every snapshot handed out must be internally
        consistent and match the generation it claims.  (Memory backend
        only: sqlite connections are thread-affine by construction.)"""
        import threading

        index, _ = build_index(backend="memory")
        errors = []

        def reader(barrier):
            try:
                for _ in range(8):
                    barrier.wait()  # released together: rebuilds race
                    snapshot = columnar_snapshot(index)
                    assert snapshot.generation == index.generation
                    assert snapshot.n_rows == len(snapshot.sids)
                    assert len(snapshot.leaf_offsets) == snapshot.n_rows + 1
                    assert list(map(int, snapshot.sids)) == sorted(
                        index.catalog.live_sids()
                    )
                    barrier.wait()  # all readers done before the next mutation
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                barrier.abort()  # fail fast rather than strand the others

        barrier = threading.Barrier(4)
        threads = [
            threading.Thread(target=reader, args=(barrier,)) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            for victim in [f"g{i}" for i in range(8)]:
                index.remove_graph(victim)  # invalidates the cached mirror
                barrier.wait(timeout=30)
                barrier.wait(timeout=30)
        except threading.BrokenBarrierError:  # pragma: no cover - failure path
            pass
        for thread in threads:
            thread.join()
        assert errors == []
        final = columnar_snapshot(index)
        assert final.generation == index.generation
        assert list(map(int, final.sids)) == sorted(index.catalog.live_sids())

    def test_scan_results_track_mutations(self):
        index, graphs = build_index()
        query = decompose(graphs[0])[0]
        before = top_k_stars(index, query, 4, backend="scan")
        index.remove_graph("g0")
        after = top_k_stars(index, query, 4, backend="scan")
        live = set(index.catalog.live_sids())
        assert all(sid in live for sid, _ in after.entries)
        assert [sed for _, sed in after.entries] == [
            sed for _, sed in brute_force_top_k(index, query, 4)
        ]
        assert before.entries != after.entries or before.scan_width != after.scan_width


class TestBackendAgreement:
    @pytest.mark.parametrize("k", [1, 3, 10, 500])
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_entries_and_floors(self, k, seed):
        """Acceptance criterion: both backends are byte-identical."""
        index, graphs = build_index(seed=seed)
        query_graph = corpus(
            random.Random(seed + 100), 1, kind="chemical", mean_order=8, stddev=2
        )[0]
        for query in decompose(query_graph):
            ta = top_k_stars(index, query, k, backend="ta")
            scan = top_k_stars(index, query, k, backend="scan")
            assert ta.entries == scan.entries
            assert ta.kth_sed == scan.kth_sed
            assert ta.backend == "ta" and scan.backend == "scan"
            assert scan.accesses == 0 and scan.scan_width == len(index.catalog)

    def test_unknown_label_and_leafless_queries(self, catalog_setup):
        index, _ = catalog_setup
        for query in (Star("z", "yy"), Star("a")):
            ta = top_k_stars(index, query, 3, backend="ta")
            scan = top_k_stars(index, query, 3, backend="scan")
            assert ta.entries == scan.entries
            assert ta.kth_sed == scan.kth_sed


class TestBackendResolution:
    def test_explicit_unknown_raises(self, catalog_setup):
        index, _ = catalog_setup
        with pytest.raises(ValueError):
            top_k_stars(index, Star("a"), 1, backend="simd")

    def test_env_selects_backend(self, catalog_setup, monkeypatch):
        index, _ = catalog_setup
        query = Star("a", "bbcc")
        monkeypatch.setenv(ENV_TOPK_BACKEND, "scan")
        assert top_k_stars(index, query, 2).backend == "scan"
        monkeypatch.setenv(ENV_TOPK_BACKEND, "ta")
        assert top_k_stars(index, query, 2).backend == "ta"
        monkeypatch.setenv(ENV_TOPK_BACKEND, "garbage")
        assert resolve_topk_backend() == "auto"
        monkeypatch.delenv(ENV_TOPK_BACKEND)
        assert resolve_topk_backend() == "auto"

    def test_explicit_argument_beats_env(self, catalog_setup, monkeypatch):
        index, _ = catalog_setup
        monkeypatch.setenv(ENV_TOPK_BACKEND, "scan")
        assert top_k_stars(index, Star("a", "bbcc"), 2, backend="ta").backend == "ta"


class TestPlanner:
    def test_k_at_catalog_size_prefers_scan(self, catalog_setup):
        index, _ = catalog_setup
        n = len(index.catalog)
        if numpy_available():
            assert plan_topk_backend(index, Star("a", "bbcc"), n) == "scan"

    def test_row_cost_drives_the_pick(self, catalog_setup, monkeypatch):
        """The cost model reacts to its inputs: an (artificially) expensive
        per-row scan pushes a small-k search back to TA, a free one pulls
        it to scan.  The *constants themselves* are graded against wall
        time by benchmarks/bench_columnar_scan.py, not here."""
        index, _ = catalog_setup
        if not numpy_available():
            pytest.skip("planner always answers ta without numpy")
        query = Star("a", "bbcc")
        monkeypatch.setattr(ta_search, "SCAN_ROW_COST", 1e6)
        assert plan_topk_backend(index, query, 1) == "ta"
        monkeypatch.setattr(ta_search, "SCAN_ROW_COST", 0.0)
        monkeypatch.setattr(ta_search, "SCAN_SETUP_COST", 0.0)
        assert plan_topk_backend(index, query, 1) == "scan"

    def test_ta_estimate_capped_by_postings(self, catalog_setup, monkeypatch):
        """TA can never do more sorted accesses than postings + size list,
        so inflating the per-k estimate must not push the pick past that
        cap: with a sky-high per-row scan cost TA still wins."""
        index, _ = catalog_setup
        if not numpy_available():
            pytest.skip("planner always answers ta without numpy")
        monkeypatch.setattr(ta_search, "TA_ACCESS_ESTIMATE_PER_K", 1e9)
        monkeypatch.setattr(ta_search, "SCAN_ROW_COST", 1e6)
        assert plan_topk_backend(index, Star("a", "bbcc"), 1) == "ta"

    def test_no_generation_counter_means_ta(self, catalog_setup):
        index, _ = catalog_setup

        class Shim:
            catalog = index.catalog
            lower = index.lower

        assert plan_topk_backend(Shim(), Star("a", "bbcc"), 100) == "ta"

    def test_no_numpy_means_ta(self, catalog_setup, monkeypatch):
        index, _ = catalog_setup
        monkeypatch.setattr(columnar, "_np", None)
        assert plan_topk_backend(index, Star("a", "bbcc"), 10_000) == "ta"
        # And top_k_stars under "auto" still answers correctly.
        result = top_k_stars(index, Star("a", "bbcc"), 3, backend="auto")
        assert result.backend == "ta"
        assert [sed for _, sed in result.entries] == [
            sed for _, sed in brute_force_top_k(index, Star("a", "bbcc"), 3)
        ]

    def test_auto_dispatch_follows_the_plan(self, catalog_setup):
        index, _ = catalog_setup
        if not numpy_available():
            pytest.skip("planner always answers ta without numpy")
        query = Star("a", "bbcc")
        for k in (1, len(index.catalog)):
            expected = plan_topk_backend(index, query, k)
            assert top_k_stars(index, query, k, backend="auto").backend == expected
