"""Tests for the global SED memo cache (repro.perf.sed_cache)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.star import Star, star_edit_distance
from repro.perf.sed_cache import (
    GLOBAL_SED_CACHE,
    SEDCache,
    cached_star_edit_distance,
    sed_cache_clear,
    sed_cache_info,
)

labels = st.sampled_from(["a", "b", "c", "ab", "x"])
stars = st.builds(
    Star, labels, st.lists(labels, min_size=0, max_size=6).map(tuple)
)


class TestSEDCacheUnit:
    def test_hit_and_miss_counters(self):
        cache = SEDCache(maxsize=8)
        s1, s2 = Star("a", "bc"), Star("a", "bd")
        assert cache.distance(s1, s2) == star_edit_distance(s1, s2)
        assert cache.distance(s1, s2) == star_edit_distance(s1, s2)
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)
        assert info.requests == 2
        assert info.hit_rate == pytest.approx(0.5)

    def test_symmetric_key_shares_one_entry(self):
        cache = SEDCache(maxsize=8)
        s1, s2 = Star("a", "bbc"), Star("b", "ac")
        first = cache.distance(s1, s2)
        second = cache.distance(s2, s1)
        assert first == second
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_bounded_eviction_drops_oldest(self):
        cache = SEDCache(maxsize=2)
        a, b, c = Star("a"), Star("b"), Star("c")
        cache.distance(a, a)
        cache.distance(b, b)
        cache.distance(c, c)  # over capacity: evicts (a, a), the oldest
        assert cache.info().currsize == 2
        cache.distance(b, b)
        cache.distance(c, c)
        assert cache.info().hits == 2  # survivors still served
        cache.distance(a, a)
        assert cache.info().misses == 4  # (a, a) was evicted, recomputed

    def test_zero_capacity_disables_without_counting(self):
        cache = SEDCache(maxsize=0)
        s = Star("a", "bc")
        assert cache.distance(s, s) == 0
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_clear_resets_everything(self):
        cache = SEDCache(maxsize=8)
        cache.distance(Star("a"), Star("b"))
        cache.distance(Star("a"), Star("b"))
        cache.clear()
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_resize_shrinks_in_place(self):
        cache = SEDCache(maxsize=8)
        for label in "abcdef":
            cache.distance(Star(label), Star(label))
        cache.resize(3)
        assert cache.info().currsize == 3
        assert cache.info().maxsize == 3

    def test_env_capacity(self, monkeypatch):
        from repro.perf import sed_cache as module

        monkeypatch.setenv(module.ENV_CAPACITY, "123")
        assert module._capacity_from_env() == 123
        monkeypatch.setenv(module.ENV_CAPACITY, "not-a-number")
        assert module._capacity_from_env() == module.DEFAULT_CAPACITY
        monkeypatch.delenv(module.ENV_CAPACITY)
        assert module._capacity_from_env() == module.DEFAULT_CAPACITY

    def test_global_helpers_roundtrip(self):
        sed_cache_clear()
        s1, s2 = Star("q", "rs"), Star("q", "rt")
        assert cached_star_edit_distance(s1, s2) == star_edit_distance(s1, s2)
        assert sed_cache_info().misses == 1
        assert cached_star_edit_distance(s1, s2) == star_edit_distance(s1, s2)
        assert sed_cache_info().hits == 1
        sed_cache_clear()
        assert sed_cache_info().requests == 0


class TestSEDCacheProperties:
    @settings(max_examples=200, deadline=None)
    @given(s1=stars, s2=stars)
    def test_cached_equals_uncached(self, s1: Star, s2: Star) -> None:
        """The memoised SED is bit-identical to Lemma 1's direct value."""
        assert cached_star_edit_distance(s1, s2) == star_edit_distance(s1, s2)
        # And again, now that the pair is (very likely) a cache hit.
        assert cached_star_edit_distance(s1, s2) == star_edit_distance(s1, s2)

    @settings(max_examples=100, deadline=None)
    @given(s1=stars, s2=stars)
    def test_tiny_cache_still_exact(self, s1: Star, s2: Star) -> None:
        """Constant eviction churn never corrupts results."""
        cache = SEDCache(maxsize=2)
        for _ in range(2):
            assert cache.distance(s1, s2) == star_edit_distance(s1, s2)
            assert cache.distance(s2, s1) == star_edit_distance(s2, s1)
        assert cache.info().currsize <= 2


def test_global_cache_bounded():
    assert GLOBAL_SED_CACHE.info().currsize <= max(GLOBAL_SED_CACHE.maxsize, 0)
