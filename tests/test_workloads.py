"""Tests for the named benchmark workloads."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    Workload,
    clone_mass_workload,
    default_workload,
    outlier_workload,
)
from repro.datasets import aids_like
from repro.datasets.loader import load_dataset
from repro.graphs import io as gio
from repro.graphs.edit_distance import graph_edit_distance


@pytest.fixture(scope="module")
def base_data():
    return aids_like(15, seed=71, mean_order=6, stddev=1)


class TestDefaultWorkload:
    def test_queries_are_members(self, base_data):
        w = default_workload(base_data, 3, seed=1)
        assert w.name == "default"
        assert len(w.queries) == 3
        member_keys = {g for g in base_data.graphs.values()}
        assert all(q in member_keys for q in w.queries)

    def test_corpus_untouched(self, base_data):
        w = default_workload(base_data, 2, seed=1)
        assert len(w.graphs) == len(base_data.graphs)


class TestCloneMassWorkload:
    def test_clones_planted(self, base_data):
        w = clone_mass_workload(base_data, 2, clones_per_query=4, seed=2)
        assert len(w.graphs) == len(base_data.graphs) + 2 * 4
        assert any(gid.startswith("clone-") for gid in w.graphs)

    def test_clones_within_edit_budget(self, base_data):
        w = clone_mass_workload(
            base_data, 1, clones_per_query=3, clone_edits=1, seed=3
        )
        query = w.queries[0]
        for gid, graph in w.graphs.items():
            if gid.startswith("clone-0-"):
                assert graph_edit_distance(query, graph) <= 1


class TestOutlierWorkload:
    def test_alien_labels_disjoint(self, base_data):
        w = outlier_workload(base_data, 3, seed=4)
        corpus_labels = {
            lbl for g in base_data.graphs.values() for lbl in g.labels().values()
        }
        for query in w.queries:
            assert not (set(query.labels().values()) & corpus_labels)

    def test_queries_nonempty(self, base_data):
        w = outlier_workload(base_data, 2, seed=5)
        assert all(q.order >= 1 for q in w.queries)


class TestLoader:
    def test_load_dataset_round_trip(self, base_data, tmp_path):
        path = tmp_path / "corpus.txt"
        gio.save(path, base_data.graphs.items())
        loaded = load_dataset(path)
        assert loaded.name == "corpus"
        assert len(loaded) == len(base_data)
        assert loaded.labels == sorted(loaded.labels)
        # Labels inferred from content only.
        corpus_labels = {
            lbl for g in base_data.graphs.values() for lbl in g.labels().values()
        }
        assert set(loaded.labels) == corpus_labels

    def test_loaded_dataset_usable_in_workloads(self, base_data, tmp_path):
        path = tmp_path / "corpus.txt"
        gio.save(path, base_data.graphs.items())
        loaded = load_dataset(path, name="mine")
        w = default_workload(loaded, 2, seed=6)
        assert w.queries
        assert loaded.name == "mine"
