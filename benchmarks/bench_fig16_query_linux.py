"""Figure 16: Linux-like range queries vs τ — response time + candidate size.

Paper: κ-AT is the fastest *filter* on this dataset but with by far the
weakest filtering (800+ extra candidates even at τ = 6); SEGOS dominates
C-Tree on both axes.
"""

from __future__ import annotations

import pytest

from repro.baselines import CStar, CTree, KappaAT, SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.datasets import sample_queries


@pytest.fixture(scope="module")
def setup(pdg_dataset, grid):
    data = pdg_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=42)
    methods = [
        SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h),
        CStar(data.graphs),
        KappaAT(data.graphs, kappa=2),
        CTree(data.graphs),
    ]
    return data, queries, methods


def test_fig16_query_performance(benchmark, setup, grid, report):
    data, queries, methods = setup
    time_series = {m.name: Series(f"{m.name} time (s)") for m in methods}
    cand_series = {m.name: Series(f"{m.name} cand#") for m in methods}
    for tau in grid.tau_values:
        for method in methods:
            run = run_queries(method, queries, tau)
            time_series[method.name].add(tau, run.avg_time)
            cand_series[method.name].add(tau, run.avg_candidates)
    report(
        "fig16a_linux_time",
        format_table(
            "Fig 16(a) (response time vs τ, pdg-like)",
            "τ",
            list(grid.tau_values),
            list(time_series.values()),
        ),
    )
    report(
        "fig16b_linux_candidates",
        format_table(
            "Fig 16(b) (candidate size vs τ, pdg-like)",
            "τ",
            list(grid.tau_values),
            list(cand_series.values()),
            fmt="{:.1f}",
        ),
    )
    segos = methods[0]
    benchmark.pedantic(
        lambda: run_queries(segos, queries, grid.default_tau),
        rounds=1,
        iterations=1,
    )
    tau = grid.default_tau
    assert cand_series["SEGOS"].points[tau] <= cand_series["κ-AT"].points[tau]
