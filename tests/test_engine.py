"""End-to-end tests for the SegosIndex engine incl. index maintenance."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphAlreadyIndexed, GraphNotIndexed
from repro.core.engine import SegosIndex
from repro.core.index import TwoLevelIndex
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import corpus, make_label_alphabet, mutate
from repro.graphs.model import Graph
from repro.graphs.star import Star, decompose


@pytest.fixture
def small_engine(small_aids):
    items = dict(list(small_aids.graphs.items())[:30])
    return SegosIndex(items, k=15, h=40), items


class TestLifecycle:
    def test_build_from_mapping(self, small_engine):
        engine, items = small_engine
        assert len(engine) == len(items)
        engine.check_consistency()

    def test_add_and_remove(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        assert "g" in engine
        engine.remove("g")
        assert "g" not in engine
        assert len(engine) == 0

    def test_added_graph_is_copied(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        paper_g1.relabel_vertex(0, "z")
        assert engine.graph("g").label(0) == "a"

    def test_duplicate_gid_rejected(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        with pytest.raises(GraphAlreadyIndexed):
            engine.add("g", paper_g1)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            SegosIndex().add("g", Graph())

    def test_remove_unknown(self):
        with pytest.raises(GraphNotIndexed):
            SegosIndex().remove("nope")

    def test_graph_unknown(self):
        with pytest.raises(GraphNotIndexed):
            SegosIndex().graph("nope")

    def test_invalid_construction_params(self):
        with pytest.raises(ValueError):
            SegosIndex(k=0)
        with pytest.raises(ValueError):
            SegosIndex(h=0)


class TestMaintenance:
    """The seven update kinds must leave the index identical to a rebuild."""

    def assert_matches_rebuild(self, engine: SegosIndex):
        engine.check_consistency()
        fresh = TwoLevelIndex()
        for gid in engine.gids():
            g = engine.graph(gid)
            fresh.add_graph(gid, g, decompose(g))
        for gid in engine.gids():
            got = {
                engine.index.catalog.star(sid).signature: cnt
                for sid, cnt in engine.index.graph_star_counts(gid).items()
            }
            expect = {
                fresh.catalog.star(sid).signature: cnt
                for sid, cnt in fresh.graph_star_counts(gid).items()
            }
            assert got == expect, gid
        assert engine.index.size_estimate() == fresh.size_estimate()

    def test_add_edge(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        engine.add_edge("g", 1, 3)
        assert engine.graph("g").has_edge(1, 3)
        self.assert_matches_rebuild(engine)

    def test_remove_edge(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        engine.remove_edge("g", 0, 1)
        assert not engine.graph("g").has_edge(0, 1)
        self.assert_matches_rebuild(engine)

    def test_add_vertex(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        engine.add_vertex("g", 10, "e")
        assert engine.graph("g").order == 6
        self.assert_matches_rebuild(engine)

    def test_remove_vertex(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        engine.remove_vertex("g", 1)
        assert engine.graph("g").order == 4
        self.assert_matches_rebuild(engine)

    def test_relabel_vertex(self, paper_g1):
        engine = SegosIndex()
        engine.add("g", paper_g1)
        engine.relabel_vertex("g", 0, "q")
        assert engine.graph("g").label(0) == "q"
        self.assert_matches_rebuild(engine)

    def test_random_update_storm(self, rng):
        """Long random update sequences keep the index rebuild-equal."""
        labels = make_label_alphabet(10)
        graphs = corpus(rng, 6, kind="chemical", mean_order=6, stddev=1)
        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)})
        next_gid = len(graphs)
        for step in range(60):
            gids = list(engine.gids())
            op = rng.randrange(7)
            if op == 0 and len(gids) < 10:
                engine.add(f"g{next_gid}", corpus(rng, 1, kind="chemical", mean_order=5, stddev=1)[0])
                next_gid += 1
            elif op == 1 and len(gids) > 2:
                engine.remove(rng.choice(gids))
            else:
                gid = rng.choice(gids)
                g = engine.graph(gid)
                vertices = list(g.vertices())
                if op == 2 and len(vertices) >= 2:
                    u, v = rng.sample(vertices, 2)
                    if not g.has_edge(u, v):
                        engine.add_edge(gid, u, v)
                elif op == 3 and g.size > 0:
                    u, v = next(iter(g.edges()))
                    engine.remove_edge(gid, u, v)
                elif op == 4:
                    engine.add_vertex(gid, max(vertices) + 1, rng.choice(labels))
                elif op == 5:
                    isolated = [v for v in vertices if g.degree(v) == 0]
                    if isolated and g.order > 1:
                        engine.remove_vertex(gid, rng.choice(isolated))
                elif op == 6:
                    engine.relabel_vertex(gid, rng.choice(vertices), rng.choice(labels))
            if step % 15 == 0:
                self.assert_matches_rebuild(engine)
        self.assert_matches_rebuild(engine)


class TestRangeQuery:
    def test_self_query_tau_zero(self, small_engine):
        engine, items = small_engine
        gid, graph = next(iter(items.items()))
        result = engine.range_query(graph, tau=0)
        assert gid in result.candidates
        # With exact verification the self-match is confirmed.
        verified = engine.range_query(graph, tau=0, verify="exact")
        assert gid in verified.matches

    def test_no_false_negatives(self, small_engine, rng):
        engine, items = small_engine
        labels = make_label_alphabet(63, prefix="C")
        for _ in range(3):
            query = mutate(rng, rng.choice(list(items.values())), 1, labels)
            tau = 2
            truth = {
                gid
                for gid, g in items.items()
                if graph_edit_distance(query, g, threshold=tau) is not None
            }
            result = engine.range_query(query, tau=tau)
            assert truth <= set(result.candidates)
            assert result.matches <= truth

    def test_exact_verification(self, small_engine, rng):
        engine, items = small_engine
        labels = make_label_alphabet(63, prefix="C")
        query = mutate(rng, rng.choice(list(items.values())), 1, labels)
        tau = 2
        result = engine.range_query(query, tau=tau, verify="exact")
        truth = {
            gid
            for gid, g in items.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        assert result.matches == truth
        assert result.verified

    def test_query_after_updates(self, small_engine, rng):
        engine, items = small_engine
        gid = next(iter(items))
        engine.relabel_vertex(gid, next(iter(engine.graph(gid).vertices())), "C00")
        query = engine.graph(gid).copy()
        result = engine.range_query(query, tau=0, verify="exact")
        assert gid in result.matches

    def test_query_validation(self, small_engine):
        engine, _ = small_engine
        query = Graph(["a"])
        with pytest.raises(ValueError):
            engine.range_query(Graph(), tau=1)
        with pytest.raises(ValueError):
            engine.range_query(query, tau=-1)
        with pytest.raises(ValueError):
            engine.range_query(query, tau=1, verify="maybe")

    def test_result_metadata(self, small_engine):
        engine, items = small_engine
        query = next(iter(items.values())).copy()
        result = engine.range_query(query, tau=1)
        assert result.elapsed >= 0
        assert result.stats.ta_searches >= 1
        assert not result.verified

    def test_top_k_sub_units_facade(self, small_engine):
        engine, items = small_engine
        star = decompose(next(iter(items.values())))[0]
        result = engine.top_k_sub_units(star, 5)
        assert len(result.entries) <= 5
        assert result.entries[0][1] == 0  # the star itself is indexed

    def test_index_size_and_star_count(self, small_engine):
        engine, _ = small_engine
        assert engine.index_size() > 0
        assert engine.distinct_star_count() > 0
