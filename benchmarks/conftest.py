"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper's Section VI at the
scaled-down defaults of :data:`repro.bench.params.SCALED_DEFAULTS` (see
DESIGN.md §3 for the scale mapping).  Each bench prints its series table and
also writes it to ``benchmarks/results/<figure>.txt`` so the paper-shaped
data survives without ``-s``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import SCALED_DEFAULTS
from repro.datasets import aids_like, pdg_like

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def grid():
    return SCALED_DEFAULTS


@pytest.fixture(scope="session")
def aids_dataset(grid):
    """AIDS stand-in sized for the largest |D| any sweep requests."""
    return aids_like(max(grid.db_sizes), seed=2012, mean_order=grid.mean_order)


@pytest.fixture(scope="session")
def pdg_dataset(grid):
    """Linux stand-in sized for the largest |D| any sweep requests."""
    return pdg_like(max(grid.db_sizes), seed=2012, mean_order=grid.mean_order)


@pytest.fixture(scope="session")
def report():
    """Print a figure table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(figure_id: str, table: str) -> None:
        print()
        print(table)
        (RESULTS_DIR / f"{figure_id}.txt").write_text(table + "\n", encoding="utf-8")

    return _report
