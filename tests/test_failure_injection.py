"""Failure injection: corrupted internal state must be *detected*, not
silently tolerated.

These tests reach past the public API on purpose — they simulate the bugs
and bit-rot scenarios `check_consistency` exists to catch.
"""

from __future__ import annotations

import pytest

from repro.errors import IndexCorruptionError
from repro.core.index import TwoLevelIndex, UpperEntry
from repro.core.sqlite_index import SqliteTwoLevelIndex
from repro.graphs.star import Star, decompose


@pytest.fixture
def live_index(paper_g1, paper_g2):
    index = TwoLevelIndex()
    index.add_graph("g1", paper_g1, decompose(paper_g1))
    index.add_graph("g2", paper_g2, decompose(paper_g2))
    return index


class TestMemoryIndexCorruption:
    def test_clean_index_passes(self, live_index):
        live_index.check_consistency()

    def test_missing_upper_posting_detected(self, live_index):
        sid = live_index.catalog.sid(Star("c", "ab"))
        live_index.upper.remove(sid, "g1")
        with pytest.raises(IndexCorruptionError):
            live_index.check_consistency()

    def test_wrong_frequency_detected(self, live_index):
        sid = live_index.catalog.sid(Star("c", "ab"))
        live_index.upper.remove(sid, "g1")
        live_index.upper.add(sid, "g1", 99, 5)
        with pytest.raises(IndexCorruptionError):
            live_index.check_consistency()

    def test_stale_order_detected(self, live_index):
        sid = live_index.catalog.sid(Star("c", "ab"))
        live_index.upper.remove(sid, "g1")
        live_index.upper.add(sid, "g1", 2, 999)  # wrong graph size key
        with pytest.raises(IndexCorruptionError):
            live_index.check_consistency()

    def test_missing_lower_posting_detected(self, live_index):
        sid = live_index.catalog.sid(Star("a", "bbcc"))
        star = live_index.catalog.star(sid)
        live_index.lower.remove_star(sid, star)
        with pytest.raises(IndexCorruptionError):
            live_index.check_consistency()

    def test_duplicate_upper_posting_rejected_on_insert(self, live_index):
        sid = live_index.catalog.sid(Star("c", "ab"))
        with pytest.raises(IndexCorruptionError):
            live_index.upper.add(sid, "g1", 1, 5)

    def test_remove_unknown_posting_rejected(self, live_index):
        sid = live_index.catalog.sid(Star("c", "ab"))
        with pytest.raises(IndexCorruptionError):
            live_index.upper.remove(sid, "ghost")


class TestSqliteIndexCorruption:
    def test_clean_index_passes(self, paper_g1):
        index = SqliteTwoLevelIndex()
        index.add_graph("g", paper_g1, decompose(paper_g1))
        index.check_consistency()

    def test_tampered_posting_detected(self, paper_g1):
        index = SqliteTwoLevelIndex()
        index.add_graph("g", paper_g1, decompose(paper_g1))
        index._conn.execute("UPDATE upper_postings SET freq = freq + 7")
        with pytest.raises(IndexCorruptionError):
            index.check_consistency()

    def test_tampered_lower_level_detected(self, paper_g1):
        index = SqliteTwoLevelIndex()
        index.add_graph("g", paper_g1, decompose(paper_g1))
        index._conn.execute("DELETE FROM star_leaves")
        with pytest.raises(IndexCorruptionError):
            index.check_consistency()
