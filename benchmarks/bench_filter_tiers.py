#!/usr/bin/env python
"""Filter-tier chain benchmark: legacy ``ta -> ca -> verify`` vs the full chain.

Standalone like the other benches so CI can smoke it without the test
harness::

    PYTHONPATH=src python benchmarks/bench_filter_tiers.py [--smoke]

Writes ``BENCH_filter_tiers.json`` at the repository root with:

1. **chain comparison** — verified batch range-query latency under the
   legacy paper chain and the full five-tier chain
   (``embed -> ta -> ca -> anchor -> verify``) over the same corpus and
   query set.  The exact match sets are asserted identical (the tiers are
   sound lower bounds — zero false dismissals, every run), the embed tier
   must prune at least one graph, and the anchor tier must settle at
   least one candidate as a match without running A*;
2. **per-tier accounting** — bounds evaluated, prune counts, anchor
   settles, and per-stage wall-clock for the full-chain run, so the
   report shows *where* the chain spends its time and what each tier
   buys.

``--mode legacy`` / ``--mode full`` run only the gate cell (the same
batch under one chain) under the identical ``time_batch_s`` key, so two
runs feed ``check_bench_regression.py`` directly: the full chain must
not be slower than the legacy chain beyond tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import DEFAULT_FILTER_TIERS, FULL_TIER_CHAIN  # noqa: E402
from repro.core.engine import SegosIndex  # noqa: E402
from repro.graphs.model import Graph  # noqa: E402
from repro.perf.columnar import numpy_available  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_filter_tiers.json"

CHAINS = {
    "legacy": ",".join(DEFAULT_FILTER_TIERS),
    "full": ",".join(FULL_TIER_CHAIN),
}


def _best_of(repeats, fn):
    best, value = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def _random_graph(rng: random.Random, order: int, labels: str) -> Graph:
    graph = Graph([rng.choice(labels) for _ in range(order)])
    for u in range(order - 1):  # connected path backbone
        graph.add_edge(u, u + 1)
    for _ in range(order // 2):
        u, v = rng.randrange(order), rng.randrange(order)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def tier_corpus(n: int, seed: int):
    """Label/size-diverse corpus so every tier has something to do.

    Two label worlds (chemistry-ish ``cnos`` vs a disjoint ``xyzw``) and
    orders 5..10: the embed sweep kills the cross-world graphs outright
    (label intersection near zero pushes the bound past any small τ),
    while same-world near-misses survive to CA and the anchor tier.
    """
    rng = random.Random(seed)
    graphs = {}
    for i in range(n):
        labels = "cnos" if i % 3 else "xyzw"
        graphs[f"g{i}"] = _random_graph(rng, 5 + (i % 6), labels)
    return graphs


def sample_queries(graphs, count: int, seed: int):
    """Perturbed copies of in-world corpus graphs (GED 1 from the source)."""
    rng = random.Random(seed)
    pool = sorted(gid for gid in graphs if int(gid[1:]) % 3)
    picked = rng.sample(pool, min(count, len(pool)))
    queries = []
    for gid in picked:
        graph = graphs[gid].copy()
        graph.relabel_vertex(rng.randrange(graph.order), "o")
        queries.append(graph)
    return queries


def _timed_batch(engine, queries, tau, repeats):
    def run():
        return engine.batch_range_query(queries, tau=tau, verify="exact")

    return _best_of(repeats, run)


def _tier_accounting(results):
    """Fold per-query stats into one per-tier summary table."""
    tiers: dict = {}
    settled = 0
    stage_seconds: dict = {}
    for result in results:
        stats = result.stats
        settled += stats.anchor_settled
        for name, entry in stats.tier_bounds.items():
            row = tiers.setdefault(
                name, {"evaluated": 0, "pruned": 0, "bound_max": 0.0}
            )
            row["evaluated"] += int(entry["evaluated"])
            row["bound_max"] = max(row["bound_max"], entry["bound_max"])
            row["pruned"] += stats.pruned_by.get(name, 0)
        for stage, seconds in stats.stage_seconds.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
    return tiers, settled, stage_seconds


def bench_chains(n: int, q: int, tau, repeats, seed: int):
    """Legacy vs full chain on identical inputs, answers cross-checked."""
    graphs = tier_corpus(n, seed)
    queries = sample_queries(graphs, q, seed + 1)
    cells = {}
    match_sets = {}
    full_results = None
    for mode, chain in CHAINS.items():
        engine = SegosIndex(graphs, filter_tiers=chain)
        elapsed, results = _timed_batch(engine, queries, tau, repeats)
        match_sets[mode] = [sorted(map(str, r.matches)) for r in results]
        latencies = sorted(r.elapsed for r in results)
        cells[mode] = {
            "chain": chain,
            "time_batch_s": elapsed,
            "throughput_qps": len(queries) / elapsed if elapsed else None,
            "p50_latency_s": statistics.median(latencies),
            "candidates": sum(len(r.candidates) for r in results),
            "matches": sum(len(r.matches) for r in results),
        }
        if mode == "full":
            full_results = results

    assert match_sets["full"] == match_sets["legacy"], (
        "tier chain changed the verified answer set (false dismissal!)"
    )
    tiers, settled, stage_seconds = _tier_accounting(full_results)
    assert tiers.get("embed", {}).get("pruned", 0) > 0, (
        "embed tier pruned nothing on the cross-world corpus"
    )
    assert settled >= 1, "anchor tier settled no candidate without A*"
    legacy_t = cells["legacy"]["time_batch_s"]
    full_t = cells["full"]["time_batch_s"]
    return {
        "graphs": n,
        "queries": q,
        "tau": tau,
        "cells": cells,
        "false_dismissals": 0,
        "anchor_settled": settled,
        "tiers": tiers,
        "stage_seconds": stage_seconds,
        "speedup_full_vs_legacy": legacy_t / full_t if full_t else None,
    }


def bench_gate(n: int, q: int, tau, repeats, seed: int, mode: str):
    """One cell under the mode-independent ``time_batch_s`` key.

    Identical keys let ``check_bench_regression.py`` compare a ``legacy``
    JSON (baseline) against a ``full`` JSON (candidate) directly.
    """
    graphs = tier_corpus(n, seed)
    queries = sample_queries(graphs, q, seed + 1)
    engine = SegosIndex(graphs, filter_tiers=CHAINS[mode])
    elapsed, results = _timed_batch(engine, queries, tau, repeats)
    return {
        "mode": mode,
        "chain": CHAINS[mode],
        "graphs": n,
        "queries": q,
        "time_batch_s": elapsed,
        "throughput_qps": len(queries) / elapsed if elapsed else None,
        "candidates": sum(len(r.candidates) for r in results),
        "matches": sum(len(r.matches) for r in results),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, CI import/sanity check"
    )
    parser.add_argument(
        "--mode",
        choices=("full-report", "legacy", "full"),
        default="full-report",
        help="'legacy'/'full' run only the gate cell under identical "
        "time_* keys, for check_bench_regression.py",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON report path"
    )
    args = parser.parse_args(argv)

    n, q = (36, 4) if args.smoke else (180, 12)
    tau = 2.0
    repeats = max(1, args.repeats)

    report = {
        "meta": {
            "bench": "filter_tiers",
            "smoke": args.smoke,
            "mode": args.mode,
            "seed": args.seed,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": numpy_available(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
    }
    if args.mode == "full-report":
        report["chains"] = bench_chains(n, q, tau, repeats, args.seed)
    else:
        report["gate"] = bench_gate(n, q, tau, repeats, args.seed, args.mode)

    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
