"""Cross-module integration tests: full workflows end to end.

These exercise paths a downstream user takes: generate → persist → reload →
query → mutate → re-query, and the agreement of every query interface
(plain engine, pipeline, baselines, kNN, subgraph search) over a shared
corpus with exact ground truth.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import CStar, CTree, KappaAT, LinearScan
from repro.core.engine import SegosIndex
from repro.core.knn import knn_query
from repro.core.persistence import load_index, save_index
from repro.core.pipeline import PipelinedSegos
from repro.core.subsearch import SubgraphSearch
from repro.datasets import aids_like, pdg_like, sample_queries, summarize
from repro.graphs import io as gio
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import mutate
from repro.graphs.subgraph_distance import subgraph_edit_distance


@pytest.fixture(scope="module")
def world():
    data = aids_like(30, seed=314, mean_order=7.0, stddev=1.5, min_order=4)
    engine = SegosIndex(data.graphs, k=15, h=40)
    return data, engine


class TestFullWorkflow:
    def test_generate_save_reload_query(self, world, tmp_path):
        data, engine = world
        path = tmp_path / "db.segos"
        save_index(engine, path)
        reloaded = load_index(path)
        query = next(iter(data.graphs.values())).copy()
        a = engine.range_query(query, tau=2, verify="exact").matches
        b = reloaded.range_query(query, tau=2, verify="exact").matches
        assert a == b

    def test_io_then_index_round_trip(self, world, tmp_path):
        data, _ = world
        path = tmp_path / "corpus.txt"
        gio.save(path, data.graphs.items())
        pairs = gio.load(path)
        rebuilt = SegosIndex(dict(pairs))
        assert len(rebuilt) == len(data.graphs)
        rebuilt.check_consistency()

    def test_mutation_then_requery(self, world):
        data, _ = world
        engine = SegosIndex(dict(data.graphs), k=15, h=40)
        gid = next(iter(data.graphs))
        graph = engine.graph(gid)
        victim = next(iter(graph.vertices()))
        engine.relabel_vertex(gid, victim, "C62")
        engine.check_consistency()
        current = engine.graph(gid).copy()
        result = engine.range_query(current, tau=0, verify="exact")
        assert gid in result.matches


class TestAllInterfacesAgree:
    """Every query path must agree with exact ground truth."""

    @pytest.mark.parametrize("tau", [1, 2])
    def test_range_interfaces(self, world, tau):
        data, engine = world
        rng = random.Random(tau)
        query = mutate(rng, rng.choice(list(data.graphs.values())), 1, data.labels)
        truth = {
            gid
            for gid, g in data.graphs.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        interfaces = {
            "engine": set(engine.range_query(query, tau=tau, verify="exact").matches),
            "pipeline": set(
                PipelinedSegos(engine).range_query(query, tau=tau, verify="exact").matches
            ),
            "linear": set(LinearScan(data.graphs).range_query(query, tau=tau).candidates),
        }
        for name, matches in interfaces.items():
            assert matches == truth, name
        for method in (CStar(data.graphs), KappaAT(data.graphs), CTree(data.graphs)):
            assert truth <= set(method.range_query(query, tau=tau).candidates)

    def test_knn_consistent_with_range(self, world):
        data, engine = world
        query = next(iter(data.graphs.values())).copy()
        result = knn_query(engine, query, k=3)
        # The nearest neighbour at distance d must be found by a range
        # query at τ = d.
        gid, d = result.neighbours[0]
        assert gid in engine.range_query(query, tau=d, verify="exact").matches

    def test_subgraph_vs_plain_ged(self, world):
        """λ_sub ≤ λ always; equality on same-size exact matches."""
        data, engine = world
        rng = random.Random(7)
        items = list(data.graphs.values())
        for _ in range(5):
            q, g = rng.choice(items), rng.choice(items)
            plain = graph_edit_distance(q, g)
            sub = subgraph_edit_distance(q, g, threshold=plain)
            assert sub is not None and sub <= plain

    def test_subgraph_search_end_to_end(self, world):
        data, engine = world
        search = SubgraphSearch(engine, k=10)
        # Take a 3-vertex fragment of a database graph: guaranteed hit.
        gid, graph = next(iter(data.graphs.items()))
        vertices = list(graph.vertices())[:3]
        fragment_labels = {v: graph.label(v) for v in vertices}
        fragment_edges = [
            (u, v) for u, v in graph.edges() if u in fragment_labels and v in fragment_labels
        ]
        from repro.graphs.model import Graph

        fragment = Graph(fragment_labels, fragment_edges)
        result = search.range_query(fragment, tau=0, verify="exact")
        assert gid in result.matches


class TestDatasets:
    def test_both_corpora_summaries(self):
        aids = aids_like(40, seed=11)
        pdg = pdg_like(40, seed=11)
        a, p = summarize(aids.graphs.values()), summarize(pdg.graphs.values())
        assert a.count == p.count == 40
        assert a.distinct_labels <= 63
        assert p.distinct_labels <= 36

    def test_sampled_queries_recoverable(self, world):
        data, engine = world
        queries = sample_queries(data, 3, seed=77, edits=1)
        for query in queries:
            result = engine.range_query(query, tau=1, verify="exact")
            assert result.matches  # the mutation source must be recovered
