"""Property-based tests over the search layer as a whole."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import SegosIndex
from repro.core.join import similarity_self_join
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.model import Graph

LABELS = "abc"
labels_st = st.sampled_from(LABELS)


@st.composite
def graph_st(draw, max_order=4):
    order = draw(st.integers(min_value=1, max_value=max_order))
    graph = Graph([draw(labels_st) for _ in range(order)])
    for u in range(order):
        for v in range(u + 1, order):
            if draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


corpus_st = st.lists(graph_st(), min_size=2, max_size=6)


class TestRangeQueryProperties:
    @settings(
        deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus_st, graph_st(), st.integers(min_value=0, max_value=2))
    def test_sound_for_any_corpus_query_tau(self, graphs, query, tau):
        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)})
        truth = {
            f"g{i}"
            for i, g in enumerate(graphs)
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        result = engine.range_query(query, tau=tau)
        assert truth <= set(result.candidates)
        assert result.matches <= truth

    @settings(
        deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus_st, st.integers(min_value=1, max_value=8))
    def test_candidates_sound_for_any_k(self, graphs, k):
        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)}, k=k)
        query = graphs[0]
        truth = {
            f"g{i}"
            for i, g in enumerate(graphs)
            if graph_edit_distance(query, g, threshold=1) is not None
        }
        assert truth <= set(engine.range_query(query, tau=1).candidates)

    @settings(
        deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus_st)
    def test_monotone_in_tau(self, graphs):
        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)})
        query = graphs[0]
        previous: set = set()
        for tau in (0, 1, 2):
            matches = engine.range_query(query, tau=tau, verify="exact").matches
            assert previous <= matches
            previous = matches


class TestJoinProperties:
    @settings(
        deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus_st, st.integers(min_value=0, max_value=1))
    def test_join_equals_pairwise_queries(self, graphs, tau):
        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)})
        joined = similarity_self_join(engine, tau=tau, verify="exact")
        expected = {
            (f"g{i}", f"g{j}")
            for i in range(len(graphs))
            for j in range(i + 1, len(graphs))
            if graph_edit_distance(graphs[i], graphs[j], threshold=tau) is not None
        }
        assert joined.matches == expected
