#!/usr/bin/env python3
"""Chemical-compound similarity search (the paper's AIDS scenario).

Builds an AIDS-like corpus of molecule-shaped graphs, takes a few compounds,
perturbs each by a couple of edits (a noisy re-measurement, say) and runs
GED range queries to recover the originals — comparing SEGOS's access count
against the index-free C-Star scan.

Run with::

    python examples/molecule_search.py [corpus_size]
"""

import sys

from repro import SegosIndex
from repro.baselines import CStar
from repro.datasets import aids_like, sample_queries


def main(corpus_size: int = 300) -> None:
    data = aids_like(corpus_size, seed=7, mean_order=12.0)
    print(
        f"corpus: {len(data)} compounds, avg {data.average_order():.1f} atoms, "
        f"{len(data.labels)} element labels"
    )

    db = SegosIndex(data.graphs, k=20, h=100)
    cstar = CStar(data.graphs)
    queries = sample_queries(data, 5, seed=13, edits=2)

    tau = 3
    print(f"\nrange queries with tau={tau} (queries are 2-edit mutations):")
    print(f"{'query':>6} {'cands':>6} {'confirmed':>9} {'accessed':>9} {'cstar-accessed':>14}")
    for i, query in enumerate(queries):
        result = db.range_query(query, tau=tau)
        baseline = cstar.range_query(query, tau=tau)
        print(
            f"{i:>6} {len(result.candidates):>6} {len(result.matches):>9} "
            f"{result.stats.graphs_accessed:>9} {baseline.graphs_accessed:>14}"
        )

    print(
        "\nSEGOS touches a fraction of the database per query; C-Star always "
        "computes a mapping distance for every compound."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
