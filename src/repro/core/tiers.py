"""Composable filter tiers: the pluggable bound chain of the query path.

SEGOS is a filter-and-verify system, and until this module the filter
stack was hard-wired: TA → CA → cold A*, spelled out across the plan,
pipeline, and verify modules.  This module names each link of the chain
as a **tier** — an object with a ``name``, a ``cost_class``, and a
``lower_bound(query, state)`` — so the planner can compose any ordered
subsequence of :data:`repro.config.FULL_TIER_CHAIN` and every future
filter becomes a drop-in.

The five tiers, cheapest first:

``embed`` (constant)
    An EmbAssi-style label/degree embedding pre-filter: the admissible
    bound ``max(|V_q|, |V_g|) − |Ψ_q ∩ Ψ_g| + ||E_q| − |E_g||``
    evaluated against *every* database graph in one vectorized sweep
    (:class:`repro.perf.columnar.GraphEmbeddings`), before TA touches
    the index.  Graphs with a bound above τ are provable non-answers.

``ta`` (index)
    The paper's top-k star search (Algorithm 2), producing the ordered
    candidate lists the CA scan consumes.

``ca`` (index)
    The paper's count-aggregation scan with the ζ ≤ L_µ ≤ µ ≤ U_µ bound
    chain (see :mod:`repro.core.bounds`).

``anchor`` (assignment)
    An anchored assignment bound ahead of exact verification (after
    Chang et al.'s anchor-aware GED bounds): one linear-assignment solve
    over per-vertex label/degree costs yields a lower bound that prunes,
    *and* anchors a concrete vertex mapping whose edit cost is an upper
    bound that can settle a candidate as a match without running A*.

``verify`` (exact)
    Threshold-pruned exact A*, Nass-style: candidates of one query share
    the hoisted query-side search state
    (:class:`repro.graphs.edit_distance.PreparedQuery`) instead of each
    run starting cold.

Tier *bounds* live here; tier *execution* is a
:class:`repro.core.plan.Stage` per tier, resolved from
``EngineConfig.filter_tiers`` by :meth:`repro.core.plan.QueryPlan.from_tiers`.

Soundness contract: every tier's lower bound never exceeds the exact
GED (a hypothesis test pins this for random graph pairs), so enabling
tiers never changes the match set — only how early non-answers die.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Tuple

from ..config import DEFAULT_FILTER_TIERS, FULL_TIER_CHAIN, validate_filter_tiers
from ..graphs.edit_distance import trivial_lower_bound
from ..graphs.model import Graph
from ..matching.mapping import edit_cost_under_mapping
from ..perf.assignment import solve_assignment

__all__ = [
    "AnchorTier",
    "COST_CLASSES",
    "EmbedTier",
    "FilterTier",
    "anchor_bounds",
    "anchor_cost_matrix",
    "resolve_tier_chain",
]

#: Tier name → cost class, cheapest first.  ``constant`` is per-graph
#: O(labels); ``index`` walks the two-level index; ``assignment`` pays one
#: Hungarian solve per surviving candidate; ``exact`` is A*.
COST_CLASSES: Dict[str, str] = {
    "embed": "constant",
    "ta": "index",
    "ca": "index",
    "anchor": "assignment",
    "verify": "exact",
}
assert tuple(COST_CLASSES) == FULL_TIER_CHAIN


class FilterTier(Protocol):
    """The tier contract: a named, costed GED lower bound.

    ``lower_bound(query, state)`` returns a value ≤ the exact graph edit
    distance between *query* and the candidate *state* describes; the
    state's type is tier-specific (a :class:`~repro.graphs.model.Graph`
    for the pairwise tiers, a CA :class:`~repro.core.bounds.SeenGraph`
    for the aggregation tier).
    """

    name: str
    cost_class: str

    def lower_bound(self, query: Graph, state) -> float:
        ...


def resolve_tier_chain(tiers=None) -> Tuple[str, ...]:
    """Normalise *tiers* (default: the legacy paper chain)."""
    if tiers is None:
        return DEFAULT_FILTER_TIERS
    return validate_filter_tiers(tiers)


# ---------------------------------------------------------------------------
# embed: the label/degree embedding pre-filter
# ---------------------------------------------------------------------------

class EmbedTier:
    """Constant-time embedding pre-filter (pairwise form).

    The batch form — one vectorized sweep over the precomputed
    embedding columns — lives in
    :meth:`repro.perf.columnar.GraphEmbeddings.lower_bounds`; this
    pairwise form is the executable specification the soundness test
    compares both against.
    """

    name = "embed"
    cost_class = COST_CLASSES["embed"]

    def lower_bound(self, query: Graph, state: Graph) -> float:
        return float(trivial_lower_bound(query, state))


# ---------------------------------------------------------------------------
# anchor: the assignment-based anchored bound
# ---------------------------------------------------------------------------

def anchor_cost_matrix(query: Graph, graph: Graph) -> List[List[int]]:
    """The ×2-scaled per-vertex label/degree cost matrix.

    Square of side ``n1 + n2``: row *i* < n1 is query vertex *i*, the
    rest are ε-rows; column *j* < n2 is a graph vertex, the rest ε-cols.
    Costs (scaled by 2 to stay integral):

    * match ``(u, v)``: ``2·[l_u ≠ l_v] + |d_u − d_v|``
    * delete ``(u, ε)``: ``2 + d_u`` — the deletion plus half of each
      incident edge edit
    * insert ``(ε, v)``: ``2 + d_v``
    * ``(ε, ε)``: 0

    Half the optimal assignment total is an admissible GED bound: each
    relabel/deletion/insertion is charged once to its own slot, and each
    edge edit touches at most two vertex slots, contributing ½ to each.
    """
    vs1 = list(query.vertices())
    vs2 = list(graph.vertices())
    n1, n2 = len(vs1), len(vs2)
    deg1 = [query.degree(v) for v in vs1]
    deg2 = [graph.degree(v) for v in vs2]
    lab1 = [query.label(v) for v in vs1]
    lab2 = [graph.label(v) for v in vs2]
    side = n1 + n2
    matrix = [[0] * side for _ in range(side)]
    for i in range(n1):
        row = matrix[i]
        for j in range(n2):
            row[j] = 2 * (lab1[i] != lab2[j]) + abs(deg1[i] - deg2[j])
        for j in range(n2, side):
            row[j] = 2 + deg1[i]
    for i in range(n1, side):
        row = matrix[i]
        for j in range(n2):
            row[j] = 2 + deg2[j]
    return matrix


def anchor_bounds(
    query: Graph,
    graph: Graph,
    *,
    backend: Optional[str] = None,
) -> Tuple[int, int]:
    """``(lower, upper)`` GED bounds from one anchored assignment solve.

    The assignment total yields the lower bound (⌈total/2⌉ — GED is
    integral); the optimal assignment anchors a concrete vertex mapping
    whose full edit cost (:func:`~repro.matching.mapping.edit_cost_under_mapping`)
    is the upper bound.  ``lower ≤ λ(query, graph) ≤ upper`` always.
    """
    vs1 = list(query.vertices())
    vs2 = list(graph.vertices())
    n1, n2 = len(vs1), len(vs2)
    if n1 == 0 and n2 == 0:
        return 0, 0
    total, row_to_col = solve_assignment(
        anchor_cost_matrix(query, graph), backend
    )
    lower = math.ceil(round(total) / 2)
    mapping: Dict[int, Optional[int]] = {}
    for i in range(n1):
        j = row_to_col[i] if i < len(row_to_col) else -1
        mapping[vs1[i]] = vs2[j] if 0 <= j < n2 else None
    upper = edit_cost_under_mapping(query, graph, mapping)
    return lower, upper


class AnchorTier:
    """Assignment-anchored lower bound ahead of exact A*."""

    name = "anchor"
    cost_class = COST_CLASSES["anchor"]

    def __init__(self, backend: Optional[str] = None) -> None:
        self.backend = backend

    def lower_bound(self, query: Graph, state: Graph) -> float:
        lower, _ = anchor_bounds(query, state, backend=self.backend)
        return float(lower)

    def bounds(self, query: Graph, state: Graph) -> Tuple[int, int]:
        return anchor_bounds(query, state, backend=self.backend)
