"""Reproducible corpora matching the paper's dataset statistics (scaled).

The paper's corpora and our substitutes (DESIGN.md §3):

========  ==========================  =================================
paper     statistics                  substitute
========  ==========================  =================================
AIDS      42,687 compounds, avg 46    :func:`aids_like` — chemical-like
          vertices, 63 labels,        generator, normal sizes, Zipf
          near-normal sizes, sparse   label skew over 63 labels
Linux     48,747 PDGs, avg 45         :func:`pdg_like` — layered
          vertices, 36 labels,        dependence graphs, uniform sizes,
          near-uniform sizes          36 role labels
========  ==========================  =================================

Default scale is laptop-sized (hundreds of graphs, ~12 vertices); every
experiment keeps the paper's *relative* structure.  All corpora are keyed by
an explicit seed so benches and tests are deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..graphs.generators import (
    AIDS_LABEL_COUNT,
    PDG_LABEL_COUNT,
    corpus,
    make_label_alphabet,
    mutate,
)
from ..graphs.model import Graph


@dataclass
class Dataset:
    """A named, seeded graph corpus plus its label alphabet."""

    name: str
    graphs: Dict[str, Graph]
    labels: List[str]
    seed: int

    def __len__(self) -> int:
        return len(self.graphs)

    def subset(self, count: int) -> "Dataset":
        """First *count* graphs (stable prefix, for |D| sweeps)."""
        if count > len(self.graphs):
            raise ValueError(
                f"requested {count} graphs but dataset holds {len(self.graphs)}"
            )
        keys = list(self.graphs)[:count]
        return Dataset(
            name=f"{self.name}[:{count}]",
            graphs={k: self.graphs[k] for k in keys},
            labels=self.labels,
            seed=self.seed,
        )

    def average_order(self) -> float:
        if not self.graphs:
            return 0.0
        return sum(g.order for g in self.graphs.values()) / len(self.graphs)


def aids_like(
    count: int,
    *,
    seed: int = 2012,
    mean_order: float = 12.0,
    stddev: float = 3.0,
    min_order: int = 3,
) -> Dataset:
    """AIDS-dataset stand-in: chemical-like graphs, normal size distribution."""
    rng = random.Random(seed)
    graphs = corpus(
        rng,
        count,
        kind="chemical",
        mean_order=mean_order,
        stddev=stddev,
        min_order=min_order,
    )
    return Dataset(
        name="aids-like",
        graphs={f"aids-{i:05d}": g for i, g in enumerate(graphs)},
        labels=make_label_alphabet(AIDS_LABEL_COUNT, prefix="C"),
        seed=seed,
    )


def pdg_like(
    count: int,
    *,
    seed: int = 2012,
    mean_order: float = 12.0,
    min_order: int = 6,
    max_order: Optional[int] = None,
) -> Dataset:
    """Linux-dataset stand-in: PDG-like graphs, uniform size distribution."""
    rng = random.Random(seed)
    graphs = corpus(
        rng,
        count,
        kind="pdg",
        mean_order=mean_order,
        min_order=min_order,
        max_order=max_order,
    )
    return Dataset(
        name="pdg-like",
        graphs={f"pdg-{i:05d}": g for i, g in enumerate(graphs)},
        labels=make_label_alphabet(PDG_LABEL_COUNT, prefix="P"),
        seed=seed,
    )


def sample_queries(
    dataset: Dataset,
    count: int,
    *,
    seed: int = 99,
    edits: int = 0,
) -> List[Graph]:
    """Draw query graphs the way the paper does (random database members).

    With ``edits > 0`` each query is additionally perturbed by that many
    random edit operations, guaranteeing ``λ(query, source) ≤ edits`` — a
    handy recall probe.
    """
    rng = random.Random(seed)
    pool = list(dataset.graphs.values())
    if not pool:
        raise ValueError("dataset is empty")
    queries: List[Graph] = []
    for _ in range(count):
        base = rng.choice(pool)
        if edits > 0:
            queries.append(mutate(rng, base, edits, dataset.labels))
        else:
            queries.append(base.copy())
    return queries
