"""Saving and loading a SEGOS database.

The two-level index is a deterministic function of the graph set, and
rebuilding it is a single linear scan (the paper's own construction cost
argument, Figure 14).  Persistence therefore stores the *graphs* in the
standard transaction text format plus a small header with the engine's
tuning parameters, and rebuilds the index on load — simple, portable,
diff-able, and immune to index-format drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import ParseError
from ..graphs import io as gio
from .engine import SegosIndex

PathLike = Union[str, Path]

_HEADER_PREFIX = "#segos "
_FORMAT_VERSION = 1


def save_index(engine: SegosIndex, path: PathLike) -> None:
    """Write *engine*'s database and parameters to *path*.

    The file is a normal transaction-format graph database whose first
    line is a ``#segos {...}`` JSON header (comment lines are ignored by
    plain :func:`repro.graphs.io.load`, so the file stays interoperable).
    """
    header = {
        "version": _FORMAT_VERSION,
        "k": engine.k,
        "h": engine.h,
        "partial_fraction": engine.partial_fraction,
        "graphs": len(engine),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_HEADER_PREFIX + json.dumps(header, sort_keys=True) + "\n")
        gio.write_graphs(
            handle, ((gid, engine.graph(gid)) for gid in engine.gids())
        )


def load_index(path: PathLike) -> SegosIndex:
    """Rebuild a :class:`SegosIndex` from a file written by :func:`save_index`.

    Also accepts a plain transaction-format file (no header): default
    engine parameters are used then.
    """
    params = {}
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if first.startswith(_HEADER_PREFIX):
            try:
                header = json.loads(first[len(_HEADER_PREFIX):])
            except json.JSONDecodeError as exc:
                raise ParseError(f"malformed #segos header: {exc}", 1) from exc
            version = header.get("version")
            if version != _FORMAT_VERSION:
                raise ParseError(
                    f"unsupported segos file version {version!r}", 1
                )
            params = {
                "k": int(header["k"]),
                "h": int(header["h"]),
                "partial_fraction": float(header["partial_fraction"]),
            }
            pairs = list(gio.iter_graphs(handle))
        else:
            handle.seek(0)
            pairs = list(gio.iter_graphs(handle))
    engine = SegosIndex(**params)
    for gid, graph in pairs:
        engine.add(gid, graph)
    return engine
