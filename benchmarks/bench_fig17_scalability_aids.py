"""Figure 17: AIDS-like scalability — time + candidates vs |D|.

Paper (τ = 10, scaled here per DESIGN.md): SEGOS's response time grows only
mildly with |D| (8 → 40 ms over 5K → 40K in the paper) and stays roughly
0.1 % of C-Tree's and half of κ-AT's; candidate counts keep SEGOS lowest.
"""

from __future__ import annotations

import pytest

from repro.baselines import CTree, KappaAT, SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.datasets import sample_queries


def test_fig17_scalability(benchmark, aids_dataset, grid, report):
    tau = grid.scalability_tau_aids
    time_series = {
        name: Series(f"{name} time (s)") for name in ("SEGOS", "κ-AT", "C-Tree")
    }
    cand_series = {
        name: Series(f"{name} cand#") for name in ("SEGOS", "κ-AT", "C-Tree")
    }
    for size in grid.db_sizes:
        data = aids_dataset.subset(size)
        queries = sample_queries(data, grid.query_count, seed=51)
        for method in (
            SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h),
            KappaAT(data.graphs, kappa=2),
            CTree(data.graphs),
        ):
            run = run_queries(method, queries, tau)
            time_series[method.name].add(size, run.avg_time)
            cand_series[method.name].add(size, run.avg_candidates)
    report(
        "fig17a_aids_scalability_time",
        format_table(
            f"Fig 17(a) (time vs |D|, aids-like, τ={tau})",
            "|D|",
            list(grid.db_sizes),
            list(time_series.values()),
        ),
    )
    report(
        "fig17b_aids_scalability_candidates",
        format_table(
            f"Fig 17(b) (candidates vs |D|, aids-like, τ={tau})",
            "|D|",
            list(grid.db_sizes),
            list(cand_series.values()),
            fmt="{:.1f}",
        ),
    )
    data = aids_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=51)
    segos = SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h)
    benchmark.pedantic(lambda: run_queries(segos, queries, tau), rounds=1, iterations=1)
    # Shape: SEGOS filters at least as well as κ-AT at every size.
    for size in grid.db_sizes:
        assert cand_series["SEGOS"].points[size] <= cand_series["κ-AT"].points[size]
