"""Plain-text charts for the benchmark reports.

The paper presents its evaluation as line charts; offline and terminal-
bound, we render the same series as ASCII charts under each table so the
*shape* — knees, crossovers, orders-of-magnitude gaps — is visible at a
glance in ``benchmarks/results/*.txt``.  Log scaling kicks in
automatically when a chart spans more than two decades (most
candidate-count figures do).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .harness import Series

_BARS = "▏▎▍▌▋▊▉█"


def _scale(value: float, low: float, high: float, log: bool) -> float:
    if high <= low:
        return 1.0
    if log:
        value, low, high = (math.log10(max(v, 1e-12)) for v in (value, low, high))
        if high <= low:
            return 1.0
    return max(0.0, min(1.0, (value - low) / (high - low)))


def render_chart(
    title: str,
    x_values: Sequence[object],
    series: Sequence[Series],
    *,
    width: int = 40,
) -> str:
    """Render series as horizontal bar groups, one block per x-value.

    Examples
    --------
    >>> s = Series("demo"); s.add(1, 1.0); s.add(2, 10.0)
    >>> print(render_chart("t", [1, 2], [s]))  # doctest: +ELLIPSIS
    -- t --
    ...
    """
    values: List[float] = [
        v
        for s in series
        for v in (s.points.get(x) for x in x_values)
        if v is not None and v > 0 or v == 0
    ]
    positives = [v for v in values if v > 0]
    if not positives:
        return f"-- {title} --\n(no data)"
    low, high = min(positives), max(values)
    log = high / max(low, 1e-12) > 100.0
    label_width = max(len(s.label) for s in series)
    x_width = max(len(str(x)) for x in x_values)

    lines = [f"-- {title}{' (log scale)' if log else ''} --"]
    for x in x_values:
        for s in series:
            value = s.points.get(x)
            if value is None:
                continue
            frac = _scale(value, low if log else 0.0, high, log)
            cells = frac * width
            full = int(cells)
            frac_cell = cells - full
            bar = "█" * full
            if frac_cell > 1 / 16 and full < width:
                bar += _BARS[int(frac_cell * 8)]
            lines.append(
                f"{str(x).rjust(x_width)} {s.label.ljust(label_width)} "
                f"|{bar.ljust(width)}| {value:.4g}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
