"""SEGOS — graph similarity search by graph edit distance.

A complete reproduction of *"An Efficient Graph Indexing Method"*
(Wang, Ding, Tung, Ying, Jin; ICDE 2012): a two-level inverted index over
star decompositions of graphs, searched with TA/CA-style algorithms, plus
the baselines the paper compares against (C-Star, κ-AT, C-Tree).

Quickstart
----------
>>> from repro import Graph, SegosIndex
>>> db = SegosIndex()
>>> db.add("caffeine-ish", Graph(["C", "N", "C"], [(0, 1), (1, 2)]))
>>> db.add("other", Graph(["O", "O", "O"], [(0, 1), (1, 2)]))
>>> hits = db.range_query(Graph(["C", "N", "C"], [(0, 1), (1, 2)]), tau=1)
>>> "caffeine-ish" in hits.candidates
True
"""

from .config import EngineConfig
from .graphs.model import Graph
from .graphs.star import Star, decompose, star_edit_distance
from .graphs.edit_distance import ged_within, graph_edit_distance
from .matching.mapping import mapping_distance
from .core.engine import QueryResult, SegosIndex
from .core.explain import QueryExplanation, explain_range_query
from .core.join import JoinResult, similarity_join, similarity_self_join
from .core.knn import KnnResult, knn_query
from .core.pipeline import PipelinedSegos
from .core.plan import QuerySession
from .core.stats import QueryStats
from .core.subsearch import SubgraphQueryResult, SubgraphSearch
from .core.ta_search import TopKResult
from .obs import (
    GLOBAL_METRICS,
    MetricsRegistry,
    Trace,
    prometheus_text,
    trace_query,
    write_chrome_trace,
    write_spans_jsonl,
)
from .perf.assignment import available_backends, solve_assignment
from .perf.sed_cache import sed_cache_clear, sed_cache_info
from .resilience import DegradationEvent, FaultPlan

__version__ = "1.0.0"

__all__ = [
    "DegradationEvent",
    "EngineConfig",
    "FaultPlan",
    "GLOBAL_METRICS",
    "Graph",
    "JoinResult",
    "KnnResult",
    "MetricsRegistry",
    "PipelinedSegos",
    "QueryExplanation",
    "QueryResult",
    "QuerySession",
    "QueryStats",
    "SegosIndex",
    "Star",
    "SubgraphQueryResult",
    "SubgraphSearch",
    "TopKResult",
    "Trace",
    "available_backends",
    "decompose",
    "explain_range_query",
    "ged_within",
    "graph_edit_distance",
    "knn_query",
    "mapping_distance",
    "prometheus_text",
    "sed_cache_clear",
    "sed_cache_info",
    "similarity_join",
    "similarity_self_join",
    "solve_assignment",
    "star_edit_distance",
    "trace_query",
    "write_chrome_trace",
    "write_spans_jsonl",
    "__version__",
]
