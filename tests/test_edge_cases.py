"""Edge-case tests across the stack: degenerate graphs, odd labels, extremes."""

from __future__ import annotations

import pytest

from repro.core.engine import SegosIndex
from repro.core.pipeline import PipelinedSegos
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.model import Graph
from repro.graphs.star import Star, decompose, star_edit_distance
from repro.matching.mapping import mapping_distance


class TestSingleVertexWorlds:
    def test_single_vertex_database_and_query(self):
        engine = SegosIndex({"dot": Graph(["x"])})
        result = engine.range_query(Graph(["x"]), tau=0, verify="exact")
        assert result.matches == {"dot"}
        result = engine.range_query(Graph(["y"]), tau=0, verify="exact")
        assert result.matches == set()
        result = engine.range_query(Graph(["y"]), tau=1, verify="exact")
        assert result.matches == {"dot"}

    def test_single_vertex_vs_large_graph(self, paper_g2):
        engine = SegosIndex({"big": paper_g2})
        result = engine.range_query(Graph(["a"]), tau=2, verify="exact")
        assert result.matches == set()  # λ = 14 edits away

    def test_mapping_distance_single_vertices(self):
        assert mapping_distance(Graph(["a"]), Graph(["a"])) == 0
        assert mapping_distance(Graph(["a"]), Graph(["b"])) == 1

    def test_star_of_isolated_vertex(self):
        g = Graph(["z"])
        assert decompose(g) == [Star("z")]


class TestDisconnectedGraphs:
    def test_engine_accepts_disconnected(self):
        g = Graph(["a", "b", "c", "d"], [(0, 1), (2, 3)])
        engine = SegosIndex({"dis": g})
        result = engine.range_query(g.copy(), tau=0, verify="exact")
        assert result.matches == {"dis"}

    def test_ged_between_components(self):
        joined = Graph(["a", "b"], [(0, 1)])
        split = Graph(["a", "b"])
        assert graph_edit_distance(joined, split) == 1


class TestUnusualLabels:
    def test_unicode_labels(self):
        g = Graph(["ä", "β", "中"], [(0, 1), (1, 2)])
        engine = SegosIndex({"u": g})
        assert engine.range_query(g.copy(), tau=0, verify="exact").matches == {"u"}

    def test_labels_with_spaces_in_model(self):
        # The in-memory model is agnostic; only io/sqlite constrain labels.
        g = Graph(["label one", "label two"], [(0, 1)])
        assert star_edit_distance(*decompose(g)) >= 0

    def test_pipe_character_labels_do_not_collide(self):
        s1 = Star("a|b", ["c"])
        s2 = Star("a", ["b|c"])
        assert s1 != s2


class TestExtremes:
    def test_huge_tau_returns_all(self, small_aids):
        items = dict(list(small_aids.graphs.items())[:10])
        engine = SegosIndex(items)
        query = next(iter(items.values())).copy()
        result = engine.range_query(query, tau=10_000)
        assert set(result.candidates) == set(items)

    def test_star_with_many_repeated_leaves(self):
        big = Star("a", ["b"] * 50)
        small = Star("a", ["b"])
        assert star_edit_distance(big, small) == 49 + 49

    def test_dense_graph_star_decomposition(self):
        n = 8
        g = Graph(["x"] * n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        stars = decompose(g)
        assert all(s.leaf_size == n - 1 for s in stars)
        engine = SegosIndex({"k8": g})
        assert engine.range_query(g.copy(), tau=0).candidates == ["k8"]

    def test_query_much_larger_than_database(self, small_aids):
        items = dict(list(small_aids.graphs.items())[:5])
        engine = SegosIndex(items)
        big_query = Graph(
            {i: "C00" for i in range(40)}, [(i, i + 1) for i in range(39)]
        )
        result = engine.range_query(big_query, tau=1)
        assert result.candidates == []

    def test_pipeline_on_tiny_database(self):
        engine = SegosIndex({"only": Graph(["a", "b"], [(0, 1)])})
        pipe = PipelinedSegos(engine)
        for tau in (0, 1, 5):
            result = pipe.range_query(Graph(["a", "b"], [(0, 1)]), tau=tau)
            assert result.candidates == ["only"]


class TestEngineParameterInteractions:
    def test_partial_fraction_override_per_query(self, small_aids):
        items = dict(list(small_aids.graphs.items())[:15])
        engine = SegosIndex(items, partial_fraction=0.5)
        query = next(iter(items.values())).copy()
        eager = engine.range_query(query, tau=2, partial_fraction=0.0)
        lazy = engine.range_query(query, tau=2, partial_fraction=2.0)
        # Same answers regardless of when the partial check runs.
        assert set(eager.candidates) == set(lazy.candidates)

    def test_k_and_h_overrides(self, small_aids):
        items = dict(list(small_aids.graphs.items())[:15])
        engine = SegosIndex(items, k=5, h=10)
        query = next(iter(items.values())).copy()
        a = engine.range_query(query, tau=1, k=50, h=500)
        b = engine.range_query(query, tau=1)
        assert set(a.candidates) >= set(b.candidates) or set(
            a.candidates
        ) <= set(b.candidates)  # both sound; sizes may differ
        truth_probe = engine.range_query(query, tau=1, verify="exact").matches
        assert truth_probe <= set(a.candidates)
        assert truth_probe <= set(b.candidates)
