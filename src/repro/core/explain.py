"""Query explanation: a structured trace of the TA → CA → DC stages.

`explain_range_query` runs a range query while recording what each stage
did — per query star: the TA search's effort and result spread; globally:
how each size side ended (threshold halt vs exhaustion), what pruned every
rejected graph, and which bound admitted every candidate.  The result
renders to a compact text report, the moral equivalent of a database
``EXPLAIN ANALYZE`` for SEGOS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graphs.model import Graph
from ..graphs.star import decompose
from .engine import SegosIndex
from .stats import QueryStats


@dataclass(frozen=True)
class StarTrace:
    """Top-k-stage account for one distinct query star."""

    signature: str
    occurrences: int
    accesses: int
    returned: int
    best_sed: Optional[int]
    kth_sed: float
    exhaustive: bool
    #: backend that answered this search (``ta`` or ``scan``)
    backend: str = "ta"
    #: rows scored when the vectorized scan answered (0 under TA)
    scan_width: int = 0


@dataclass
class QueryExplanation:
    """Everything `explain_range_query` gathered."""

    query_order: int
    query_stars: int
    distinct_stars: int
    tau: float
    k: int
    h: int
    #: the configured filter-tier chain the plan was built from
    filter_tiers: tuple = ()
    star_traces: List[StarTrace] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    candidates: List[object] = field(default_factory=list)
    confirmed: List[object] = field(default_factory=list)
    elapsed: float = 0.0

    def render(self) -> str:
        """Multi-line text report."""
        lines = [
            f"range query: |q|={self.query_order}, τ={self.tau}, "
            f"k={self.k}, h={self.h}",
        ]
        if self.filter_tiers:
            lines.append("tier chain: " + " -> ".join(self.filter_tiers))
        for name, entry in sorted(self.stats.tier_bounds.items()):
            pruned = self.stats.pruned_by.get(name, 0)
            evaluated = int(entry["evaluated"])
            mean = entry["bound_sum"] / evaluated if evaluated else 0.0
            line = (
                f"{name} tier: {evaluated} bounds evaluated "
                f"(mean {mean:.2f}, max {entry['bound_max']:g}), "
                f"{pruned} pruned"
            )
            if name == "anchor" and self.stats.anchor_settled:
                line += f", {self.stats.anchor_settled} settled as matches"
            lines.append(line)
        lines.append(
            f"TA stage: {self.distinct_stars} distinct stars "
            f"({self.query_stars} occurrences), "
            f"{self.stats.ta_accesses} sorted accesses"
            + (
                f", {self.stats.topk_scan_width} rows vector-scanned"
                if self.stats.topk_scan_width
                else ""
            )
        )
        for trace in self.star_traces:
            spread = (
                f"SED {trace.best_sed}..{trace.kth_sed:g}"
                if trace.best_sed is not None
                else "no results"
            )
            mode = "exhaustive" if trace.exhaustive else "halted"
            effort = (
                f"{trace.accesses} accesses"
                if trace.backend == "ta"
                else f"scanned {trace.scan_width} rows"
            )
            lines.append(
                f"  {trace.signature}  ×{trace.occurrences}: "
                f"{trace.returned} stars ({spread}), "
                f"{effort}, {mode} [{trace.backend}]"
            )
        lines.append(
            f"CA stage: {self.stats.list_entries_scanned} list entries scanned, "
            f"{self.stats.filtered_unseen} unseen graphs cleared by ω, "
            f"{self.stats.linear_fallback} via linear fallback"
        )
        sed_total = self.stats.sed_cache_hits + self.stats.sed_cache_misses
        if sed_total:
            lines.append(
                f"filter stage: {sed_total} SED lookups, "
                f"{self.stats.sed_cache_hits} served by the memo cache "
                f"({self.stats.sed_cache_hit_rate:.0%} hit rate)"
            )
        if self.stats.shards_scattered or self.stats.shards_pruned:
            lines.append(
                f"shard stage: {self.stats.shards_scattered} shards "
                f"scattered, {self.stats.shards_pruned} pruned by pivots"
            )
        lines.append("DC stage: " + self.stats.summary())
        for event in self.stats.degradations:
            lines.append(f"resilience: {event.summary()}")
        lines.append(
            f"result: {len(self.candidates)} candidates "
            f"({len(self.confirmed)} confirmed) in {self.elapsed * 1000:.1f} ms"
        )
        return "\n".join(lines)


def explain_range_query(
    engine: SegosIndex,
    query: Graph,
    *,
    tau: float,
    k: Optional[int] = None,
    h: Optional[int] = None,
) -> QueryExplanation:
    """Execute a range query, returning its full :class:`QueryExplanation`.

    Functionally identical to :meth:`SegosIndex.range_query` with
    ``verify="none"`` — the query runs through the same staged executor —
    with the star-level traces read back from the session's top-k cache
    afterwards.
    """
    session = engine.session(k=k, h=h)
    result = session.range_query(query, tau=tau)

    query_stars = decompose(query)
    occurrences: Dict[str, int] = {}
    for star in query_stars:
        occurrences[star.signature] = occurrences.get(star.signature, 0) + 1
    # Under sharding the TA searches run against per-shard caches, so the
    # session-level cache only holds signatures answered locally (none,
    # today) — star traces cover whatever it has.
    cache = session.topk_cache
    traces = [
        StarTrace(
            signature=signature,
            occurrences=count,
            accesses=cache[signature].accesses,
            returned=len(cache[signature].entries),
            best_sed=(
                cache[signature].entries[0][1] if cache[signature].entries else None
            ),
            kth_sed=cache[signature].kth_sed,
            exhaustive=cache[signature].exhaustive,
            backend=cache[signature].backend,
            scan_width=cache[signature].scan_width,
        )
        for signature, count in occurrences.items()
        if signature in cache
    ]
    return QueryExplanation(
        query_order=query.order,
        query_stars=len(query_stars),
        distinct_stars=len(cache),
        tau=tau,
        k=session.config.k,
        h=session.config.h,
        filter_tiers=session.config.filter_tiers,
        star_traces=traces,
        stats=result.stats,
        candidates=list(result.candidates),
        confirmed=sorted(map(str, result.matches)),
        elapsed=result.elapsed,
    )
