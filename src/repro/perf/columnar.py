"""Columnar star-catalog mirror and vectorized batch-SED kernels.

The TA top-k search (Algorithm 2) pays a Python-level price per sorted
access: iterator dispatch, heap pushes, a scalar Lemma 1 evaluation per
newly seen star.  MSQ-Index-style systems show that a succinct,
cache-friendly array layout of the q-gram/star catalog beats
pointer-chasing postings once a query has to touch a large fraction of the
catalog anyway.  This module provides that layout for SEGOS:

:class:`ColumnarCatalog` snapshots the live :class:`~repro.core.index.StarCatalog`
/ :class:`~repro.core.index.LowerLevelIndex` content into contiguous arrays:

* an interned label vocabulary (ids assigned in sorted label order, so id
  order equals string order);
* a CSR layout of every star's sorted leaf-label multiset
  (``leaf_offsets`` / ``leaf_ids``);
* per-star ``leaf_sizes``, ``root_ids`` and ``sids`` columns;
* a second CSR keyed by label id mirroring the lower-level postings
  (``post_offsets`` / ``post_rows`` / ``post_freqs``) — the column the
  vectorized common-leaf count ψ is computed from.

Snapshots are immutable.  Coherence with the live index is by *generation
counter*: every §IV-C update bumps ``index.generation`` (all seven update
kinds funnel through three mutators) and :func:`columnar_snapshot` rebuilds
lazily on the next query that needs the mirror.  Nothing is rebuilt while
the index is only read.

On top of the snapshot, :meth:`ColumnarCatalog.sed_against_all` evaluates
Lemma 1 in the ``2·max(|L_q|, |L_i|) − min(|L_q|, |L_i|) − ψ`` form (plus
the 0/1 root term) against **every** live star in a handful of numpy
operations, and :meth:`ColumnarCatalog.top_k` turns that into a full-scan
top-k via ``argpartition`` on a composite ``(sed, sid)`` key — byte-identical
ordering to the TA backend's tie-break.  When numpy is missing everything
falls back to pure Python with identical results (a CI leg proves it).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..graphs.star import Star, sed_from_psi

try:  # numpy is an optional [perf] extra; everything degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


def numpy_available() -> bool:
    """True when the vectorized kernels can run (numpy importable)."""
    return _np is not None


class ColumnarCatalog:
    """An immutable columnar snapshot of the star catalog.

    Rows are live stars ordered by increasing sid; all columns are parallel
    to that row order.  Build with :meth:`ColumnarCatalog.build` (or the
    cached :func:`columnar_snapshot`), never mutate.
    """

    __slots__ = (
        "generation",
        "n_rows",
        "sids",
        "root_ids",
        "leaf_sizes",
        "leaf_offsets",
        "leaf_ids",
        "post_offsets",
        "post_rows",
        "post_freqs",
        "label_to_id",
        "max_sid",
    )

    def __init__(
        self,
        generation: int,
        sids: List[int],
        root_ids: List[int],
        leaf_sizes: List[int],
        leaf_offsets: List[int],
        leaf_ids: List[int],
        post_offsets: List[int],
        post_rows: List[int],
        post_freqs: List[int],
        label_to_id: Dict[str, int],
    ) -> None:
        self.generation = generation
        self.n_rows = len(sids)
        self.label_to_id = label_to_id
        self.max_sid = max(sids) if sids else 0
        if _np is not None:
            self.sids = _np.asarray(sids, dtype=_np.int64)
            self.root_ids = _np.asarray(root_ids, dtype=_np.int64)
            self.leaf_sizes = _np.asarray(leaf_sizes, dtype=_np.int64)
            self.leaf_offsets = _np.asarray(leaf_offsets, dtype=_np.int64)
            self.leaf_ids = _np.asarray(leaf_ids, dtype=_np.int64)
            self.post_offsets = _np.asarray(post_offsets, dtype=_np.int64)
            self.post_rows = _np.asarray(post_rows, dtype=_np.int64)
            self.post_freqs = _np.asarray(post_freqs, dtype=_np.int64)
        else:
            self.sids = sids
            self.root_ids = root_ids
            self.leaf_sizes = leaf_sizes
            self.leaf_offsets = leaf_offsets
            self.leaf_ids = leaf_ids
            self.post_offsets = post_offsets
            self.post_rows = post_rows
            self.post_freqs = post_freqs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, index, generation: Optional[int] = None) -> "ColumnarCatalog":
        """Snapshot *index* (an in-memory or sqlite two-level index).

        Only the catalog surface is read (``live_sids`` + ``star``), so both
        backends columnarise identically.
        """
        if generation is None:
            generation = getattr(index, "generation", 0)
        catalog = index.catalog
        sids = sorted(catalog.live_sids())
        stars = [catalog.star(sid) for sid in sids]

        # Pass 1: the label vocabulary, interned in sorted order so that
        # id order coincides with the string order Star.leaves guarantees.
        vocabulary = set()
        for star in stars:
            vocabulary.add(star.root)
            vocabulary.update(star.leaves)
        label_to_id = {label: i for i, label in enumerate(sorted(vocabulary))}

        # Pass 2: the per-star CSR columns.
        root_ids: List[int] = []
        leaf_sizes: List[int] = []
        leaf_offsets: List[int] = [0]
        leaf_ids: List[int] = []
        per_label: Dict[int, List[Tuple[int, int]]] = {}
        for row, star in enumerate(stars):
            root_ids.append(label_to_id[star.root])
            leaf_sizes.append(star.leaf_size)
            leaf_ids.extend(label_to_id[leaf] for leaf in star.leaves)
            leaf_offsets.append(len(leaf_ids))
            for label, freq in Counter(star.leaves).items():
                per_label.setdefault(label_to_id[label], []).append((row, freq))

        # Pass 3: the label-keyed postings CSR (the ψ column).
        post_offsets: List[int] = [0]
        post_rows: List[int] = []
        post_freqs: List[int] = []
        for lid in range(len(label_to_id)):
            for row, freq in per_label.get(lid, ()):
                post_rows.append(row)
                post_freqs.append(freq)
            post_offsets.append(len(post_rows))

        return cls(
            generation,
            sids,
            root_ids,
            leaf_sizes,
            leaf_offsets,
            leaf_ids,
            post_offsets,
            post_rows,
            post_freqs,
            label_to_id,
        )

    @classmethod
    def from_mmap(
        cls,
        generation: int,
        sids,
        root_ids,
        leaf_sizes,
        leaf_offsets,
        leaf_ids,
        post_offsets,
        post_rows,
        post_freqs,
        label_to_id: Dict[str, int],
        max_sid: int,
    ) -> "ColumnarCatalog":
        """Wrap already-mapped int64 columns without copying.

        The caller (``repro.perf.diskcat``) hands in zero-copy views over
        mapped pages — numpy ``frombuffer`` arrays, or ``memoryview.cast``
        sequences under the pure-Python fallback — plus the precomputed
        ``max_sid`` so nothing here walks the columns.  The kernels run
        directly over the mapped pages; nothing is materialised until a
        query touches it, and mapped pages are shared between processes
        that open the same sidecar.
        """
        snapshot = object.__new__(cls)
        snapshot.generation = generation
        snapshot.n_rows = len(sids)
        snapshot.label_to_id = label_to_id
        snapshot.max_sid = max_sid
        snapshot.sids = sids
        snapshot.root_ids = root_ids
        snapshot.leaf_sizes = leaf_sizes
        snapshot.leaf_offsets = leaf_offsets
        snapshot.leaf_ids = leaf_ids
        snapshot.post_offsets = post_offsets
        snapshot.post_rows = post_rows
        snapshot.post_freqs = post_freqs
        return snapshot

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def common_leaves_against_all(self, query: Star):
        """ψ against every row: vectorized multiset-intersection sizes.

        For each distinct query leaf label the label's postings column gives
        ``(row, freq)`` pairs; the star-side contribution is
        ``min(freq, query multiplicity)`` scattered into a ψ accumulator.
        Each row appears at most once per label, so the scatter is a plain
        fancy-indexed ``+=`` (no ``np.add.at`` needed).
        """
        counts = query.leaf_counter()
        if _np is not None:
            psi = _np.zeros(self.n_rows, dtype=_np.int64)
            for label, count in counts.items():
                lid = self.label_to_id.get(label)
                if lid is None:
                    continue
                lo = int(self.post_offsets[lid])
                hi = int(self.post_offsets[lid + 1])
                rows = self.post_rows[lo:hi]
                psi[rows] += _np.minimum(self.post_freqs[lo:hi], count)
            return psi
        psi = [0] * self.n_rows
        for label, count in counts.items():
            lid = self.label_to_id.get(label)
            if lid is None:
                continue
            lo, hi = self.post_offsets[lid], self.post_offsets[lid + 1]
            for i in range(lo, hi):
                freq = self.post_freqs[i]
                psi[self.post_rows[i]] += freq if freq < count else count
        return psi

    def sed_against_all(self, query: Star):
        """Lemma 1 against every live star in one vectorized sweep.

        Returns an int64 ndarray parallel to :attr:`sids` (a plain list
        under the pure-Python fallback).  Exactly equal, element-wise, to
        ``star_edit_distance(query, catalog.star(sid))`` — a hypothesis
        property test pins this.
        """
        psi = self.common_leaves_against_all(query)
        lq = query.leaf_size
        rid = self.label_to_id.get(query.root, -1)
        if _np is not None:
            t = (self.root_ids != rid).astype(_np.int64)
            sizes = self.leaf_sizes
            return (
                t
                + 2 * _np.maximum(sizes, lq)
                - _np.minimum(sizes, lq)
                - psi
            )
        return [
            sed_from_psi(self.root_ids[row] == rid, lq, self.leaf_sizes[row], psi[row])
            for row in range(self.n_rows)
        ]

    def top_k(self, query: Star, k: int) -> Tuple[List[Tuple[int, int]], int]:
        """Full-scan top-k: the k smallest ``(sed, sid)`` pairs.

        Returns ``(entries, scan_width)`` where *entries* are ``(sid, sed)``
        sorted ascending by ``(sed, sid)`` — the same deterministic
        tie-break the TA backend's heap uses — and *scan_width* is the
        number of rows scored (the whole catalog).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        n = self.n_rows
        if n == 0:
            return [], 0
        sed = self.sed_against_all(query)
        if _np is not None:
            # Composite (sed, sid) key: sed is O(catalog max degree), sid is
            # dense, so the product stays far inside int64.
            key = sed * (self.max_sid + 1) + self.sids
            if k < n:
                picked = _np.argpartition(key, k - 1)[:k]
            else:
                picked = _np.arange(n)
            picked = picked[_np.argsort(key[picked])]
            return (
                [(int(self.sids[i]), int(sed[i])) for i in picked],
                n,
            )
        scored = sorted(zip(sed, self.sids))
        return [(sid, d) for d, sid in scored[:k]], n


class GraphEmbeddings:
    """Per-graph label/degree embedding vectors for the ``embed`` tier.

    Each database graph is summarised by its vertex-label multiset (a CSR
    of ``(label id, multiplicity)`` pairs), its order, and its edge count.
    From these, :meth:`lower_bounds` evaluates the admissible bound

        ``max(|V_q|, |V_g|) − |Ψ(V_q) ∩ Ψ(V_g)| + | |E_q| − |E_g| |``

    (the A* root heuristic of :func:`repro.graphs.edit_distance`) against
    *every* graph in one vectorized sweep — a constant-time-per-graph
    pre-filter that runs before TA ever touches the index.  Bounds are
    independent of the label-id assignment (query labels outside the
    vocabulary simply contribute nothing to the intersection), so mapped
    and rebuilt embeddings score identically.

    Rows follow the engine's gid order.  Like :class:`ColumnarCatalog`,
    snapshots are immutable and keyed by the index generation counter;
    :meth:`from_mmap` wraps zero-copy views over ``.segosx`` sections.
    """

    __slots__ = (
        "generation",
        "n_graphs",
        "gids",
        "orders",
        "edges",
        "emb_offsets",
        "emb_lids",
        "emb_counts",
        "label_to_id",
    )

    def __init__(
        self,
        generation: int,
        gids: List[object],
        orders: List[int],
        edges: List[int],
        emb_offsets: List[int],
        emb_lids: List[int],
        emb_counts: List[int],
        label_to_id: Dict[str, int],
    ) -> None:
        self.generation = generation
        self.n_graphs = len(orders)
        self.gids = list(gids)
        self.label_to_id = label_to_id
        if _np is not None:
            self.orders = _np.asarray(orders, dtype=_np.int64)
            self.edges = _np.asarray(edges, dtype=_np.int64)
            self.emb_offsets = _np.asarray(emb_offsets, dtype=_np.int64)
            self.emb_lids = _np.asarray(emb_lids, dtype=_np.int64)
            self.emb_counts = _np.asarray(emb_counts, dtype=_np.int64)
        else:
            self.orders = orders
            self.edges = edges
            self.emb_offsets = emb_offsets
            self.emb_lids = emb_lids
            self.emb_counts = emb_counts

    @classmethod
    def build(cls, pairs, generation: int) -> "GraphEmbeddings":
        """Embed ``(gid, graph)`` *pairs* (in engine gid order)."""
        gids: List[object] = []
        orders: List[int] = []
        edges: List[int] = []
        multisets: List[List[Tuple[str, int]]] = []
        vocabulary = set()
        for gid, graph in pairs:
            gids.append(gid)
            orders.append(graph.order)
            edges.append(graph.size)
            counts = sorted(Counter(graph.label_multiset()).items())
            multisets.append(counts)
            vocabulary.update(label for label, _ in counts)
        label_to_id = {label: i for i, label in enumerate(sorted(vocabulary))}
        emb_offsets: List[int] = [0]
        emb_lids: List[int] = []
        emb_counts: List[int] = []
        for counts in multisets:
            for label, freq in counts:
                emb_lids.append(label_to_id[label])
                emb_counts.append(freq)
            emb_offsets.append(len(emb_lids))
        return cls(
            generation,
            gids,
            orders,
            edges,
            emb_offsets,
            emb_lids,
            emb_counts,
            label_to_id,
        )

    @classmethod
    def from_mmap(
        cls,
        generation: int,
        gids,
        orders,
        edges,
        emb_offsets,
        emb_lids,
        emb_counts,
        label_to_id: Dict[str, int],
    ) -> "GraphEmbeddings":
        """Wrap already-mapped int64 columns without copying."""
        snapshot = object.__new__(cls)
        snapshot.generation = generation
        snapshot.n_graphs = len(orders)
        snapshot.gids = gids
        snapshot.label_to_id = label_to_id
        snapshot.orders = orders
        snapshot.edges = edges
        snapshot.emb_offsets = emb_offsets
        snapshot.emb_lids = emb_lids
        snapshot.emb_counts = emb_counts
        return snapshot

    def lower_bounds(self, query):
        """The embedding GED lower bound against every graph, in row order.

        Returns an int64 ndarray (a plain list under the pure-Python
        fallback), element-wise equal to
        :func:`repro.graphs.edit_distance.trivial_lower_bound` between the
        query and each database graph — the soundness test pins this.
        """
        qcounts = Counter(query.label_multiset())
        q_order = query.order
        q_edges = query.size
        if _np is not None:
            qvec = _np.zeros(len(self.label_to_id) + 1, dtype=_np.int64)
            for label, count in qcounts.items():
                lid = self.label_to_id.get(label)
                if lid is not None:
                    qvec[lid] = count
            terms = _np.minimum(self.emb_counts, qvec[self.emb_lids])
            prefix = _np.zeros(len(terms) + 1, dtype=_np.int64)
            _np.cumsum(terms, out=prefix[1:])
            common = prefix[self.emb_offsets[1:]] - prefix[self.emb_offsets[:-1]]
            return (
                _np.maximum(self.orders, q_order)
                - common
                + _np.abs(self.edges - q_edges)
            )
        qmap = {}
        for label, count in qcounts.items():
            lid = self.label_to_id.get(label)
            if lid is not None:
                qmap[lid] = count
        bounds: List[int] = []
        for row in range(self.n_graphs):
            common = 0
            for i in range(self.emb_offsets[row], self.emb_offsets[row + 1]):
                qc = qmap.get(self.emb_lids[i], 0)
                freq = self.emb_counts[i]
                common += freq if freq < qc else qc
            order = self.orders[row]
            bounds.append(
                (order if order > q_order else q_order)
                - common
                + abs(self.edges[row] - q_edges)
            )
        return bounds


def columnar_snapshot(index) -> Optional["ColumnarCatalog"]:
    """The current columnar mirror of *index*, rebuilt lazily on mutation.

    Returns ``None`` for index objects that do not expose a ``generation``
    counter (nothing in-tree — both backends do — but duck-typed stand-ins
    used in tests may not).  The snapshot is cached on the index object
    itself, so engines shipped to worker processes carry their mirror along.
    """
    generation = getattr(index, "generation", None)
    if generation is None:
        return None
    snapshot = getattr(index, "_columnar_snapshot", None)
    if snapshot is None or snapshot.generation != generation:
        snapshot = ColumnarCatalog.build(index, generation)
        try:
            index._columnar_snapshot = snapshot
        except AttributeError:  # pragma: no cover - slotted stand-ins
            pass
    return snapshot
