#!/usr/bin/env python3
"""Subgraph similarity search — the paper's conclusion extension, live.

Finds the database compounds that *contain* a functional-group-like query
pattern (exactly, or within a few edits), using the same two-level SEGOS
index with the adapted sub-star bounds.

Run with::

    python examples/subgraph_search.py
"""

from repro import Graph, SegosIndex
from repro.core.subsearch import SubgraphSearch
from repro.datasets import aids_like, summarize


def main() -> None:
    data = aids_like(120, seed=17, mean_order=10.0)
    print("corpus:", summarize(data.graphs.values()).describe())

    engine = SegosIndex(data.graphs)
    search = SubgraphSearch(engine, k=25)

    # A small "functional group": the three most common element labels of
    # the chemical-like generator form a branching pattern.
    pattern = Graph(["C00", "C00", "C01"], [(0, 1), (0, 2)])
    print(f"\npattern: {pattern.order} vertices, {pattern.size} edges")

    for tau in (0, 1):
        result = search.range_query(pattern, tau=tau, verify="exact")
        print(
            f"tau={tau}: {len(result.matches)} graphs contain the pattern "
            f"(within {tau} edits); filter accessed "
            f"{result.stats.graphs_accessed}/{len(engine)} graphs"
        )

    # Exact containment mirrors classic subgraph-isomorphism search.
    exact = search.range_query(pattern, tau=0, verify="exact")
    sample = sorted(exact.matches)[:5]
    print(f"\nfirst containing graphs: {sample}")


if __name__ == "__main__":
    main()
