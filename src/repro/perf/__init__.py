"""Performance subsystem: SED memoization, assignment backends, parallelism.

Three independent accelerators for the filtering hot path, each opt-out /
configurable via environment variables (see the README's performance table):

* :mod:`repro.perf.sed_cache` — process-global memo cache for the star edit
  distance, keyed on canonical signature pairs (``REPRO_SED_CACHE_SIZE``);
* :mod:`repro.perf.assignment` — pluggable assignment-problem backends
  (pure Hungarian vs SciPy) behind :func:`solve_assignment`
  (``REPRO_ASSIGNMENT_BACKEND``);
* :mod:`repro.perf.parallel` — process-parallel batch range queries with a
  serial fallback (``REPRO_BATCH_WORKERS``).
"""

from .assignment import (
    available_backends,
    register_backend,
    resolve_backend,
    scipy_available,
    solve_assignment,
)
from .parallel import chunk_evenly, parallel_batch_range_query, resolve_workers
from .sed_cache import (
    DEFAULT_CAPACITY,
    GLOBAL_SED_CACHE,
    CacheInfo,
    SEDCache,
    cached_star_edit_distance,
    sed_cache_clear,
    sed_cache_info,
)

__all__ = [
    "CacheInfo",
    "DEFAULT_CAPACITY",
    "GLOBAL_SED_CACHE",
    "SEDCache",
    "available_backends",
    "cached_star_edit_distance",
    "chunk_evenly",
    "parallel_batch_range_query",
    "register_backend",
    "resolve_backend",
    "resolve_workers",
    "scipy_available",
    "sed_cache_clear",
    "sed_cache_info",
    "solve_assignment",
]
