"""The supervised process-pool executor: retry, salvage, circuit-break.

This module owns the **only** ``ProcessPoolExecutor`` in the package (a
grep guard enforces it).  The two parallel paths — batch range queries and
exact-verification A* fan-out — used to hand-roll their own pools with an
all-or-nothing failure mode: one dead worker threw away *every* completed
chunk and re-ran the whole batch serially, silently.  The supervisor
replaces that with:

* **per-task salvage** — results retrieved before a failure are kept;
  only the unfinished remainder is re-queued (or handed back to the
  caller for a serial fallback);
* **bounded retry with exponential backoff** — a broken pool is killed
  and re-spawned, up to ``max_pool_retries`` consecutive no-progress
  failures, after which the circuit breaker opens;
* **per-task timeouts** — a hung worker cannot block forever:
  ``future.cancel()`` does nothing to a *running* task, so the supervisor
  terminates the worker processes outright and re-spawns (this is also
  what makes a blown ``verify_deadline`` actually bound wall-clock);
* **telemetry** — every failure, injected or real, becomes a
  :class:`~repro.resilience.telemetry.DegradationEvent` in the outcome.

Scripted faults from :mod:`repro.resilience.faults` are woven in at the
exact seams real failures occur, so every branch above is reachable from a
deterministic test.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..config import (
    DEFAULT_MAX_POOL_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    ENV_MAX_POOL_RETRIES,
    ENV_RETRY_BACKOFF,
    ENV_TASK_TIMEOUT,
    env_float,
    env_int,
)
from ..errors import PoolBrokenError, WorkerTimeout
from ..obs.trace import NULL_TRACER, Tracer, activate
from .faults import EMPTY_PLAN, FaultInjected, FaultPlan, WORKER_POINTS
from .telemetry import DegradationEvent


@dataclass(frozen=True)
class ResiliencePolicy:
    """The three retry knobs, resolved once and handed to the supervisor.

    Built from an :class:`~repro.config.EngineConfig` on engine-driven
    paths (:meth:`from_config`) or from the environment for direct,
    engine-less calls (:meth:`from_env`, mirroring the legacy
    ``resolve_*`` helpers).
    """

    #: seconds one task may run before its worker is killed (None = no limit)
    task_timeout: Optional[float] = None
    #: consecutive no-progress pool failures before the circuit opens
    max_pool_retries: int = DEFAULT_MAX_POOL_RETRIES
    #: base of the exponential backoff slept before each retry round
    retry_backoff: float = DEFAULT_RETRY_BACKOFF

    @classmethod
    def from_config(cls, config) -> "ResiliencePolicy":
        return cls(
            task_timeout=config.task_timeout,
            max_pool_retries=config.max_pool_retries,
            retry_backoff=config.retry_backoff,
        )

    @classmethod
    def from_env(cls) -> "ResiliencePolicy":
        backoff = env_float(ENV_RETRY_BACKOFF, DEFAULT_RETRY_BACKOFF)
        return cls(
            task_timeout=env_float(ENV_TASK_TIMEOUT, None),
            max_pool_retries=env_int(ENV_MAX_POOL_RETRIES, DEFAULT_MAX_POOL_RETRIES),
            retry_backoff=backoff if backoff is not None else DEFAULT_RETRY_BACKOFF,
        )

    def backoff_seconds(self, failure_number: int) -> float:
        """Exponential: ``retry_backoff * 2**(n-1)`` before the n-th retry."""
        if self.retry_backoff <= 0 or failure_number <= 0:
            return 0.0
        return self.retry_backoff * (2.0 ** (failure_number - 1))


@dataclass(frozen=True)
class PoolTask:
    """One unit of supervised work: a picklable ``fn(*args)`` call."""

    task_id: Any
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()


@dataclass
class PoolOutcome:
    """What a supervised run produced — including the partial story.

    ``results`` maps task id → return value for every task that finished;
    ``unfinished`` lists the ids the supervisor had to abandon (circuit
    breaker open or deadline blown) — the caller decides their fate
    (serial fallback, or ``undecided`` for a deadline).
    """

    results: Dict[Any, Any] = field(default_factory=dict)
    unfinished: List[Any] = field(default_factory=list)
    events: List[DegradationEvent] = field(default_factory=list)
    #: pool rounds executed (1 = clean single pass)
    rounds: int = 0
    #: retry rounds triggered by failures
    retries: int = 0
    deadline_blown: bool = False
    workers_used: int = 0
    #: how task payloads reached the workers: "pickle" (serialized
    #: engine/graphs through the initializer), "disk" (a DiskHandle the
    #: workers attach by memory-mapping the on-disk index), or "" for
    #: callers that predate transport tagging
    transport: str = ""

    @property
    def ok(self) -> bool:
        """True when every task completed under supervision."""
        return not self.unfinished


def _apply_directive_and_run(
    directive: Optional[Tuple[str, float]], fn: Callable[..., Any], args: Tuple
) -> Any:
    """Apply any scripted fault, then run the task.

    ``worker.crash`` kills the process the way a real crash would (no
    exception machinery, no cleanup), ``worker.hang`` stops responding for
    the scripted duration, and ``chunk.result`` computes the result but
    fails its delivery — exercising the retry path with real work done.
    """
    if directive is not None:
        point, seconds = directive
        if point == "worker.crash":
            os._exit(1)
        elif point == "worker.hang":
            time.sleep(seconds)
    value = fn(*args)
    if directive is not None and directive[0] == "chunk.result":
        raise FaultInjected("injected fault: chunk.result")
    return value


def _supervised_call(
    directive: Optional[Tuple[str, float]],
    fn: Callable[..., Any],
    args: Tuple,
    trace_ctx: Optional[Tuple[str, str, str, Any]] = None,
) -> Any:
    """Worker-side shim: scripted faults, plus span capture when traced.

    *trace_ctx* is ``(trace_id, parent_span_id, stage, task_id)`` — the
    coordinates needed to stitch worker-side spans into the parent tree.
    When present, the worker builds its own tracer (adopting the parent's
    trace id and attaching under the dispatching pool span), installs it
    as the ambient tracer so anything the task executes traces into the
    same tree, and ships the finished spans home alongside the value as
    ``(value, spans)``.  When absent (tracing off) the task runs bare —
    the disabled path is byte-identical to the pre-tracing shim.
    """
    if trace_ctx is None:
        return _apply_directive_and_run(directive, fn, args)
    trace_id, parent_id, stage, task_id = trace_ctx
    tracer = Tracer(trace_id=trace_id, parent_id=parent_id)
    with activate(tracer):
        with tracer.span(f"task:{stage or 'pool'}", task=str(task_id)):
            value = _apply_directive_and_run(directive, fn, args)
    return value, tracer.snapshot()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung workers included.

    ``shutdown(cancel_futures=True)`` only cancels queued tasks — it still
    joins workers that are mid-task, so a hung worker would block the exit
    forever.  Terminating the processes first makes the shutdown prompt.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_supervised(
    tasks: Sequence[PoolTask],
    *,
    workers: int,
    policy: ResiliencePolicy,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    faults: Optional[FaultPlan] = None,
    stage: str = "",
    deadline: Optional[float] = None,
    started: Optional[float] = None,
    tracer=None,
    transport: str = "",
) -> PoolOutcome:
    """Run *tasks* on a supervised process pool; salvage whatever finishes.

    ``deadline`` (seconds since *started*, a ``perf_counter`` timestamp
    defaulting to now) bounds the whole run: once blown, the pool is
    killed and the leftovers are reported ``unfinished`` without retry.
    Failures never raise — they are classified into
    :class:`DegradationEvent`s on the outcome, and the circuit breaker
    hands unfinished work back to the caller after ``max_pool_retries``
    consecutive no-progress rounds.

    An enabled *tracer* records the run as a ``pool:<stage>`` span, ships
    each task's trace coordinates to its worker so worker-side spans
    (including those of retried tasks, each with its worker's pid) stitch
    into the parent tree, and links every :class:`DegradationEvent` to an
    instant span via ``event.span_id``.
    """
    faults = faults if faults is not None else EMPTY_PLAN
    tracer = tracer if tracer is not None else NULL_TRACER
    outcome = PoolOutcome(transport=transport)
    pending: List[PoolTask] = list(tasks)
    consecutive_failures = 0
    clock_started = started if started is not None else time.perf_counter()

    pool_span = (
        tracer.begin(
            f"pool:{stage or 'run'}",
            tasks=len(tasks),
            workers=workers,
            **({"transport": transport} if transport else {}),
        )
        if tracer.enabled
        else None
    )

    def _note_event(event: DegradationEvent) -> None:
        if pool_span is not None:
            event.span_id = tracer.event(
                f"degradation:{event.point}",
                parent=pool_span.context(),
                stage=event.stage,
                cause=event.cause,
                injected=event.injected,
                fallback=event.fallback,
            )
        outcome.events.append(event)

    while pending and not outcome.deadline_blown:
        if consecutive_failures > policy.max_pool_retries:
            break  # circuit breaker open: hand the remainder to the caller
        if consecutive_failures:
            time.sleep(policy.backoff_seconds(consecutive_failures))
        outcome.rounds += 1
        spawn_workers = min(workers, len(pending))

        # -- spawn (fault point: pool.spawn) ----------------------------
        spawn_rule = faults.fire("pool.spawn", stage=stage)
        try:
            if spawn_rule is not None:
                raise OSError("injected fault: pool.spawn")
            pool = ProcessPoolExecutor(
                max_workers=spawn_workers, initializer=initializer, initargs=initargs
            )
        except OSError as exc:
            consecutive_failures += 1
            outcome.retries += 1
            terminal = consecutive_failures > policy.max_pool_retries
            _note_event(
                DegradationEvent(
                    point="pool.spawn",
                    stage=stage,
                    cause=repr(exc),
                    injected=spawn_rule is not None,
                    retries=0 if terminal else outcome.retries,
                    salvaged=len(outcome.results),
                    requeued=0 if terminal else len(pending),
                    lost=len(pending) if terminal else 0,
                    fallback="serial" if terminal else "respawn",
                )
            )
            continue
        outcome.workers_used = max(outcome.workers_used, spawn_workers)

        # -- dispatch (worker-side fault directives attach here) --------
        submitted = []
        issued_points = set()
        for task in pending:
            directive = None
            for point in WORKER_POINTS:
                rule = faults.fire(point, task=task.task_id, stage=stage)
                if rule is not None:
                    directive = (point, rule.seconds)
                    issued_points.add(point)
                    break
            trace_ctx = (
                (tracer.trace_id, pool_span.span_id, stage, task.task_id)
                if pool_span is not None
                else None
            )
            submitted.append(
                (
                    task,
                    pool.submit(
                        _supervised_call, directive, task.fn, task.args, trace_ctx
                    ),
                )
            )

        # -- collect, salvaging in submission order ---------------------
        completed_round = 0
        task_failures: List[Tuple[PoolTask, BaseException]] = []
        breaker: Optional[BaseException] = None
        for task, future in submitted:
            timeout = policy.task_timeout
            if deadline is not None:
                remaining = deadline - (time.perf_counter() - clock_started)
                if remaining <= 0:
                    outcome.deadline_blown = True
                    break
                timeout = remaining if timeout is None else min(timeout, remaining)
            try:
                value = future.result(timeout=timeout)
            except FutureTimeoutError:
                if (
                    deadline is not None
                    and deadline - (time.perf_counter() - clock_started) <= 0
                ):
                    outcome.deadline_blown = True
                    break
                breaker = WorkerTimeout(task.task_id, timeout)
                break
            except BrokenProcessPool as exc:
                breaker = PoolBrokenError(str(exc) or "process pool broken")
                break
            except Exception as exc:  # task-level failure; the pool is healthy
                task_failures.append((task, exc))
                continue
            if pool_span is not None:
                value, worker_spans = value
                tracer.adopt(worker_spans)
            outcome.results[task.task_id] = value
            completed_round += 1

        still_pending = [t for t in pending if t.task_id not in outcome.results]

        if outcome.deadline_blown:
            _kill_pool(pool)
            _note_event(
                DegradationEvent(
                    point="deadline",
                    stage=stage,
                    cause="deadline exceeded before all tasks finished",
                    salvaged=len(outcome.results),
                    lost=len(still_pending),
                    fallback="abandon",
                )
            )
            pending = still_pending
            break

        if breaker is not None:
            # A crash directive this round means the breakage is the
            # scripted fault, even when the pool reports it against a
            # different task's future.
            if isinstance(breaker, WorkerTimeout):
                point = "worker.hang" if "worker.hang" in issued_points else "worker.timeout"
            else:
                point = "worker.crash" if "worker.crash" in issued_points else "pool.broken"
            _kill_pool(pool)
            consecutive_failures = 1 if completed_round else consecutive_failures + 1
            outcome.retries += 1
            terminal = consecutive_failures > policy.max_pool_retries
            _note_event(
                DegradationEvent(
                    point=point,
                    stage=stage,
                    cause=repr(breaker),
                    injected=point in issued_points,
                    retries=0 if terminal else outcome.retries,
                    salvaged=len(outcome.results),
                    requeued=0 if terminal else len(still_pending),
                    lost=len(still_pending) if terminal else 0,
                    fallback="serial" if terminal else "respawn",
                )
            )
            pending = still_pending
            continue

        pool.shutdown(wait=True)
        if task_failures:
            consecutive_failures = 1 if completed_round else consecutive_failures + 1
            outcome.retries += 1
            terminal = consecutive_failures > policy.max_pool_retries
            injected = any(isinstance(exc, FaultInjected) for _, exc in task_failures)
            _note_event(
                DegradationEvent(
                    point="chunk.result" if injected else "task.error",
                    stage=stage,
                    cause="; ".join(repr(exc) for _, exc in task_failures),
                    injected=injected,
                    retries=0 if terminal else outcome.retries,
                    salvaged=len(outcome.results),
                    requeued=0 if terminal else len(still_pending),
                    lost=len(still_pending) if terminal else 0,
                    fallback="serial" if terminal else "retry",
                )
            )
            pending = still_pending
            continue

        consecutive_failures = 0
        pending = still_pending  # empty on a clean round

    outcome.unfinished = [task.task_id for task in pending]
    if pool_span is not None:
        tracer.end_span(
            pool_span,
            rounds=outcome.rounds,
            retries=outcome.retries,
            completed=len(outcome.results),
            unfinished=len(outcome.unfinished),
        )
    return outcome
