"""Figure 14: index construction time vs |D| (both datasets).

Paper: SEGOS builds fastest (one dataset scan into two inverted indexes),
κ-AT needs κ passes worth of feature extraction, and C-Tree's hierarchy is
the slowest.
"""

from __future__ import annotations

import pytest

from repro.baselines import CTree, KappaAT, SegosMethod
from repro.bench import Series, format_table, time_build


def sweep_build_times(dataset, grid):
    series = {
        "SEGOS": Series("SEGOS (s)"),
        "κ-AT": Series("κ-AT (s)"),
        "C-Tree": Series("C-Tree (s)"),
    }
    for size in grid.db_sizes:
        graphs = dataset.subset(size).graphs
        _, t = time_build(lambda: SegosMethod(graphs))
        series["SEGOS"].add(size, t)
        _, t = time_build(lambda: KappaAT(graphs, kappa=2))
        series["κ-AT"].add(size, t)
        _, t = time_build(lambda: CTree(graphs))
        series["C-Tree"].add(size, t)
    return series


@pytest.mark.parametrize("which", ["aids", "pdg"])
def test_fig14_build_time(benchmark, which, aids_dataset, pdg_dataset, grid, report):
    dataset = aids_dataset if which == "aids" else pdg_dataset
    series = sweep_build_times(dataset, grid)
    report(
        f"fig14_build_time_{which}",
        format_table(
            f"Fig 14 (index build time vs |D|, {dataset.name})",
            "|D|",
            list(grid.db_sizes),
            list(series.values()),
        ),
    )
    graphs = dataset.subset(grid.default_db_size).graphs
    benchmark.pedantic(lambda: SegosMethod(graphs), rounds=1, iterations=1)
