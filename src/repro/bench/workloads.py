"""Named query workloads used by the benchmarks and examples.

Besides the paper's default workload (random database members, Section VI),
two stress shapes matter:

* **clone-mass** — the Section VI-E worst case: the database contains a
  mass of graphs similar to the query, so almost nothing can be pruned and
  SEGOS degrades towards C-Star's linear behaviour (the paper verifies the
  TA overhead stays negligible even then);
* **outlier** — the opposite extreme: the query shares almost nothing with
  the database, so the CA threshold should halt both sides almost
  immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..datasets.corpora import Dataset
from ..graphs.generators import erdos_renyi, make_label_alphabet, mutate
from ..graphs.model import Graph


@dataclass(frozen=True)
class Workload:
    """A corpus plus the queries to run against it."""

    name: str
    graphs: Dict[str, Graph]
    queries: List[Graph]


def default_workload(dataset: Dataset, query_count: int, *, seed: int = 0) -> Workload:
    """The paper's setting: queries drawn from the database itself."""
    rng = random.Random(seed)
    pool = list(dataset.graphs.values())
    queries = [rng.choice(pool).copy() for _ in range(query_count)]
    return Workload("default", dict(dataset.graphs), queries)


def clone_mass_workload(
    dataset: Dataset,
    query_count: int,
    *,
    clones_per_query: int = 20,
    clone_edits: int = 1,
    seed: int = 0,
) -> Workload:
    """Section VI-E's worst case: many near-copies of each query planted.

    Each query gets ``clones_per_query`` light mutations inserted into the
    corpus, so a similarity search around it finds a mass of near-matches.
    """
    rng = random.Random(seed)
    graphs = dict(dataset.graphs)
    pool = list(dataset.graphs.values())
    queries: List[Graph] = []
    for qi in range(query_count):
        source = rng.choice(pool)
        queries.append(source.copy())
        for ci in range(clones_per_query):
            graphs[f"clone-{qi}-{ci}"] = mutate(
                rng, source, clone_edits, dataset.labels
            )
    return Workload("clone-mass", graphs, queries)


def outlier_workload(
    dataset: Dataset, query_count: int, *, seed: int = 0
) -> Workload:
    """Queries over a label alphabet disjoint from the corpus."""
    rng = random.Random(seed)
    alien_labels = make_label_alphabet(8, prefix="ALIEN")
    queries = [
        erdos_renyi(rng, alien_labels, rng.randint(5, 10), 0.3)
        for _ in range(query_count)
    ]
    return Workload("outlier", dict(dataset.graphs), queries)
