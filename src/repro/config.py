"""The configuration layer: every ``REPRO_*`` knob, resolved in one place.

Before this module existed, five different modules read ``os.environ`` on
their own schedule — the SED cache at import time, the assignment and top-k
backends per solve, the worker counts per call.  That made the effective
configuration of a query impossible to state ("whatever the environment
happened to contain at that instant") and unshippable to worker processes.

Now the rule is simple and testable:

* **this module is the only place in ``repro`` that touches
  ``os.environ``** (a grep-based guard test enforces it);
* environment variables provide *defaults*, read once when an
  :class:`EngineConfig` is constructed;
* engine constructor kwargs override the environment;
* per-call kwargs (``range_query(k=..., verify_workers=...)``) override the
  engine — applied with :meth:`EngineConfig.override`, which returns a new
  frozen config rather than mutating anything.

The low-level ``env_*`` helpers stay available for the legacy
``resolve_*`` functions in :mod:`repro.perf` and :mod:`repro.core.verify`,
which keep their call-time environment fallback for direct, engine-less use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

# ---------------------------------------------------------------------------
# Environment variable names (single source of truth; other modules re-export
# these for backwards compatibility).
# ---------------------------------------------------------------------------

#: Capacity of the process-global SED memo cache (0 disables it).
ENV_SED_CACHE_SIZE = "REPRO_SED_CACHE_SIZE"
#: Assignment-problem backend: ``pure`` / ``scipy`` / ``auto``.
ENV_ASSIGNMENT_BACKEND = "REPRO_ASSIGNMENT_BACKEND"
#: Top-k sub-unit search backend: ``ta`` / ``scan`` / ``auto``.
ENV_TOPK_BACKEND = "REPRO_TOPK_BACKEND"
#: Worker-process count for batch range queries (1 = serial).
ENV_BATCH_WORKERS = "REPRO_BATCH_WORKERS"
#: Worker-process count for exact-verification A* runs (1 = in-process).
ENV_VERIFY_WORKERS = "REPRO_VERIFY_WORKERS"
#: Per-candidate A* state budget for exact verification.
ENV_VERIFY_BUDGET = "REPRO_VERIFY_BUDGET"
#: Wall-clock deadline (seconds) for one query's exact verification.
ENV_VERIFY_DEADLINE = "REPRO_VERIFY_DEADLINE"
#: Seconds one supervised worker task may run before its worker is killed.
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"
#: Consecutive no-progress pool failures before the circuit breaker opens.
ENV_MAX_POOL_RETRIES = "REPRO_MAX_POOL_RETRIES"
#: Base (seconds) of the exponential backoff slept before pool retries.
ENV_RETRY_BACKOFF = "REPRO_RETRY_BACKOFF"
#: Scripted fault plan for the resilience layer (see repro.resilience.faults).
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"
#: Span tracing on/off (truthy: 1/true/yes/on; falsy: 0/false/no/off).
ENV_TRACE = "REPRO_TRACE"
#: Path appended with one JSON span per line after every traced query.
ENV_TRACE_PATH = "REPRO_TRACE_PATH"
#: Metrics registry on/off (same truthy grammar as ``REPRO_TRACE``).
ENV_METRICS = "REPRO_METRICS"
#: Override for the on-disk index sidecar path (default: ``<db>.segosx``).
ENV_INDEX_PATH = "REPRO_INDEX_PATH"
#: Memory-map a fresh ``.segosx`` sidecar on load / write one on save.
ENV_MMAP = "REPRO_MMAP"
#: Delta-journal compaction threshold as a fraction of base graph count.
ENV_DELTA_COMPACT = "REPRO_DELTA_COMPACT"
#: Number of catalog shards for scatter-gather query execution (1 = off).
ENV_SHARDS = "REPRO_SHARDS"
#: Shard assignment strategy: ``size`` / ``hash`` / ``auto``.
ENV_SHARD_BY = "REPRO_SHARD_BY"
#: Pivot graphs per shard for triangle-inequality shard pruning (0 = off).
ENV_SHARD_PIVOTS = "REPRO_SHARD_PIVOTS"
#: Comma-separated filter-tier chain (ordered subset of the full chain).
ENV_FILTER_TIERS = "REPRO_FILTER_TIERS"
#: Durability discipline for persistence writes: ``always``/``batch``/``never``.
ENV_FSYNC = "REPRO_FSYNC"

#: Default SED-cache capacity (mirrored by ``repro.perf.sed_cache``).
DEFAULT_SED_CACHE_SIZE = 1 << 18
#: Default per-candidate A* state budget (the A* module's own default).
DEFAULT_VERIFY_BUDGET = 2_000_000
#: Default TA top-k (Table II) and CA checkpoint period (paper defaults).
DEFAULT_K = 100
DEFAULT_H = 1000
#: Section V-E's 50 % rule for the Theorem-1 partial check.
DEFAULT_PARTIAL_FRACTION = 0.5
#: Default consecutive-failure budget of the supervised pool's breaker.
DEFAULT_MAX_POOL_RETRIES = 2
#: Default exponential-backoff base (seconds) between pool retries.
DEFAULT_RETRY_BACKOFF = 0.05
#: Default delta-compaction threshold: rewrite the sidecar once the journal
#: exceeds this fraction of the base graph count (see repro.perf.diskcat).
DEFAULT_DELTA_COMPACT = 0.25

#: Valid fsync disciplines, strongest first.  ``always`` fsyncs at every
#: durability barrier (and the parent directory after renames), ``batch``
#: keeps only the ordering-critical barriers (one fsync per save), and
#: ``never`` trusts write ordering alone — safe against process crashes
#: (the page cache survives a SIGKILL) but not against power loss.
FSYNC_POLICIES = ("always", "batch", "never")
#: Default durability discipline: the ordering-critical barriers only.
DEFAULT_FSYNC_POLICY = "batch"

#: The full filter-tier chain, in execution order.  ``embed`` is the
#: constant-time label/degree embedding pre-filter, ``anchor`` the
#: assignment-based anchored lower/upper bound ahead of exact A*; the
#: three paper stages keep their names.  A configured chain must be an
#: ordered subsequence of this tuple containing the three paper stages.
FULL_TIER_CHAIN = ("embed", "ta", "ca", "anchor", "verify")
#: Default chain: the paper's TA -> CA -> verify pipeline, new tiers off.
DEFAULT_FILTER_TIERS = ("ta", "ca", "verify")


def validate_filter_tiers(tiers) -> Tuple[str, ...]:
    """Normalise and validate a filter-tier chain.

    Accepts a comma-separated string, or any iterable of names (lists
    arrive from the persisted JSON config round-trip).  The result must
    be an ordered subsequence of :data:`FULL_TIER_CHAIN` that keeps the
    three paper stages (``ta``, ``ca``, ``verify``) — the new tiers are
    strictly additive pre-filters, never replacements.
    """
    if isinstance(tiers, str):
        names = tuple(part.strip() for part in tiers.split(",") if part.strip())
    else:
        names = tuple(tiers)
    unknown = [name for name in names if name not in FULL_TIER_CHAIN]
    if unknown:
        raise ValueError(
            f"unknown filter tier(s) {unknown} (choose from {FULL_TIER_CHAIN})"
        )
    if len(set(names)) != len(names):
        raise ValueError(f"filter_tiers contains duplicates: {names}")
    ordered = tuple(name for name in FULL_TIER_CHAIN if name in names)
    if ordered != names:
        raise ValueError(
            f"filter_tiers must follow the chain order {FULL_TIER_CHAIN}, got {names}"
        )
    missing = [name for name in ("ta", "ca", "verify") if name not in names]
    if missing:
        raise ValueError(f"filter_tiers must include {missing}")
    return names


# ---------------------------------------------------------------------------
# Raw environment accessors — the only os.environ reads in the package.
# ---------------------------------------------------------------------------

def env_raw(name: str) -> Optional[str]:
    """Read one environment variable (the package's only ``os.environ`` use)."""
    return os.environ.get(name)


def env_str(name: str, default: str = "") -> str:
    """String knob: the variable's value, or *default* when unset."""
    raw = env_raw(name)
    return raw if raw is not None else default


def env_int(name: str, default: int) -> int:
    """Integer knob: unset or unparsable values degrade to *default*."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def env_float(name: str, default: Optional[float]) -> Optional[float]:
    """Float knob: unset or unparsable values degrade to *default*."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def env_bool(name: str, default: bool = False) -> bool:
    """Boolean knob: ``1/true/yes/on`` ↦ True, ``0/false/no/off`` ↦ False.

    Unset or unrecognised values degrade to *default*, matching the other
    ``env_*`` accessors' refusal to let one bad export take queries down.
    """
    raw = env_raw(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off", ""):
        return False
    return default


def _env_assignment_backend() -> Optional[str]:
    """Environment default for the assignment backend (None = ``auto``).

    Unknown names raise at :class:`EngineConfig` construction time (fail
    fast — the same contract as an explicit kwarg), mirroring the legacy
    per-solve behaviour where a bad export raised mid-query.
    """
    raw = env_raw(ENV_ASSIGNMENT_BACKEND)
    return raw or None


def _env_topk_backend() -> Optional[str]:
    """Environment default for the top-k backend (None = ``auto``).

    Unknown names degrade to ``auto`` so one bad shell export cannot take
    queries down — the documented legacy behaviour of this knob.
    """
    raw = env_str(ENV_TOPK_BACKEND).strip().lower()
    return raw if raw in ("ta", "scan", "auto") else None


def _env_shard_by() -> str:
    """Environment default for the shard strategy (unknown degrades to auto).

    Mirrors the top-k backend knob's robustness contract: one bad shell
    export must not take queries down.
    """
    raw = env_str(ENV_SHARD_BY).strip().lower()
    return raw if raw in ("size", "hash", "auto") else "auto"


def _env_fsync_policy() -> str:
    """Environment default for the fsync discipline (unknown degrades).

    Mirrors the shard/top-k knobs' robustness contract: a typo'd shell
    export degrades to the default rather than taking persistence down.
    Explicit constructor kwargs still fail fast in ``__post_init__``.
    """
    raw = env_str(ENV_FSYNC).strip().lower()
    return raw if raw in FSYNC_POLICIES else DEFAULT_FSYNC_POLICY


def _env_filter_tiers() -> Optional[Tuple[str, ...]]:
    """Environment default for the tier chain (invalid degrades to default).

    Explicit kwargs still fail fast in ``__post_init__``; only the
    environment path degrades, per the shared robustness contract.
    """
    raw = env_raw(ENV_FILTER_TIERS)
    if raw is None:
        return None
    try:
        return validate_filter_tiers(raw)
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# EngineConfig
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EngineConfig:
    """Every engine tuning knob, resolved once and immutable thereafter.

    Build one with :meth:`from_env` (environment defaults, explicit kwargs
    win) and derive per-call variants with :meth:`override`.  Instances are
    frozen and hashable, travel to worker processes by pickling, and never
    consult the environment after construction.

    Attributes
    ----------
    k:
        TA top-k per query star (Table II default 100).
    h:
        CA checkpoint period in list accesses (paper default 1000).
    partial_fraction:
        Share of a graph's stars that must be revealed before the
        Theorem-1 partial check runs (Section V-E's 50 % rule); values
        above 1 postpone the check until the graph is force-resolved.
    sed_cache_size:
        Capacity of the process-global SED memo cache; 0 disables it.
        Env: ``REPRO_SED_CACHE_SIZE``.
    assignment_backend:
        ``pure`` / ``scipy`` / ``auto``; ``None`` means ``auto``.
        Env: ``REPRO_ASSIGNMENT_BACKEND``.
    topk_backend:
        ``ta`` / ``scan`` / ``auto``; ``None`` means ``auto`` (the adaptive
        planner).  Env: ``REPRO_TOPK_BACKEND``.
    batch_workers:
        Worker processes for batch range queries; 1 = serial.
        Env: ``REPRO_BATCH_WORKERS``.
    verify_workers:
        Worker processes for exact-verification A* runs; 1 = in-process.
        Env: ``REPRO_VERIFY_WORKERS``.
    verify_budget:
        Per-candidate A* state budget for exact verification.
        Env: ``REPRO_VERIFY_BUDGET``.
    verify_deadline:
        Wall-clock seconds after which no further A* runs are scheduled in
        one query's verification; ``None`` = no deadline.
        Env: ``REPRO_VERIFY_DEADLINE``.
    task_timeout:
        Seconds one supervised worker task may run before its worker is
        killed and the task retried; ``None`` = no per-task timeout.
        Env: ``REPRO_TASK_TIMEOUT``.
    max_pool_retries:
        Consecutive no-progress pool failures the supervised executor
        tolerates before its circuit breaker opens and execution falls
        back to serial.  Env: ``REPRO_MAX_POOL_RETRIES``.
    retry_backoff:
        Base (seconds) of the exponential backoff slept before each pool
        retry round.  Env: ``REPRO_RETRY_BACKOFF``.
    fault_plan:
        Scripted fault-injection plan (see
        :mod:`repro.resilience.faults`); ``None`` = faults disabled.
        Env: ``REPRO_FAULT_PLAN``.
    trace:
        Span tracing on/off.  When off (the default) the executor carries
        the null tracer, whose span context manager is a shared no-op —
        the hot loops pay one truthiness test.  Env: ``REPRO_TRACE``.
    trace_path:
        When set, every traced query appends its spans to this file as
        JSON lines (see :mod:`repro.obs.export`).  Implies nothing about
        ``trace`` — both knobs must be on to write.
        Env: ``REPRO_TRACE_PATH``.
    metrics:
        Feed the process-global metrics registry
        (:data:`repro.obs.metrics.GLOBAL_METRICS`) after every executed
        query.  Env: ``REPRO_METRICS``.
    index_path:
        Explicit path for the on-disk ``.segosx`` index sidecar; ``None``
        derives it from the graph file (``<db>.segosx``).
        Env: ``REPRO_INDEX_PATH``.
    mmap:
        Memory-map a fresh sidecar on :func:`repro.core.persistence.load_index`
        (zero-copy cold start) and write/refresh one on ``save_index``.
        Off ⇒ always rebuild from the transaction text and never write a
        sidecar.  Env: ``REPRO_MMAP``.
    fsync_policy:
        Durability discipline for every persistence write (text replace,
        sidecar write, delta append): ``always`` fsyncs at each barrier
        plus the parent directory after renames, ``batch`` (the default)
        keeps only the ordering-critical barriers — the delta record
        before the header that claims it, the temp file before the
        ``os.replace``, the directory after it — and ``never`` issues no
        fsync at all.  All three keep the write *ordering*, so a killed
        process can never corrupt the pair; ``never`` additionally bets
        against power loss.  Env: ``REPRO_FSYNC``.
    delta_compact:
        Compaction threshold for the sidecar's append-only delta journal,
        as a fraction of the base graph count: once the accumulated ops
        exceed ``delta_compact * len(base)`` a save rewrites the full
        sidecar instead of appending.  ``0`` compacts on every save.
        Env: ``REPRO_DELTA_COMPACT``.
    shards:
        Number of catalog shards for scatter-gather query execution
        (see :mod:`repro.perf.shard`); 1 = the monolithic single-catalog
        path.  Env: ``REPRO_SHARDS``.
    shard_by:
        Shard assignment strategy: ``size`` bands graphs by order so
        similarly-sized graphs colocate (tight pivot ranges), ``hash``
        spreads gids uniformly by a stable signature hash, ``auto``
        currently means ``size``.  Env: ``REPRO_SHARD_BY``.
    shard_pivots:
        Pivot graphs selected per shard at view-build time; the planner
        skips shards the triangle inequality rules out at query time.
        0 disables pivot pruning (the default — pruning may drop
        non-answer candidates, so candidate sets are only guaranteed
        identical to the unsharded path with pivots off; the *answer*
        set is preserved either way).  Env: ``REPRO_SHARD_PIVOTS``.
    filter_tiers:
        The composable filter-tier chain the query planner executes, as
        an ordered subsequence of :data:`FULL_TIER_CHAIN` that keeps the
        three paper stages.  The default is the paper pipeline
        (``ta, ca, verify``); enabling ``embed`` adds the constant-time
        label/degree embedding pre-filter ahead of TA and ``anchor``
        adds the assignment-based anchored bound ahead of exact A*.
        Both new tiers prune only provable non-answers, so the match set
        is identical with any valid chain.  Accepts a comma-separated
        string or a sequence of names.  Env: ``REPRO_FILTER_TIERS``.
    """

    k: int = DEFAULT_K
    h: int = DEFAULT_H
    partial_fraction: float = DEFAULT_PARTIAL_FRACTION
    sed_cache_size: int = DEFAULT_SED_CACHE_SIZE
    assignment_backend: Optional[str] = None
    topk_backend: Optional[str] = None
    batch_workers: int = 1
    verify_workers: int = 1
    verify_budget: int = DEFAULT_VERIFY_BUDGET
    verify_deadline: Optional[float] = None
    task_timeout: Optional[float] = None
    max_pool_retries: int = DEFAULT_MAX_POOL_RETRIES
    retry_backoff: float = DEFAULT_RETRY_BACKOFF
    fault_plan: Optional[str] = None
    trace: bool = False
    trace_path: Optional[str] = None
    metrics: bool = False
    index_path: Optional[str] = None
    mmap: bool = True
    fsync_policy: str = DEFAULT_FSYNC_POLICY
    delta_compact: float = DEFAULT_DELTA_COMPACT
    shards: int = 1
    shard_by: str = "auto"
    shard_pivots: int = 0
    filter_tiers: Tuple[str, ...] = DEFAULT_FILTER_TIERS

    def __post_init__(self) -> None:
        # Normalise before validating: the persisted-config JSON round-trip
        # hands back a list, and front-end callers may pass a comma string.
        object.__setattr__(
            self, "filter_tiers", validate_filter_tiers(self.filter_tiers)
        )
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.h < 1:
            raise ValueError("h must be >= 1")
        if self.partial_fraction < 0.0:
            raise ValueError("partial_fraction must be non-negative")
        if self.sed_cache_size < 0:
            raise ValueError("sed_cache_size must be >= 0")
        if self.batch_workers < 1:
            raise ValueError("batch_workers must be >= 1")
        if self.verify_workers < 1:
            raise ValueError("verify_workers must be >= 1")
        if self.verify_budget < 1:
            raise ValueError("verify_budget must be >= 1")
        if self.verify_deadline is not None and self.verify_deadline <= 0:
            raise ValueError("verify_deadline must be positive")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.max_pool_retries < 0:
            raise ValueError("max_pool_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync_policy {self.fsync_policy!r} "
                f"(choose from {', '.join(FSYNC_POLICIES)})"
            )
        if self.delta_compact < 0:
            raise ValueError("delta_compact must be non-negative")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_by not in ("size", "hash", "auto"):
            raise ValueError(
                f"unknown shard_by {self.shard_by!r} (size, hash or auto)"
            )
        if self.shard_pivots < 0:
            raise ValueError("shard_pivots must be >= 0")
        if self.fault_plan is not None:
            # A typo'd fault plan fails fast here, not by silently never
            # firing mid-experiment.  Imported lazily (resilience imports
            # this module at startup).
            from .resilience.faults import FaultPlan

            FaultPlan.parse(self.fault_plan)
        # Backend names fail fast at construction, not mid-query.  Imported
        # lazily: the perf/core modules import this module at startup.
        # Resolving ``None`` too keeps the scipy probe (an import) at
        # construction time instead of inside the first timed query.
        from .perf.assignment import resolve_backend

        resolve_backend(self.assignment_backend)
        if self.topk_backend is not None:
            from .core.ta_search import resolve_topk_backend

            resolve_topk_backend(self.topk_backend)

    @classmethod
    def from_env(cls, **overrides: Any) -> "EngineConfig":
        """Build a config from the environment, with *overrides* winning.

        Overrides whose value is ``None`` mean "not specified" and fall
        back to the environment (or the built-in default) — exactly the
        contract of the engine's optional constructor kwargs.
        """
        values: Dict[str, Any] = {
            "k": DEFAULT_K,
            "h": DEFAULT_H,
            "partial_fraction": DEFAULT_PARTIAL_FRACTION,
            "sed_cache_size": env_int(ENV_SED_CACHE_SIZE, DEFAULT_SED_CACHE_SIZE),
            "assignment_backend": _env_assignment_backend(),
            "topk_backend": _env_topk_backend(),
            "batch_workers": env_int(ENV_BATCH_WORKERS, 1),
            "verify_workers": env_int(ENV_VERIFY_WORKERS, 1),
            "verify_budget": env_int(ENV_VERIFY_BUDGET, DEFAULT_VERIFY_BUDGET),
            "verify_deadline": env_float(ENV_VERIFY_DEADLINE, None),
            "task_timeout": env_float(ENV_TASK_TIMEOUT, None),
            "max_pool_retries": env_int(
                ENV_MAX_POOL_RETRIES, DEFAULT_MAX_POOL_RETRIES
            ),
            "retry_backoff": env_float(ENV_RETRY_BACKOFF, DEFAULT_RETRY_BACKOFF),
            "fault_plan": env_raw(ENV_FAULT_PLAN) or None,
            "trace": env_bool(ENV_TRACE, False),
            "trace_path": env_raw(ENV_TRACE_PATH) or None,
            "metrics": env_bool(ENV_METRICS, False),
            "index_path": env_raw(ENV_INDEX_PATH) or None,
            "mmap": env_bool(ENV_MMAP, True),
            "fsync_policy": _env_fsync_policy(),
            "delta_compact": env_float(ENV_DELTA_COMPACT, DEFAULT_DELTA_COMPACT),
            "shards": env_int(ENV_SHARDS, 1),
            "shard_by": _env_shard_by(),
            "shard_pivots": env_int(ENV_SHARD_PIVOTS, 0),
            "filter_tiers": _env_filter_tiers() or DEFAULT_FILTER_TIERS,
        }
        known = {f.name for f in fields(cls)}
        for name, value in overrides.items():
            if name not in known:
                raise TypeError(f"unknown EngineConfig field {name!r}")
            if value is not None:
                values[name] = value
        return cls(**values)

    def override(self, **overrides: Any) -> "EngineConfig":
        """Return a new config with non-``None`` *overrides* applied.

        This is the per-call layer of the precedence chain: front-end
        kwargs like ``range_query(..., k=5, verify_workers=2)`` funnel
        through here, so every stage reads one coherent config object.
        """
        known = {f.name for f in fields(self)}
        changes = {}
        for name, value in overrides.items():
            if name not in known:
                raise TypeError(f"unknown EngineConfig field {name!r}")
            if value is not None:
                changes[name] = value
        return replace(self, **changes) if changes else self

    def knobs(self) -> Mapping[str, Any]:
        """Field name → value mapping (stable order; for reporting/tests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Field name → environment variable for every env-backed knob.
ENV_KNOBS: Tuple[Tuple[str, str], ...] = (
    ("sed_cache_size", ENV_SED_CACHE_SIZE),
    ("assignment_backend", ENV_ASSIGNMENT_BACKEND),
    ("topk_backend", ENV_TOPK_BACKEND),
    ("batch_workers", ENV_BATCH_WORKERS),
    ("verify_workers", ENV_VERIFY_WORKERS),
    ("verify_budget", ENV_VERIFY_BUDGET),
    ("verify_deadline", ENV_VERIFY_DEADLINE),
    ("task_timeout", ENV_TASK_TIMEOUT),
    ("max_pool_retries", ENV_MAX_POOL_RETRIES),
    ("retry_backoff", ENV_RETRY_BACKOFF),
    ("fault_plan", ENV_FAULT_PLAN),
    ("trace", ENV_TRACE),
    ("trace_path", ENV_TRACE_PATH),
    ("metrics", ENV_METRICS),
    ("index_path", ENV_INDEX_PATH),
    ("mmap", ENV_MMAP),
    ("fsync_policy", ENV_FSYNC),
    ("delta_compact", ENV_DELTA_COMPACT),
    ("shards", ENV_SHARDS),
    ("shard_by", ENV_SHARD_BY),
    ("shard_pivots", ENV_SHARD_PIVOTS),
    ("filter_tiers", ENV_FILTER_TIERS),
)
