"""Figure 13: index size vs |D| for SEGOS, κ-AT and C-Tree (both datasets).

Paper: SEGOS's two inverted indexes are the smallest at every |D|; C-Tree's
closure hierarchy is the largest.  Our size metric is machine-independent:
stored index entries (postings / closure entries), which dominate any
realistic encoding.
"""

from __future__ import annotations

import pytest

from repro.baselines import CTree, KappaAT, SegosMethod
from repro.bench import Series, format_table


def sweep_sizes(dataset, grid):
    series = {
        "SEGOS": Series("SEGOS"),
        "κ-AT": Series("κ-AT"),
        "C-Tree": Series("C-Tree"),
    }
    for size in grid.db_sizes:
        graphs = dataset.subset(size).graphs
        series["SEGOS"].add(size, SegosMethod(graphs).index_size())
        series["κ-AT"].add(size, KappaAT(graphs, kappa=2).index_size())
        series["C-Tree"].add(size, CTree(graphs).index_size())
    return series


@pytest.mark.parametrize("which", ["aids", "pdg"])
def test_fig13_index_size(benchmark, which, aids_dataset, pdg_dataset, grid, report):
    dataset = aids_dataset if which == "aids" else pdg_dataset
    series = sweep_sizes(dataset, grid)
    report(
        f"fig13_index_size_{which}",
        format_table(
            f"Fig 13 (index size vs |D|, {dataset.name})",
            "|D|",
            list(grid.db_sizes),
            list(series.values()),
            fmt="{:.0f}",
        ),
    )
    graphs = dataset.subset(grid.default_db_size).graphs
    benchmark.pedantic(
        lambda: SegosMethod(graphs).index_size(), rounds=1, iterations=1
    )
    # Shape: SEGOS index grows with |D| and every method's size is monotone.
    for s in series.values():
        values = [s.points[x] for x in grid.db_sizes]
        assert values == sorted(values)
