"""The metrics registry: counters, gauges and histograms over query runs.

Where spans answer "what happened inside *this* query", metrics answer
"what does the workload look like across *all* of them" — the aggregate
view a serving deployment scrapes.  The design follows the Prometheus
data model (metric name + label set → one time series) without any
dependency: :func:`repro.obs.export.prometheus_text` renders a registry
in the text exposition format.

Every number is derived from :class:`~repro.core.stats.QueryStats` by
:func:`record_query_metrics` *after* a query finishes, never sampled
mid-flight.  That has two consequences worth the trade:

* metrics are byte-identical whether tracing is on or off (a property
  test pins this), because both read the same finished counters;
* worker processes feed their own (discarded) registries — batch fan-out
  still reports correctly because the *merged* stats come home with the
  results and are recorded by the parent.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple


#: Default histogram buckets (seconds) — smoke queries land in the middle.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)
#: Default histogram buckets for counts (TA accesses, A* expansions, ...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 10, 100, 1_000, 10_000, 100_000, 1_000_000,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (cache size, workers in use)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with cumulative counts, Prometheus-style.

    ``counts[i]`` is the number of observations ``<= buckets[i]``; the
    implicit ``+Inf`` bucket equals ``count``.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> List[int]:
        """Cumulative per-bucket counts (excluding the +Inf bucket)."""
        return list(self._counts)


class MetricsRegistry:
    """Name + label-set → metric, with lazy creation and atomic reset.

    The factory methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) return the existing series when called again with
    the same name and labels, so instrumentation points never need to
    pre-register anything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], Any] = {}
        self._help: Dict[str, Tuple[str, str]] = {}  # name -> (kind, help)

    def _get(self, name: str, labels: Mapping[str, str], factory, kind: str, help: str):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                known = self._help.get(name)
                if known is not None and known[0] != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {known[0]}"
                    )
                metric = self._metrics[key] = factory()
                if known is None or (help and not known[1]):
                    self._help[name] = (kind, help or (known[1] if known else ""))
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(name, labels, Counter, "counter", help)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(name, labels, Gauge, "gauge", help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(name, labels, lambda: Histogram(buckets), "histogram", help)

    def reset(self) -> None:
        """Drop every series (tests; not part of the serving surface)."""
        with self._lock:
            self._metrics.clear()
            self._help.clear()

    def collect(self) -> Iterator[Tuple[str, str, str, List[Tuple[LabelPairs, Any]]]]:
        """Yield ``(name, kind, help, [(labels, metric), ...])`` sorted."""
        with self._lock:
            grouped: Dict[str, List[Tuple[LabelPairs, Any]]] = {}
            for (name, labels), metric in self._metrics.items():
                grouped.setdefault(name, []).append((labels, metric))
            help_map = dict(self._help)
        for name in sorted(grouped):
            kind, help = help_map.get(name, ("counter", ""))
            yield name, kind, help, sorted(grouped[name], key=lambda item: item[0])

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels}`` → value mapping (histograms: sum/count).

        This is the comparison form the traced-vs-untraced identity test
        diffs — deterministic keys, plain floats.
        """
        flat: Dict[str, float] = {}
        for name, kind, _, series in self.collect():
            for labels, metric in series:
                suffix = (
                    "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"
                    if labels
                    else ""
                )
                if kind == "histogram":
                    flat[f"{name}_sum{suffix}"] = metric.sum
                    flat[f"{name}_count{suffix}"] = float(metric.count)
                else:
                    flat[f"{name}{suffix}"] = metric.value
        return flat


#: The process-global registry fed when ``EngineConfig.metrics`` is on.
GLOBAL_METRICS = MetricsRegistry()


def record_query_metrics(
    registry: MetricsRegistry,
    stats,
    elapsed: float,
    *,
    mode: str = "range",
) -> None:
    """Fold one finished query's :class:`QueryStats` into *registry*.

    Called by the plan executor after ``stats`` stops changing, so every
    number here is final — recording is pure bookkeeping and cannot
    perturb the measured query.
    """
    registry.counter(
        "repro_queries_total", "queries executed", mode=mode
    ).inc()
    registry.histogram(
        "repro_query_seconds", "end-to-end query latency", mode=mode
    ).observe(elapsed)

    # SED-cache hit rate: expose the two raw counters; rate is a PromQL join.
    registry.counter(
        "repro_sed_cache_lookups_total", "SED memo-cache lookups", result="hit"
    ).inc(stats.sed_cache_hits)
    registry.counter(
        "repro_sed_cache_lookups_total", "SED memo-cache lookups", result="miss"
    ).inc(stats.sed_cache_misses)

    # TA stage: search fan-out and depth (sorted accesses per query).
    registry.counter(
        "repro_ta_searches_total", "top-k sub-unit searches executed"
    ).inc(stats.ta_searches)
    registry.counter(
        "repro_ta_accesses_total", "TA sorted accesses"
    ).inc(stats.ta_accesses)
    registry.histogram(
        "repro_ta_depth", "TA sorted accesses per query",
        buckets=DEFAULT_COUNT_BUCKETS,
    ).observe(stats.ta_accesses)

    # CA stage: sorted (list-entry) vs random (mapping-distance) accesses.
    registry.counter(
        "repro_ca_accesses_total", "CA accesses", kind="sorted"
    ).inc(stats.list_entries_scanned)
    registry.counter(
        "repro_ca_accesses_total", "CA accesses", kind="random"
    ).inc(stats.graphs_accessed)

    # Candidates surviving each bound in the DC chain.
    for bound, pruned in sorted(stats.pruned_by.items()):
        registry.counter(
            "repro_pruned_total", "graphs pruned per bound", bound=bound
        ).inc(pruned)
    registry.counter(
        "repro_candidates_total", "graphs surviving every filter"
    ).inc(stats.candidates)
    registry.counter(
        "repro_confirmed_total", "matches confirmed without GED"
    ).inc(stats.confirmed_matches)

    # Verification: bound-settled vs A* runs, and A* search effort.
    registry.counter(
        "repro_verify_settled_by_bounds_total",
        "verification candidates settled by L_m/U_m alone",
    ).inc(stats.settled_by_bounds)
    registry.counter(
        "repro_astar_runs_total", "A* GED runs dispatched"
    ).inc(stats.astar_runs)
    registry.counter(
        "repro_astar_expansions_total", "A* states expanded"
    ).inc(stats.astar_expansions)
    if stats.astar_runs:
        registry.histogram(
            "repro_astar_expansions", "A* states expanded per query",
            buckets=DEFAULT_COUNT_BUCKETS,
        ).observe(stats.astar_expansions)

    # Stage wall clocks (the paper's where-does-time-go breakdown).
    for stage, seconds in sorted(stats.stage_seconds.items()):
        registry.counter(
            "repro_stage_seconds_total", "cumulative stage wall clock",
            stage=stage,
        ).inc(seconds)

    # Resilience: pool retries / salvage / losses, by failure point.
    for event in stats.degradations:
        registry.counter(
            "repro_degradations_total", "pool degradation events",
            point=event.point,
        ).inc()
        registry.counter(
            "repro_pool_retries_total", "pool retry rounds"
        ).inc(event.retries)
        registry.counter(
            "repro_pool_salvaged_total", "task results salvaged across failures"
        ).inc(event.salvaged)
        registry.counter(
            "repro_pool_lost_total", "tasks abandoned to fallbacks"
        ).inc(event.lost)
