"""Tests for the TA top-k sub-unit search (Algorithm 2), incl. Figure 8."""

from __future__ import annotations

import random

import pytest

from repro.core.index import TwoLevelIndex
from repro.core.ta_search import brute_force_top_k, top_k_stars
from repro.graphs.generators import corpus
from repro.graphs.model import Graph
from repro.graphs.star import Star, decompose, star_edit_distance


def index_of(*graph_items):
    index = TwoLevelIndex()
    for gid, graph in graph_items:
        index.add_graph(gid, graph, decompose(graph))
    return index


class TestFigure8:
    """Figure 8: top-2 search for s_q = abbcc over the Figure 6 catalog."""

    def test_top2_result(self, paper_g1, paper_g2):
        index = index_of(("g1", paper_g1), ("g2", paper_g2))
        result = top_k_stars(index, Star("a", "bbcc"), 2)
        entries = [
            (index.catalog.star(sid).signature, sed) for sid, sed in result.entries
        ]
        # Figure 8's answer: s0 (itself, SED 0) and s3 = babcc (SED 2).
        assert entries == [("a|b,b,c,c", 0), ("b|a,b,c,c", 2)]
        assert result.kth_sed == 2

    def test_halting_saves_accesses(self, paper_g1, paper_g2):
        index = index_of(("g1", paper_g1), ("g2", paper_g2))
        result = top_k_stars(index, Star("a", "bbcc"), 2, backend="ta")
        # The catalog holds 7 stars over 5 lower-level lists; a full scan
        # would access far more entries than a TA run that halts.
        assert result.accesses > 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(self, seed, k):
        rng = random.Random(seed)
        graphs = corpus(rng, 15, kind="chemical", mean_order=8, stddev=2)
        index = index_of(*((f"g{i}", g) for i, g in enumerate(graphs)))
        query_graph = corpus(rng, 1, kind="chemical", mean_order=8, stddev=2)[0]
        for query in decompose(query_graph):
            got = top_k_stars(index, query, k)
            expected = brute_force_top_k(index, query, k)
            got_seds = [sed for _, sed in got.entries]
            expected_seds = [sed for _, sed in expected]
            assert got_seds == expected_seds
            # The sid sets may differ only within SED ties.
            assert {s for s, d in got.entries if d < got_seds[-1]} == {
                s for s, d in expected if d < expected_seds[-1]
            }

    def test_k_larger_than_catalog(self, paper_g1):
        index = index_of(("g1", paper_g1))
        result = top_k_stars(index, Star("a", "bbcc"), 50)
        assert len(result.entries) == len(index.catalog)
        assert result.kth_sed == float("inf")

    def test_exact_match_first(self, paper_g1, paper_g2):
        index = index_of(("g1", paper_g1), ("g2", paper_g2))
        for star in decompose(paper_g1):
            result = top_k_stars(index, star, 1)
            assert result.entries[0][1] == 0

    def test_invalid_k(self, paper_g1):
        index = index_of(("g1", paper_g1))
        with pytest.raises(ValueError):
            top_k_stars(index, Star("a"), 0)


class TestAccessAccounting:
    """`TopKResult.accesses` is Figure 20's overhead metric — pin it.

    The counts below are properties of the fixed Figure 6 catalog and the
    round-robin access order, not incidental implementation detail: any
    change to what counts as a sorted access (or to the halting test) must
    update these numbers *consciously*.
    """

    def test_figure8_access_counts_pinned(self, paper_g1, paper_g2):
        index = index_of(("g1", paper_g1), ("g2", paper_g2))
        top2 = top_k_stars(index, Star("a", "bbcc"), 2, backend="ta")
        assert top2.accesses == 14
        top1 = top_k_stars(index, Star("a", "bbcc"), 1, backend="ta")
        assert top1.accesses == 9
        # Deeper k never accesses less than shallower k on the same catalog.
        assert top2.accesses >= top1.accesses

    def test_scan_backend_reports_width_not_accesses(self, paper_g1, paper_g2):
        index = index_of(("g1", paper_g1), ("g2", paper_g2))
        result = top_k_stars(index, Star("a", "bbcc"), 2, backend="scan")
        assert result.accesses == 0
        assert result.scan_width == len(index.catalog) == 7
        assert result.exhaustive

    def test_accesses_consistent_across_repeats(self, paper_g1, paper_g2):
        index = index_of(("g1", paper_g1), ("g2", paper_g2))
        runs = [top_k_stars(index, Star("a", "bbcc"), 2, backend="ta") for _ in range(3)]
        assert len({r.accesses for r in runs}) == 1

    def test_accesses_bounded_by_postings_plus_size_list(self, small_aids):
        items = list(small_aids.graphs.items())[:20]
        index = index_of(*items)
        n = len(index.catalog)
        for query in decompose(items[0][1])[:3]:
            result = top_k_stars(index, query, 5, backend="ta")
            postings = sum(
                index.lower.label_postings_count(label) for label in set(query.leaves)
            )
            # Both TA sides together can at most drain every postings entry
            # under the query's labels plus the full size list twice (once
            # per side boundary overlap is impossible — split is disjoint).
            assert 0 < result.accesses <= postings + n


class TestEdgeCases:
    def test_leafless_query_star(self, paper_g1):
        """A query star with no leaves only drives the size list."""
        index = index_of(("g1", paper_g1))
        result = top_k_stars(index, Star("a"), 3)
        expected = brute_force_top_k(index, Star("a"), 3)
        assert [sed for _, sed in result.entries] == [sed for _, sed in expected]

    def test_unknown_labels_query(self, paper_g1):
        index = index_of(("g1", paper_g1))
        result = top_k_stars(index, Star("z", "yy"), 2)
        expected = brute_force_top_k(index, Star("z", "yy"), 2)
        assert [sed for _, sed in result.entries] == [sed for _, sed in expected]

    def test_empty_index(self):
        index = TwoLevelIndex()
        result = top_k_stars(index, Star("a", "b"), 5)
        assert result.entries == []
        assert result.kth_sed == float("inf")

    def test_results_sorted_ascending(self, small_aids):
        items = list(small_aids.graphs.items())[:20]
        index = index_of(*items)
        query = decompose(items[0][1])[0]
        result = top_k_stars(index, query, 10)
        seds = [sed for _, sed in result.entries]
        assert seds == sorted(seds)
