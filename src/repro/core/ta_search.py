"""TA-based top-k sub-unit search (Algorithm 2, Section V-A).

Given a query star ``s_q``, find the ``k`` database stars with the smallest
star edit distance without scanning the whole catalog.  Equation (1) rewrites
the SED so that, ignoring the non-negative root term,

* for stars with ``|L_i| ≤ |L_q|``:  ``λ = 2·|L_q| − (ψ + |L_i|)``,
* for stars with ``|L_i| > |L_q|``:  ``λ = −|L_q| − (ψ − 2·|L_i|)``,

where ``ψ`` is the number of common leaf labels.  Both are monotone in the
per-list quantities the lower-level index sorts by — label frequencies
(descending) and leaf size (descending towards ``|L_q|`` on the low side,
ascending on the high side) — so Fagin's Threshold Algorithm applies: do
sorted round-robin access, compute the exact SED of every star seen, and
halt once the threshold ``ω`` built from the *last seen* frequencies/sizes
can no longer beat the current k-th best.

The two sides run as two independent TA passes that share one top-k heap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..graphs.star import Star, star_edit_distance
from ..perf.sed_cache import cached_star_edit_distance
from .index import LowerEntry, TwoLevelIndex
from .merge import merge_groups


@dataclass
class TopKResult:
    """Result of a top-k sub-unit search.

    Attributes
    ----------
    entries:
        ``(sid, sed)`` pairs sorted by increasing SED (ties by sid); at most
        k of them.
    kth_sed:
        Guaranteed floor on the SED of any star *not* in ``entries``
        (the CA stage builds its bounds from this).  When fewer than k
        stars exist at all, there is no star outside the result and the
        floor is ``+inf``.
    exhaustive:
        True when the search saw every live star (no threshold halt).
    accesses:
        Number of sorted accesses performed (Figure 20's overhead metric).
    """

    entries: List[Tuple[int, int]]
    kth_sed: float
    exhaustive: bool
    accesses: int = 0


class _TopKHeap:
    """Fixed-capacity max-heap of (sed, sid) keeping the k smallest SEDs."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[Tuple[int, int]] = []  # (-sed, -sid): max-heap

    def offer(self, sid: int, sed: int) -> None:
        item = (-sed, -sid)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    def worst(self) -> Optional[int]:
        """Current k-th best SED, or None while the heap is not full."""
        if len(self._heap) < self.k:
            return None
        return -self._heap[0][0]

    def bound(self) -> float:
        """Halting bound: k-th best SED, or +inf while under-full."""
        worst = self.worst()
        return float("inf") if worst is None else float(worst)

    def items(self) -> List[Tuple[int, int]]:
        """``(sid, sed)`` sorted by (sed, sid) ascending."""
        return sorted(((-s, -d) for d, s in self._heap), key=lambda p: (p[1], p[0]))


def top_k_stars(index: TwoLevelIndex, query: Star, k: int) -> TopKResult:
    """Algorithm 2: the k most similar database stars to *query*.

    Examples are in ``tests/test_ta_search.py`` (including Figure 8's
    worked run).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    heap = _TopKHeap(k)
    seen: set = set()
    catalog = index.catalog
    accesses = 0

    leaf_counts = sorted(query.leaf_counter().items())
    lq = query.leaf_size

    low_size, high_size = index.lower.split_size_list(lq)

    def run_side(low: bool, size_entries: List[LowerEntry]) -> bool:
        """One TA pass; returns True if it halted via the threshold."""
        nonlocal accesses
        label_streams: List[Iterator[LowerEntry]] = []
        last_freq: List[float] = []
        for label, _count in leaf_counts:
            low_groups, high_groups = index.lower.split_label_list(label, lq)
            stream = merge_groups(low_groups if low else high_groups)
            label_streams.append(stream)
            last_freq.append(0.0)  # replaced on first access
        size_iter = iter(size_entries)
        last_size: float = 0.0

        exhausted = [False] * len(label_streams)
        size_exhausted = False
        while True:
            progressed = False
            # Round-robin: each label list, then the size list.
            for j, stream in enumerate(label_streams):
                if exhausted[j]:
                    continue
                entry = next(stream, None)
                if entry is None:
                    exhausted[j] = True
                    last_freq[j] = 0.0  # unseen stars miss this list: ψ_j = 0
                    continue
                accesses += 1
                progressed = True
                last_freq[j] = float(entry.freq)
                if entry.sid not in seen:
                    seen.add(entry.sid)
                    # Equation (1)'s exact-SED evaluation of a seen star; the
                    # memo cache absorbs the massive signature repetition
                    # across queries sharing vocabulary.
                    heap.offer(
                        entry.sid,
                        cached_star_edit_distance(query, catalog.star(entry.sid)),
                    )
            if not size_exhausted:
                entry = next(size_iter, None)
                if entry is None:
                    size_exhausted = True
                else:
                    accesses += 1
                    progressed = True
                    last_size = float(entry.leaf_size)
                    if entry.sid not in seen:
                        seen.add(entry.sid)
                        heap.offer(
                            entry.sid,
                            cached_star_edit_distance(query, catalog.star(entry.sid)),
                        )
            if size_exhausted:
                # Every star on this side lives in the size list, so an
                # exhausted size list means the side has been fully seen.
                return False
            if not progressed:
                return False
            # Threshold test (step 2 of Algorithm 2).  t(χ̄) caps each
            # list's contribution by the query's own label multiplicity.
            t_chi = sum(
                min(float(count), last_freq[j])
                for j, (_, count) in enumerate(leaf_counts)
            )
            if low:
                omega = 2 * lq - (t_chi + last_size)
            else:
                omega = -lq - (t_chi - 2 * last_size)
            if omega >= heap.bound():
                return True

    halted_low = run_side(True, low_size)
    halted_high = run_side(False, high_size)

    entries = heap.items()
    exhaustive = not halted_low and not halted_high
    # A threshold halt requires a full heap, so len(entries) < k implies the
    # catalog itself has fewer than k stars: nothing lives outside the
    # result and the outside-SED floor is unbounded.
    kth: float = float(entries[-1][1]) if len(entries) == k else float("inf")
    return TopKResult(entries=entries, kth_sed=kth, exhaustive=exhaustive, accesses=accesses)


def brute_force_top_k(index: TwoLevelIndex, query: Star, k: int) -> List[Tuple[int, int]]:
    """Reference implementation: scan every live star (tests compare to this)."""
    scored = [
        (sid, star_edit_distance(query, index.catalog.star(sid)))
        for sid in index.catalog.live_sids()
    ]
    scored.sort(key=lambda p: (p[1], p[0]))
    return scored[:k]
