#!/usr/bin/env python3
"""Quickstart: index a handful of graphs and run a GED range query.

Run with::

    python examples/quickstart.py
"""

from repro import Graph, SegosIndex

def main() -> None:
    # A labelled, undirected graph: labels per vertex, then an edge list.
    # This is the paper's Figure 2 g1 (star representation abbcc/bab/...).
    g1 = Graph(
        ["a", "b", "b", "c", "c"],
        [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3), (2, 4)],
    )
    # ... and g2, which is g1 plus a "d" vertex wired into the middle.
    g2 = Graph(
        ["a", "b", "b", "c", "c", "d"],
        [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2), (2, 3), (2, 4), (2, 5)],
    )
    # Something unrelated.
    g3 = Graph(["x", "y", "z"], [(0, 1), (1, 2)])

    # Build the SEGOS two-level index over the database.
    db = SegosIndex({"g1": g1, "g2": g2, "g3": g3})
    print(f"indexed {len(db)} graphs, {db.distinct_star_count()} distinct stars")

    # Range query: which graphs are within GED 3 of g1?
    result = db.range_query(g1, tau=3, verify="exact")
    print(f"query=g1 tau=3 -> candidates={sorted(result.candidates)}")
    print(f"verified matches = {sorted(result.matches)}")

    # The engine reports how much work filtering saved.
    print(
        f"stats: accessed {result.stats.graphs_accessed} graphs for mapping "
        f"distances, pruned by {dict(result.stats.pruned_by)}"
    )

    # The index is dynamic: relabel a vertex of g3 and query again.
    db.relabel_vertex("g3", 0, "a")
    result = db.range_query(g1, tau=3, verify="exact")
    print(f"after relabel: matches = {sorted(result.matches)}")


if __name__ == "__main__":
    main()
