"""Exact graph edit distance via A* search (reference [19] of the paper).

Edit operations, all unit cost, matching the paper's model (Section II-A):
insertion, deletion, and substitution (relabel) of a vertex, and insertion
and deletion of an edge.  Edges are unlabelled, so there is no edge
substitution.

Exact GED is NP-hard; this implementation is meant for ground truth on the
small graphs used in tests and for the final verification step of
filter-and-verify pipelines.  Two safety valves keep it predictable:

* ``threshold`` — prune any state whose optimistic total exceeds it and
  report "greater than threshold" instead of the exact value, which is all a
  range query ever needs;
* ``budget`` — hard cap on expanded states, raising
  :class:`~repro.errors.SearchBudgetExceeded` beyond it.

The heuristic is the classic admissible label-multiset bound: remaining
vertices need at least ``max(|R1|, |R2|) − |Ψ(R1) ∩ Ψ(R2)|`` vertex edits,
and edges lying entirely inside the unmapped regions need at least
``|e1 − e2|`` edge edits (a g1-internal edge can only be preserved by a
g2-internal edge between images of unmapped vertices).
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SearchBudgetExceeded
from .model import Graph
from .star import multiset_intersection_size

DEFAULT_BUDGET = 2_000_000


def _label_bound(labels1: List[str], labels2: List[str]) -> int:
    """Admissible vertex-edit bound between two sorted label multisets."""
    common = multiset_intersection_size(labels1, labels2)
    return max(len(labels1), len(labels2)) - common


@dataclass(frozen=True)
class PreparedQuery:
    """The g1-only precomputation of :func:`graph_edit_distance`, hoisted.

    Verifying a candidate set runs one A* per candidate with the *same*
    query graph; preparing the query once and passing it to every run
    shares the vertex ordering, the suffix label multisets, and the
    suffix edge counts instead of rebuilding them cold per candidate
    (the Nass-style state reuse of the verification tier).  The derived
    arrays are positional over ``order1``, so a prepared query must only
    ever be used with the graph it was built from — ``graph`` is kept to
    enforce that by identity.
    """

    graph: Graph
    order1: List[int]
    labels1: List[str]
    suffix_labels1: List[List[str]]
    suffix_edges1: List[int]


def prepare_query(g1: Graph) -> PreparedQuery:
    """Precompute the query-side A* state shared across candidates."""
    # Order g1 vertices by descending degree: high-degree vertices constrain
    # the search most, so mapping them first prunes earlier.
    order1 = sorted(g1.vertices(), key=lambda v: -g1.degree(v))
    n1 = len(order1)
    labels1 = [g1.label(v) for v in order1]
    suffix_labels1: List[List[str]] = [sorted(labels1[i:]) for i in range(n1 + 1)]
    pos1 = {v: i for i, v in enumerate(order1)}
    suffix_edges1 = [0] * (n1 + 1)
    for i in range(n1 - 1, -1, -1):
        v = order1[i]
        later = sum(1 for n in g1.neighbors(v) if pos1[n] > i)
        suffix_edges1[i] = suffix_edges1[i + 1] + later
    return PreparedQuery(g1, order1, labels1, suffix_labels1, suffix_edges1)


def _record_expansions(counters: Optional[Dict[str, int]], expanded: int) -> None:
    if counters is not None:
        counters["expanded"] = counters.get("expanded", 0) + expanded


def graph_edit_distance(
    g1: Graph,
    g2: Graph,
    *,
    threshold: Optional[int] = None,
    budget: int = DEFAULT_BUDGET,
    counters: Optional[Dict[str, int]] = None,
    prepared: Optional[PreparedQuery] = None,
) -> Optional[int]:
    """Exact ``λ(g1, g2)``, or ``None`` if it exceeds *threshold*.

    *counters*, when given, accumulates search-effort telemetry: the
    number of A* states expanded is added under ``"expanded"`` on every
    exit path (success, threshold prune, and blown budget alike).

    *prepared* supplies the hoisted g1-only precomputation (see
    :func:`prepare_query`); it must have been built from this exact
    ``g1`` object.

    Examples
    --------
    >>> a = Graph(["a", "b"], [(0, 1)])
    >>> b = Graph(["a", "c"], [(0, 1)])
    >>> graph_edit_distance(a, b)
    1
    """
    if prepared is None or prepared.graph is not g1:
        prepared = prepare_query(g1)
    order1 = prepared.order1
    labels1 = prepared.labels1
    # Suffix label multisets of g1's remaining vertices, and edges of g1
    # entirely inside the suffix starting at position i.
    suffix_labels1 = prepared.suffix_labels1
    suffix_edges1 = prepared.suffix_edges1
    ids2 = list(g2.vertices())
    n1, n2 = len(order1), len(ids2)
    labels2 = [g2.label(v) for v in ids2]

    adj2 = {v: g2.neighbors(v) for v in ids2}

    def heuristic(depth: int, used_mask: int) -> int:
        rem2_labels = sorted(
            labels2[j] for j in range(n2) if not used_mask >> j & 1
        )
        h = _label_bound(suffix_labels1[depth], rem2_labels)
        rem2 = [ids2[j] for j in range(n2) if not used_mask >> j & 1]
        rem2_set = set(rem2)
        e2_internal = (
            sum(1 for v in rem2 for n in adj2[v] if n in rem2_set) // 2
        )
        h += abs(suffix_edges1[depth] - e2_internal)
        return h

    def completion_cost(mapping: Tuple[int, ...], used_mask: int) -> int:
        """Cost of inserting every unused g2 vertex and its loose edges."""
        unused = [ids2[j] for j in range(n2) if not used_mask >> j & 1]
        unused_set = set(unused)
        cost = len(unused)
        for u, v in g2.edges():
            if u in unused_set or v in unused_set:
                cost += 1
        return cost

    def extension_cost(
        depth: int, mapping: Tuple[int, ...], target: Optional[int]
    ) -> int:
        """Cost of mapping g1's vertex at *depth* onto *target* (or ε)."""
        v1 = order1[depth]
        cost = 0
        if target is None:
            cost += 1  # vertex deletion
        elif labels1[depth] != g2.label(target):
            cost += 1  # relabel
        target_nbrs = adj2[target] if target is not None else set()
        for earlier in range(depth):
            u1 = order1[earlier]
            mapped = mapping[earlier]
            e1 = g1.has_edge(v1, u1)
            e2 = (
                target is not None
                and mapped >= 0
                and ids2[mapped] in target_nbrs
            )
            if e1 != e2:
                cost += 1
        return cost

    if n1 == 0:
        # Nothing to map: insert all of g2.
        total = n2 + g2.size
        if threshold is not None and total > threshold:
            return None
        return total

    # A* over partial mappings.  State: (f, tiebreak, g_cost, depth,
    # used_mask, mapping) where mapping[i] is the g2 *position* or -1 for ε.
    # NOTE: states must not be deduplicated by (depth, used_mask) — two
    # different bijections over the same used set have different future edge
    # costs, so this is a plain tree-search A*.
    counter = itertools.count()
    start_h = heuristic(0, 0)
    if threshold is not None and start_h > threshold:
        return None
    heap: List[Tuple[int, int, int, int, int, Tuple[int, ...]]] = [
        (start_h, next(counter), 0, 0, 0, ())
    ]
    expanded = 0
    while heap:
        f, _, g_cost, depth, used_mask, mapping = heapq.heappop(heap)
        if threshold is not None and f > threshold:
            _record_expansions(counters, expanded)
            return None  # optimistic total already beyond τ: λ > τ
        if depth == n1:
            _record_expansions(counters, expanded)
            return g_cost  # completion already folded in when pushed
        expanded += 1
        if expanded > budget:
            _record_expansions(counters, expanded)
            raise SearchBudgetExceeded(expanded, budget)

        successors: List[Tuple[int, int, Optional[int]]] = []
        for j in range(n2):
            if used_mask >> j & 1:
                continue
            successors.append((used_mask | (1 << j), j, ids2[j]))
        successors.append((used_mask, -1, None))

        for new_mask, j, target in successors:
            step = extension_cost(depth, mapping, target)
            new_g = g_cost + step
            new_depth = depth + 1
            if new_depth == n1:
                total = new_g + completion_cost(mapping + (j,), new_mask)
                if threshold is None or total <= threshold:
                    heapq.heappush(
                        heap,
                        (total, next(counter), total, new_depth, new_mask, ()),
                    )
            else:
                h = heuristic(new_depth, new_mask)
                total = new_g + h
                if threshold is None or total <= threshold:
                    heapq.heappush(
                        heap,
                        (
                            total,
                            next(counter),
                            new_g,
                            new_depth,
                            new_mask,
                            mapping + (j,),
                        ),
                    )
    _record_expansions(counters, expanded)
    return None if threshold is not None else 0


def ged_within(
    g1: Graph,
    g2: Graph,
    tau: int,
    *,
    budget: int = DEFAULT_BUDGET,
    counters: Optional[Dict[str, int]] = None,
    prepared: Optional[PreparedQuery] = None,
) -> bool:
    """True iff ``λ(g1, g2) ≤ tau`` (threshold-pruned A*)."""
    return (
        graph_edit_distance(
            g1, g2, threshold=tau, budget=budget, counters=counters, prepared=prepared
        )
        is not None
    )


def trivial_lower_bound(g1: Graph, g2: Graph) -> int:
    """Cheap admissible bound: label-multiset diff + edge-count diff."""
    return _label_bound(g1.label_multiset(), g2.label_multiset()) + abs(
        g1.size - g2.size
    )


def naive_upper_bound(g1: Graph, g2: Graph) -> int:
    """Destroy-and-rebuild bound: delete all of g1, insert all of g2.

    Any sensible algorithm should stay at or below this; tests use it as a
    sanity ceiling.
    """
    return g1.order + g1.size + g2.order + g2.size
