"""Beyond the paper: filter precision against the exact GED oracle.

The paper reports candidate counts; with an exact oracle (feasible at our
scale) we can report *precision* — what fraction of each method's
candidates are true answers — and verify recall = 1 (soundness) on every
run.  This is the quantitative form of Section VI's filtering-power
discussion.
"""

from __future__ import annotations

import pytest

from repro.baselines import CStar, CTree, KappaAT, SegosMethod
from repro.bench import Series, format_table
from repro.bench.quality import ground_truth, measure_quality
from repro.datasets import aids_like, sample_queries

TAUS = (0, 1, 2, 3)


def test_filter_precision(benchmark, grid, report):
    # Small corpus with small graphs so the exact oracle stays cheap.
    data = aids_like(80, seed=2012, mean_order=8.0, stddev=2.0)
    queries = sample_queries(data, grid.query_count, seed=94, edits=1)
    methods = [
        SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h),
        CStar(data.graphs),
        KappaAT(data.graphs, kappa=2),
        CTree(data.graphs),
    ]
    precision = {m.name: Series(f"{m.name} precision") for m in methods}
    for tau in TAUS:
        truths = [ground_truth(data.graphs, q, tau) for q in queries]
        for method in methods:
            quality = measure_quality(
                method, data.graphs, queries, tau, truths=truths
            )
            assert quality.recall == 1.0, (method.name, tau)  # soundness
            precision[method.name].add(tau, quality.precision)
    report(
        "filter_precision",
        format_table(
            "Filter precision vs τ (aids-like, exact oracle)",
            "τ",
            list(TAUS),
            list(precision.values()),
            fmt="{:.3f}",
        ),
    )
    benchmark.pedantic(
        lambda: measure_quality(methods[0], data.graphs, queries[:1], 2),
        rounds=1,
        iterations=1,
    )
    # SEGOS must be at least as precise as κ-AT everywhere.
    for tau in TAUS:
        assert precision["SEGOS"].points[tau] >= precision["κ-AT"].points[tau]
