"""Figure 20: overhead of the TA top-k sub-unit stage vs k_s.

Paper: even in the worst case the TA stage costs under 0.1 % of the overall
response time.  Pure Python inflates constant factors, so we assert a loose
ceiling and report the measured share per k_s.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Series, format_table
from repro.core.engine import SegosIndex
from repro.datasets import sample_queries
from repro.graphs.star import decompose


def test_fig20_ta_overhead(benchmark, aids_dataset, grid, report):
    data = aids_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=71)
    engine = SegosIndex(data.graphs, k=grid.default_k, h=grid.default_h)
    tau = grid.default_tau

    share_series = Series("TA share of total")
    ta_series = Series("TA time (s)")
    for k in grid.k_values:
        ta_time = 0.0
        total_time = 0.0
        for query in queries:
            started = time.perf_counter()
            for star in decompose(query):
                engine.top_k_sub_units(star, k)
            ta_time += time.perf_counter() - started
            started = time.perf_counter()
            engine.range_query(query, tau=tau, k=k)
            total_time += time.perf_counter() - started
        ta_series.add(k, ta_time / len(queries))
        share_series.add(k, ta_time / total_time if total_time else 0.0)
    report(
        "fig20_ta_overhead",
        format_table(
            "Fig 20 (TA top-k overhead vs k_s, aids-like)",
            "k_s",
            list(grid.k_values),
            [ta_series, share_series],
        ),
    )
    benchmark.pedantic(
        lambda: [
            engine.top_k_sub_units(star, grid.default_k)
            for star in decompose(queries[0])
        ],
        rounds=1,
        iterations=1,
    )
    # Shape: the TA stage stays a small share of total query time.
    assert share_series.points[grid.default_k] < 0.5
