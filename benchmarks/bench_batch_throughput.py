"""Beyond the paper: batch-query throughput with a shared TA cache.

Figure 11 pipelines query *streams*; the batch API exploits the fact that
top-k sub-unit results depend only on the star, not the query graph, so
repeated vocabulary across a workload amortises the TA stage.  This bench
measures per-query time and TA searches for individual queries vs a batch
over a workload with heavy star overlap (mutated variants of few sources).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench import Series, format_table
from repro.core.engine import SegosIndex
from repro.datasets import sample_queries
from repro.graphs.generators import mutate


def test_batch_throughput(benchmark, aids_dataset, grid, report):
    data = aids_dataset.subset(grid.default_db_size)
    engine = SegosIndex(data.graphs, k=grid.default_k, h=grid.default_h)
    rng = random.Random(95)
    sources = sample_queries(data, 2, seed=95)
    # 10 queries derived from 2 sources: large star-vocabulary overlap.
    workload = [
        mutate(rng, rng.choice(sources), 1, data.labels) for _ in range(10)
    ]
    tau = grid.default_tau

    started = time.perf_counter()
    solo = [engine.range_query(q, tau=tau) for q in workload]
    solo_time = time.perf_counter() - started
    started = time.perf_counter()
    batch = engine.batch_range_query(workload, tau=tau)
    batch_time = time.perf_counter() - started
    for a, b in zip(solo, batch):
        assert set(a.candidates) == set(b.candidates)

    times = Series("total time (s)")
    searches = Series("TA searches")
    times.add("individual", solo_time)
    times.add("batch", batch_time)
    searches.add("individual", sum(r.stats.ta_searches for r in solo))
    searches.add("batch", sum(r.stats.ta_searches for r in batch))
    report(
        "batch_throughput",
        format_table(
            f"Batch throughput: shared TA cache (10 queries, τ={tau})",
            "mode",
            ["individual", "batch"],
            [times, searches],
        ),
    )
    benchmark.pedantic(
        lambda: engine.batch_range_query(workload[:3], tau=tau), rounds=1, iterations=1
    )
    assert searches.points["batch"] <= searches.points["individual"]
