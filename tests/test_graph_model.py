"""Unit tests for the labelled-graph data model."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    GraphError,
    VertexNotFound,
)
from repro.graphs.model import (
    Graph,
    database_max_degree,
    degree_histogram,
    normalization_factor,
)


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.order == 0
        assert g.size == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_label_list(self):
        g = Graph(["a", "b", "c"])
        assert g.order == 3
        assert g.label(0) == "a"
        assert g.label(2) == "c"

    def test_from_mapping(self):
        g = Graph({5: "x", 9: "y"}, [(5, 9)])
        assert g.order == 2
        assert g.has_edge(5, 9)
        assert g.label(9) == "y"

    def test_edges_are_undirected(self):
        g = Graph(["a", "b"], [(1, 0)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert list(g.edges()) == [(0, 1)]

    def test_single_vertex_constructor(self):
        g = Graph.single_vertex("z")
        assert g.order == 1
        assert g.label(0) == "z"

    def test_from_edge_list_constructor(self):
        g = Graph.from_edge_list("abc", [(0, 2)])
        assert g.size == 1
        assert g.label(1) == "b"


class TestValidation:
    def test_self_loop_rejected(self):
        g = Graph(["a"])
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        g = Graph(["a", "b"], [(0, 1)])
        with pytest.raises(DuplicateEdge):
            g.add_edge(1, 0)

    def test_duplicate_vertex_rejected(self):
        g = Graph(["a"])
        with pytest.raises(DuplicateVertex):
            g.add_vertex(0, "b")

    def test_negative_vertex_id_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_vertex(-1, "a")

    def test_edge_to_missing_vertex(self):
        g = Graph(["a"])
        with pytest.raises(VertexNotFound):
            g.add_edge(0, 7)

    def test_label_of_missing_vertex(self):
        with pytest.raises(VertexNotFound):
            Graph(["a"]).label(3)

    def test_remove_missing_edge(self):
        g = Graph(["a", "b"])
        with pytest.raises(EdgeNotFound):
            g.remove_edge(0, 1)

    def test_remove_missing_vertex(self):
        with pytest.raises(VertexNotFound):
            Graph(["a"]).remove_vertex(4)

    def test_degree_of_missing_vertex(self):
        with pytest.raises(VertexNotFound):
            Graph(["a"]).degree(2)

    def test_neighbors_of_missing_vertex(self):
        with pytest.raises(VertexNotFound):
            Graph(["a"]).neighbors(2)

    def test_relabel_missing_vertex(self):
        with pytest.raises(VertexNotFound):
            Graph(["a"]).relabel_vertex(3, "b")


class TestMutations:
    def test_add_remove_edge(self):
        g = Graph(["a", "b"])
        g.add_edge(0, 1)
        assert g.size == 1
        g.remove_edge(0, 1)
        assert g.size == 0
        assert not g.has_edge(0, 1)

    def test_remove_vertex_drops_incident_edges(self):
        g = Graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert g.order == 2
        assert g.size == 1
        assert g.has_edge(0, 2)

    def test_relabel(self):
        g = Graph(["a", "b"])
        g.relabel_vertex(0, "q")
        assert g.label(0) == "q"

    def test_vertex_ids_stable_after_removal(self):
        g = Graph(["a", "b", "c"], [(0, 1)])
        g.remove_vertex(1)
        assert set(g.vertices()) == {0, 2}
        g.add_vertex(7, "d")
        assert g.has_vertex(7)


class TestAccessors:
    def test_degree(self):
        g = Graph(["a", "b", "c"], [(0, 1), (0, 2)])
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_max_degree(self):
        g = Graph(["a", "b", "c"], [(0, 1), (0, 2)])
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_label_multiset_sorted(self):
        g = Graph(["c", "a", "b", "a"])
        assert g.label_multiset() == ["a", "a", "b", "c"]

    def test_neighbors_returns_copy(self):
        g = Graph(["a", "b"], [(0, 1)])
        nbrs = g.neighbors(0)
        nbrs.add(99)
        assert g.neighbors(0) == {1}

    def test_labels_returns_copy(self):
        g = Graph(["a"])
        labels = g.labels()
        labels[0] = "mutated"
        assert g.label(0) == "a"

    def test_len_and_contains(self):
        g = Graph(["a", "b"])
        assert len(g) == 2
        assert 1 in g
        assert 5 not in g


class TestDerivedViews:
    def test_copy_is_deep(self):
        g = Graph(["a", "b"], [(0, 1)])
        clone = g.copy()
        clone.remove_edge(0, 1)
        clone.relabel_vertex(0, "z")
        assert g.has_edge(0, 1)
        assert g.label(0) == "a"

    def test_equality_is_structural(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a", "b"], [(0, 1)])
        assert g1 == g2
        g2.relabel_vertex(1, "c")
        assert g1 != g2

    def test_equality_other_type(self):
        assert Graph(["a"]) != "not a graph"

    def test_hash_consistent_with_eq(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a", "b"], [(0, 1)])
        assert hash(g1) == hash(g2)

    def test_relabelled_compact(self):
        g = Graph({3: "a", 8: "b"}, [(3, 8)])
        compact, mapping = g.relabelled_compact()
        assert set(compact.vertices()) == {0, 1}
        assert compact.has_edge(mapping[3], mapping[8])
        assert compact.label(mapping[8]) == "b"

    def test_connected_components(self):
        g = Graph(["a", "b", "c", "d"], [(0, 1), (2, 3)])
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1], [2, 3]]

    def test_is_connected(self):
        assert Graph(["a", "b"], [(0, 1)]).is_connected()
        assert not Graph(["a", "b"]).is_connected()
        assert Graph().is_connected()

    def test_repr(self):
        assert "order=2" in repr(Graph(["a", "b"], [(0, 1)]))


class TestHelpers:
    def test_degree_histogram(self):
        g = Graph(["a", "b", "c"], [(0, 1), (0, 2)])
        assert degree_histogram(g) == {2: 1, 1: 2}

    def test_database_max_degree(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a", "b", "c"], [(0, 1), (0, 2)])
        assert database_max_degree([g1, g2]) == 2
        assert database_max_degree([]) == 0

    def test_normalization_factor_floor_of_four(self):
        # max{4, δ+1}: low-degree graphs are clamped to 4.
        g = Graph(["a", "b"], [(0, 1)])
        assert normalization_factor(g, g) == 4

    def test_normalization_factor_uses_larger_degree(self, paper_g2):
        g = Graph(["a"])
        assert normalization_factor(g, paper_g2) == paper_g2.max_degree() + 1

    def test_normalization_factor_database_max(self):
        g = Graph(["a"])
        assert normalization_factor(g, database_max=9) == 10
