"""Section VI-E's worst case: a mass of graphs similar to the query.

Paper: "we also investigate queries which have a mass of similar graphs in
the database, since in this special case our method may degrade to the
linear case of C-Star while taking extra overhead for the TA stage.
However, we find that the overhead can be negligible."  This bench plants
20 near-clones per query and compares SEGOS vs C-Star on access ratio and
time, plus the outlier extreme, where halting should clear almost the whole
database without Hungarian work.
"""

from __future__ import annotations

import pytest

from repro.baselines import CStar, SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.bench.workloads import clone_mass_workload, outlier_workload
from repro.datasets import aids_like


def test_worst_case_clone_mass(benchmark, grid, report):
    data = aids_like(grid.default_db_size, seed=2012, mean_order=grid.mean_order)
    tau = grid.default_tau
    shapes = {
        "clone-mass": clone_mass_workload(data, grid.query_count, seed=97),
        "outlier": outlier_workload(data, grid.query_count, seed=98),
    }
    times = Series("SEGOS time (s)")
    cstar_times = Series("C-Star time (s)")
    ratios = Series("SEGOS access ratio")
    candidates = Series("SEGOS cand#")
    for name, workload in shapes.items():
        segos = SegosMethod(workload.graphs, k=grid.default_k, h=grid.default_h)
        cstar = CStar(workload.graphs)
        run = run_queries(segos, workload.queries, tau)
        base = run_queries(cstar, workload.queries, tau)
        times.add(name, run.avg_time)
        cstar_times.add(name, base.avg_time)
        ratios.add(name, run.avg_accessed / len(workload.graphs))
        candidates.add(name, run.avg_candidates)
    report(
        "worst_case_clone_mass",
        format_table(
            f"Worst/best-case workloads (aids-like, τ={tau})",
            "workload",
            list(shapes),
            [times, cstar_times, ratios, candidates],
        ),
    )
    data2 = shapes["clone-mass"]
    segos = SegosMethod(data2.graphs, k=grid.default_k, h=grid.default_h)
    benchmark.pedantic(
        lambda: run_queries(segos, data2.queries[:1], tau), rounds=1, iterations=1
    )
    # Both extremes must stay strictly below C-Star's 100 % access, and the
    # outlier filter must be perfect (no candidates at all).  Note the
    # outlier access ratio is NOT necessarily the smaller one: with tiny
    # query stars every catalog star sits within a few SED units, so the
    # halting threshold ω ≤ Σ kth_j cannot clear τ·δ' and small-|q| queries
    # degrade towards the linear case — exactly the degradation §VI-E
    # discusses (the clone-mass side stays cheap because exact-match stars
    # make the aggregation bounds sharp for non-clones).
    assert ratios.points["outlier"] < 1.0
    assert ratios.points["clone-mass"] < 1.0
    assert candidates.points["outlier"] == 0