#!/usr/bin/env python
"""Shard scaling benchmark: scatter-gather batch throughput + pivot pruning.

Standalone like the other benches so CI can smoke it without the test
harness::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]

Writes ``BENCH_shard_scaling.json`` at the repository root with:

1. **scaling sweep** — batch range-query throughput and per-query p50
   latency over a shard-count sweep (1 = the monolithic baseline).  The
   worker count per cell is the *honest* machine-gated value
   (``effective_workers(cpu_count, shards=n)``): on a single-core
   container every cell degrades to the in-process serial scatter and the
   sweep measures pure scatter overhead, so ``cpu_count`` is recorded
   alongside every speedup and the ≥ 1× expectation only binds with
   ≥ 2 cores;
2. **pivot pruning** — a clone-mass / label-skew corpus (a mass of
   near-clone small rings plus a distant cluster of large uniform-label
   graphs, size-banded into different shards) where the per-shard pivot
   ranges rule the far cluster out: the recorded ``prune_rate`` must be
   nonzero, and pruned answers are asserted identical to unpruned ones.

``--mode unsharded`` / ``--mode sharded`` run only the gate cell (shards=1
vs shards=2 with pooled workers) under the identical ``time_batch_s`` key,
so two runs feed ``check_bench_regression.py`` directly: on a multi-core
runner the sharded batch must not be slower than the single-catalog batch.
``--check-speedup`` exits non-zero when the full sweep misses that bar on
multi-core hardware (single-core runs are exempt — there is nothing to
scatter onto).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import SegosIndex  # noqa: E402
from repro.graphs.model import Graph  # noqa: E402
from repro.perf.columnar import numpy_available  # noqa: E402
from repro.perf.parallel import effective_workers  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_shard_scaling.json"


def _best_of(repeats, fn):
    best, value = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def _random_graph(rng: random.Random, order: int, labels: str) -> Graph:
    graph = Graph([rng.choice(labels) for _ in range(order)])
    for u in range(order - 1):  # connected path backbone
        graph.add_edge(u, u + 1)
    for _ in range(order // 2):
        u, v = rng.randrange(order), rng.randrange(order)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def sweep_corpus(n: int, seed: int):
    """Size-diverse corpus: orders 5..10, so every shard band is live."""
    rng = random.Random(seed)
    return {
        f"g{i}": _random_graph(rng, 5 + (i % 6), "cnos") for i in range(n)
    }


def clustered_corpus(n: int, seed: int):
    """Clone mass + label skew: near-clone rings vs a far uniform cluster.

    Small cluster: order-7 rings over a skewed label pool (mostly carbon,
    chemistry-style).  Far cluster: order-12 'z' paths.  With
    ``shard_by="size"`` and 2 shards the clusters land in different shards
    (7 and 12 have different parities), so pivot ranges are tight and
    small-cluster queries prune the far shard outright.
    """
    rng = random.Random(seed)
    graphs = {}
    for i in range(n):
        if i % 3 == 2:
            graphs[f"far{i}"] = Graph(
                ["z"] * 12, [(j, j + 1) for j in range(11)]
            )
        else:
            labels = [rng.choice("cccn") for _ in range(7)]
            graphs[f"near{i}"] = Graph(
                labels, [(j, (j + 1) % 7) for j in range(7)]
            )
    return graphs


def sample_queries(graphs, count: int, seed: int):
    rng = random.Random(seed)
    picked = rng.sample(sorted(graphs), min(count, len(graphs)))
    queries = []
    for gid in picked:
        graph = graphs[gid].copy()
        graph.relabel_vertex(rng.randrange(graph.order), "o")  # perturb
        queries.append(graph)
    return queries


def _timed_batch(engine, queries, tau, *, workers, repeats):
    def run():
        kwargs = {} if workers is None else {"workers": workers}
        return engine.batch_range_query(queries, tau=tau, **kwargs)

    elapsed, results = _best_of(repeats, run)
    return elapsed, results


def bench_scaling(n: int, q: int, shard_counts, tau, repeats, seed: int):
    """Throughput/latency vs shard count, answers cross-checked per cell."""
    graphs = sweep_corpus(n, seed)
    queries = sample_queries(graphs, q, seed + 1)
    cpu = os.cpu_count() or 1
    cells = {}
    baseline_answers = None
    baseline_time = None
    for shards in shard_counts:
        engine = SegosIndex(graphs, shards=shards)
        workers = effective_workers(cpu, shards=shards if shards > 1 else None)
        elapsed, results = _timed_batch(
            engine,
            queries,
            tau,
            workers=workers if workers > 1 else None,
            repeats=repeats,
        )
        answers = [sorted(map(str, r.candidates)) for r in results]
        if baseline_answers is None:
            baseline_answers, baseline_time = answers, elapsed
        else:
            assert answers == baseline_answers, (
                f"shards={shards} changed answers"
            )
        latencies = sorted(r.elapsed for r in results)
        scattered = sum(r.stats.shards_scattered for r in results)
        pruned = sum(r.stats.shards_pruned for r in results)
        cells[f"shards_{shards}"] = {
            "shards": shards,
            "workers": workers,
            "time_batch_s": elapsed,
            "throughput_qps": len(queries) / elapsed if elapsed else None,
            "p50_latency_s": statistics.median(latencies),
            "shards_scattered": scattered,
            "shards_pruned": pruned,
            "prune_rate": pruned / (scattered + pruned)
            if scattered + pruned
            else 0.0,
            "speedup_vs_unsharded": (
                baseline_time / elapsed if elapsed and baseline_time else None
            ),
        }
    return {"graphs": n, "queries": q, "tau": tau, "cells": cells}


def bench_pruning(n: int, q: int, tau, repeats, seed: int):
    """Pivot pruning on the clone-mass corpus: rate + soundness."""
    graphs = clustered_corpus(n, seed + 7)
    near = [g for gid, g in sorted(graphs.items()) if gid.startswith("near")]
    rng = random.Random(seed + 8)
    queries = []
    for _ in range(q):
        graph = rng.choice(near).copy()
        graph.relabel_vertex(rng.randrange(graph.order), "n")
        queries.append(graph)

    unpruned = SegosIndex(graphs, shards=2)
    pruned = SegosIndex(graphs, shards=2, shard_pivots=2)
    time_unpruned, base_results = _timed_batch(
        unpruned, queries, tau, workers=None, repeats=repeats
    )
    time_pruned, pruned_results = _timed_batch(
        pruned, queries, tau, workers=None, repeats=repeats
    )
    assert [sorted(map(str, r.matches)) for r in base_results] == [
        sorted(map(str, r.matches)) for r in pruned_results
    ], "pivot pruning changed the answer set"
    scattered = sum(r.stats.shards_scattered for r in pruned_results)
    pruned_count = sum(r.stats.shards_pruned for r in pruned_results)
    rate = pruned_count / (scattered + pruned_count) if scattered + pruned_count else 0.0
    assert rate > 0.0, "clone-mass corpus produced zero pivot prunes"
    return {
        "graphs": len(graphs),
        "queries": len(queries),
        "tau": tau,
        "pivots_per_shard": 2,
        "time_unpruned_s": time_unpruned,
        "time_pruned_s": time_pruned,
        "prune_rate": rate,
        "speedup": time_unpruned / time_pruned if time_pruned else None,
    }


def bench_gate(n: int, q: int, tau, repeats, seed: int, mode: str):
    """One cell under the mode-independent ``time_batch_s`` key.

    ``unsharded`` runs the single-catalog batch with its defaulted worker
    knobs; ``sharded`` runs shards=2 with the machine-gated pooled worker
    count.  Identical keys let ``check_bench_regression.py`` compare the
    two JSONs directly.
    """
    graphs = sweep_corpus(n, seed)
    queries = sample_queries(graphs, q, seed + 1)
    cpu = os.cpu_count() or 1
    if mode == "sharded":
        engine = SegosIndex(graphs, shards=2)
        workers = effective_workers(cpu, shards=2)
    else:
        engine = SegosIndex(graphs)
        workers = 1
    elapsed, results = _timed_batch(
        engine,
        queries,
        tau,
        workers=workers if workers > 1 else None,
        repeats=repeats,
    )
    return {
        "mode": mode,
        "graphs": n,
        "queries": q,
        "workers": workers,
        "time_batch_s": elapsed,
        "throughput_qps": len(queries) / elapsed if elapsed else None,
        "candidates": sum(len(r.candidates) for r in results),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, CI import/sanity check"
    )
    parser.add_argument(
        "--mode",
        choices=("full", "unsharded", "sharded"),
        default="full",
        help="'unsharded'/'sharded' run only the gate cell under identical "
        "time_* keys, for check_bench_regression.py",
    )
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help="exit 1 when shards=2 misses batch throughput parity on "
        "multi-core hardware (ignored with --smoke or on 1 core)",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON report path"
    )
    args = parser.parse_args(argv)

    n, q = (40, 4) if args.smoke else (240, 12)
    gate_n, gate_q = (60, 6) if args.smoke else (240, 16)
    shard_counts = [1, 2] if args.smoke else [1, 2, 4]
    tau = 2.0
    repeats = max(1, args.repeats)

    report = {
        "meta": {
            "bench": "shard_scaling",
            "smoke": args.smoke,
            "mode": args.mode,
            "seed": args.seed,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": numpy_available(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
    }
    if args.mode == "full":
        report["scaling"] = bench_scaling(
            n, q, shard_counts, tau, repeats, args.seed
        )
        report["pruning"] = bench_pruning(n, q, tau, repeats, args.seed)
    else:
        report["gate"] = bench_gate(
            gate_n, gate_q, tau, repeats, args.seed, args.mode
        )

    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)

    cpu = os.cpu_count() or 1
    if (
        args.check_speedup
        and not args.smoke
        and args.mode == "full"
        and cpu >= 2
    ):
        cell = report["scaling"]["cells"].get("shards_2")
        if cell and (cell["speedup_vs_unsharded"] or 0.0) < 1.0:
            print(
                f"FAIL: shards=2 batch ran {cell['speedup_vs_unsharded']:.2f}x "
                f"the single-catalog throughput on {cpu} cores (bar: >= 1x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
