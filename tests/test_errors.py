"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.GraphError,
            errors.IndexCorruptionError,
            errors.ParseError,
            errors.SearchBudgetExceeded,
            errors.GraphNotIndexed,
            errors.GraphAlreadyIndexed,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(errors.VertexNotFound, KeyError)
        assert issubclass(errors.EdgeNotFound, KeyError)
        assert issubclass(errors.GraphNotIndexed, KeyError)

    def test_duplicate_errors_are_value_errors(self):
        assert issubclass(errors.DuplicateVertex, ValueError)
        assert issubclass(errors.DuplicateEdge, ValueError)
        assert issubclass(errors.GraphAlreadyIndexed, ValueError)

    def test_parse_error_carries_line(self):
        err = errors.ParseError("bad record", 17)
        assert err.line_number == 17
        assert "line 17" in str(err)

    def test_parse_error_without_line(self):
        assert errors.ParseError("bad").line_number is None

    def test_vertex_not_found_payload(self):
        assert errors.VertexNotFound(5).vertex == 5

    def test_edge_not_found_payload(self):
        assert errors.EdgeNotFound(1, 2).edge == (1, 2)

    def test_budget_payload(self):
        err = errors.SearchBudgetExceeded(150, 100)
        assert err.expanded == 150
        assert err.budget == 100
