"""Sharded scatter-gather execution (repro.perf.shard + ShardedExecutor).

The contract under test is *decomposition invariance*: partitioning the
catalog into shards must never change what a query answers — candidate
membership, exact matches, kNN neighbours, join pairs and subsearch
answers are all identical to the monolithic path, for every shard count,
with and without pivot pruning, serially and through the worker pool.
"""

from __future__ import annotations

import pathlib
import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.core.engine import SegosIndex
from repro.core.explain import explain_range_query
from repro.core.join import similarity_self_join
from repro.core.knn import knn_query
from repro.core.persistence import save_index
from repro.core.pipeline import PipelinedSegos
from repro.core.plan import merge_shard_results
from repro.core.subsearch import SubgraphSearch
from repro.errors import StaleSidecarError
from repro.graphs.model import Graph
from repro.perf.parallel import effective_workers
from repro.perf.shard import (
    PivotRange,
    build_sharded_view,
    persist_shards,
    shard_of,
    shard_path,
    sharded_view,
)

LABELS = "abc"

labels_st = st.sampled_from(LABELS)


@st.composite
def graph_st(draw, max_order=4):
    order = draw(st.integers(min_value=1, max_value=max_order))
    graph = Graph([draw(labels_st) for _ in range(order)])
    for u in range(order):
        for v in range(u + 1, order):
            if draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


corpus_st = st.lists(graph_st(), min_size=2, max_size=6)


def ring(n: int, labels: str = "abc") -> Graph:
    return Graph(
        [labels[i % len(labels)] for i in range(n)],
        [(i, (i + 1) % n) for i in range(n)],
    )


def build_engine(graphs, **config) -> SegosIndex:
    engine = SegosIndex(**config)
    for i, graph in enumerate(graphs):
        engine.add(f"g{i}", graph)
    return engine


def mixed_corpus():
    return [ring(3 + (i % 4)) for i in range(12)]


def canonical(result):
    """Order-insensitive fingerprint of a query result."""
    return (sorted(map(str, result.candidates)), sorted(map(str, result.matches)))


# ----------------------------------------------------------------------
# Partition + view mechanics
# ----------------------------------------------------------------------
class TestPartition:
    def test_single_shard_is_identity(self):
        g = ring(3)
        assert shard_of("x", g, shards=1) == 0
        assert shard_of("x", g, shards=1, shard_by="hash") == 0

    def test_size_banding_colocates_equal_orders(self):
        a, b = ring(4), ring(4, "zzz")
        assert shard_of("a", a, shards=3) == shard_of("b", b, shards=3)

    def test_hash_is_stable_and_in_range(self):
        g = ring(3)
        first = shard_of("g17", g, shards=5, shard_by="hash")
        assert first == shard_of("g17", g, shards=5, shard_by="hash")
        assert 0 <= first < 5

    def test_view_covers_database_disjointly(self):
        engine = build_engine(mixed_corpus())
        view = build_sharded_view(engine, engine.config.override(shards=3))
        seen = [gid for shard in view.shards for gid in shard.gids]
        assert sorted(seen) == sorted(engine.gids())
        assert len(seen) == len(set(seen))

    def test_view_cached_until_mutation(self):
        engine = build_engine(mixed_corpus(), shards=2)
        first = sharded_view(engine)
        assert sharded_view(engine) is first
        engine.add("extra", ring(5))
        rebuilt = sharded_view(engine)
        assert rebuilt is not first
        assert any("extra" in shard.gids for shard in rebuilt.shards)

    def test_view_tokens_are_unique(self):
        engine = build_engine(mixed_corpus())
        one = build_sharded_view(engine, engine.config.override(shards=2))
        two = build_sharded_view(engine, engine.config.override(shards=2))
        assert one.token != two.token

    def test_live_shards_drop_empty_partitions(self):
        # Orders 3..6 mod 5 leave shard 2 empty (no order ≡ 2 mod 5).
        engine = build_engine(mixed_corpus())
        view = build_sharded_view(engine, engine.config.override(shards=5))
        live = {shard.shard_id for shard in view.live_shards()}
        assert 2 not in live and live


# ----------------------------------------------------------------------
# Decomposition invariance (hypothesis)
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    @settings(
        deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st(), shards=st.sampled_from([1, 2, 5]))
    def test_range_query_invariant(self, corpus, query, shards):
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=shards)
        expected = base.range_query(query, tau=2.0, verify="exact")
        got = sharded.range_query(query, tau=2.0, verify="exact")
        assert canonical(got) == canonical(expected)
        assert got.verified

    @settings(
        deadline=None, max_examples=8, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st(), shards=st.sampled_from([2, 5]))
    def test_pivot_pruning_never_drops_answers(self, corpus, query, shards):
        base = build_engine(corpus)
        pruned = build_engine(corpus, shards=shards, shard_pivots=2)
        expected = base.range_query(query, tau=1.0, verify="exact")
        got = pruned.range_query(query, tau=1.0, verify="exact")
        # Pruning may shrink the candidate list (that is its job) but the
        # exact answer set must survive untouched.
        assert sorted(map(str, got.matches)) == sorted(map(str, expected.matches))
        assert set(map(str, got.candidates)) <= set(map(str, expected.candidates))

    @settings(
        deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, queries=st.lists(graph_st(), min_size=1, max_size=3))
    def test_batch_invariant(self, corpus, queries):
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=2)
        expected = base.batch_range_query(queries, tau=2.0, verify="exact")
        got = sharded.batch_range_query(queries, tau=2.0, verify="exact")
        assert [canonical(r) for r in got] == [canonical(r) for r in expected]

    @settings(
        deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st())
    def test_pipelined_invariant(self, corpus, query):
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=2)
        expected = PipelinedSegos(base).range_query(query, tau=2.0, verify="exact")
        got = PipelinedSegos(sharded).range_query(query, tau=2.0, verify="exact")
        assert canonical(got) == canonical(expected)

    @settings(
        deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st())
    def test_knn_invariant(self, corpus, query):
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=2)
        expected = knn_query(base, query, k=2)
        got = knn_query(sharded, query, k=2)
        assert [(str(g), d) for g, d in got.neighbours] == [
            (str(g), d) for g, d in expected.neighbours
        ]

    @settings(
        deadline=None, max_examples=5, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st)
    def test_join_invariant(self, corpus):
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=2)
        expected = similarity_self_join(base, tau=1.0, verify="exact")
        got = similarity_self_join(sharded, tau=1.0, verify="exact")
        assert {tuple(map(str, p)) for p in got.matches} == {
            tuple(map(str, p)) for p in expected.matches
        }

    @settings(
        deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st(), shards=st.sampled_from([2, 5]))
    def test_subsearch_invariant(self, corpus, query, shards):
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=shards)
        expected = SubgraphSearch(base).range_query(query, tau=1.0, verify="exact")
        got = SubgraphSearch(sharded).range_query(query, tau=1.0, verify="exact")
        assert canonical(got) == canonical(expected)

    def test_sharded_order_is_deterministic_across_shard_counts(self):
        corpus = mixed_corpus()
        orders = []
        for shards in (2, 3, 5):
            engine = build_engine(corpus, shards=shards)
            result = engine.range_query(ring(4), tau=3.0)
            orders.append(list(map(str, result.candidates)))
        assert orders[0] == orders[1] == orders[2]


# ----------------------------------------------------------------------
# Pivot pruning specifics
# ----------------------------------------------------------------------
class TestPivotPruning:
    def clustered_engine(self, **config):
        # Two well-separated clusters that size-band into different
        # shards: tiny labelled rings (order 3) vs long 'z' paths
        # (order 8, 8 ≢ 3 mod 2).
        engine = SegosIndex(shards=2, shard_pivots=2, **config)
        far = Graph(["z"] * 8, [(i, i + 1) for i in range(7)])
        for i in range(4):
            engine.add(f"s{i}", ring(3))
            engine.add(f"b{i}", far)
        return engine

    def test_distant_shard_is_pruned(self):
        engine = self.clustered_engine()
        result = engine.range_query(ring(3), tau=0.5, verify="exact")
        assert result.stats.shards_pruned == 1
        assert result.stats.shards_scattered == 1
        assert sorted(map(str, result.matches)) == ["s0", "s1", "s2", "s3"]

    def test_pruned_stats_render_in_summary_and_explain(self):
        engine = self.clustered_engine()
        result = engine.range_query(ring(3), tau=0.5)
        assert "shards: 1 scattered, 1 pruned" in result.stats.summary()
        explanation = explain_range_query(engine, ring(3), tau=0.5)
        assert "shard stage: 1 shards scattered, 1 pruned" in explanation.render()

    def test_generous_tau_prunes_nothing(self):
        engine = self.clustered_engine()
        result = engine.range_query(ring(3), tau=50.0)
        assert result.stats.shards_pruned == 0
        assert result.stats.shards_scattered == 2

    def test_zero_pivots_never_prune(self):
        engine = build_engine(mixed_corpus(), shards=3)
        view = sharded_view(engine)
        assert all(shard.pivots == () for shard in view.shards)
        assert view.skips(ring(3), 0.0) == set()

    def test_query_floor_zero_without_pivots(self):
        engine = build_engine(mixed_corpus(), shards=2)
        shard = sharded_view(engine).live_shards()[0]
        assert shard.query_floor(ring(3)) == 0.0

    def test_pivot_ranges_are_conservative(self):
        from repro.matching.mapping import bounds

        engine = build_engine(mixed_corpus(), shards=2, shard_pivots=2)
        for shard in sharded_view(engine).live_shards():
            for pivot in shard.pivots:
                pivot_graph = shard.engine.graph(pivot.gid)
                for gid in shard.gids:
                    l_m, u_m, _ = bounds(pivot_graph, shard.engine.graph(gid))
                    assert pivot.lo <= l_m
                    assert pivot.hi >= float(u_m)

    def test_subsearch_ignores_pivots(self):
        # Pivot floors are unsound for the (non-metric) subgraph distance;
        # the sub-distance path must scatter to every live shard.
        engine = self.clustered_engine()
        result = SubgraphSearch(engine).range_query(ring(3), tau=0.0, verify="exact")
        assert result.stats.shards_pruned == 0
        assert result.stats.shards_scattered == 2


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------
class TestMerge:
    def test_candidates_canonicalised_to_insertion_order(self):
        engine = build_engine(mixed_corpus())
        shard_results = [
            engine.range_query(ring(4), tau=3.0),
        ]
        merged = merge_shard_results(
            engine, shard_results, verify="none", shards_scattered=1, shards_pruned=0
        )
        assert merged.candidates == [
            gid for gid in engine.gids() if gid in set(shard_results[0].candidates)
        ]

    def test_empty_scatter_yields_empty_result(self):
        engine = build_engine(mixed_corpus())
        merged = merge_shard_results(
            engine, [], verify="none", shards_scattered=0, shards_pruned=2
        )
        assert merged.candidates == [] and merged.matches == set()
        assert not merged.verified
        assert merged.stats.shards_pruned == 2

    def test_all_shards_pruned_still_answers(self):
        engine = SegosIndex(shards=2, shard_pivots=1)
        engine.add("a", ring(3))
        engine.add("b", Graph(["z"] * 8, [(i, i + 1) for i in range(7)]))
        result = engine.range_query(Graph(["q"] * 20), tau=0.0, verify="exact")
        assert result.matches == set()

    def test_validation_hoisted_above_scatter(self):
        engine = build_engine(mixed_corpus(), shards=2)
        with pytest.raises(ValueError):
            engine.range_query(Graph([]), tau=1.0)
        with pytest.raises(ValueError):
            engine.range_query(ring(3), tau=-1.0)
        with pytest.raises(ValueError):
            engine.range_query(ring(3), tau=1.0, verify="sometimes")


# ----------------------------------------------------------------------
# Pool scatter + persistence transports
# ----------------------------------------------------------------------
class TestPoolScatter:
    QUERIES = [ring(3), ring(4), ring(5), ring(6)]

    def test_pool_scatter_matches_serial(self):
        corpus = mixed_corpus()
        base = build_engine(corpus)
        sharded = build_engine(corpus, shards=2)
        expected = base.batch_range_query(self.QUERIES, tau=2.0, verify="exact")
        got = sharded.batch_range_query(
            self.QUERIES, tau=2.0, verify="exact", workers=2
        )
        assert [canonical(r) for r in got] == [canonical(r) for r in expected]
        assert got[0].stats.shards_scattered == 2

    def test_pool_scatter_disk_transport(self, tmp_path):
        corpus = mixed_corpus()
        sharded = build_engine(corpus, shards=2)
        db = tmp_path / "db.segos"
        save_index(sharded, db)
        persist_shards(sharded, str(db) + ".segosx")
        view = sharded_view(sharded)
        assert all(
            shard.engine.disk_handle() is not None for shard in view.live_shards()
        )
        expected = build_engine(corpus).batch_range_query(
            self.QUERIES, tau=2.0, verify="exact"
        )
        got = sharded.batch_range_query(
            self.QUERIES, tau=2.0, verify="exact", workers=2
        )
        assert [canonical(r) for r in got] == [canonical(r) for r in expected]

    def test_persist_shards_writes_manifest(self, tmp_path):
        engine = build_engine(mixed_corpus(), shards=2, shard_pivots=1)
        base = tmp_path / "db.segosx"
        paths = persist_shards(engine, str(base))
        assert paths == [shard_path(str(base), 0), shard_path(str(base), 1)]
        import json

        manifest = json.loads((tmp_path / "db.segosx.shards.json").read_text())
        assert manifest["shards"] == 2
        assert sum(entry["graphs"] for entry in manifest["layout"].values()) == len(
            engine.gids()
        )
        assert all(entry["pivots"] for entry in manifest["layout"].values())

    def test_lost_shards_salvaged_serially_and_loudly(self):
        corpus = mixed_corpus()
        expected = build_engine(corpus).batch_range_query(
            self.QUERIES, tau=2.0, verify="exact"
        )
        crashing = build_engine(
            corpus,
            shards=2,
            fault_plan="worker.crash:times=8",
            retry_backoff=0.0,
            max_pool_retries=1,
        )
        got = crashing.batch_range_query(
            self.QUERIES, tau=2.0, verify="exact", workers=2
        )
        assert [canonical(r) for r in got] == [canonical(r) for r in expected]
        assert any(
            e.point == "worker.crash" and e.stage == "shard-batch"
            for e in got[0].stats.degradations
        )

    def test_unpicklable_shard_falls_back_serially(self, monkeypatch):
        import pickle as _pickle

        from repro.perf import parallel

        corpus = mixed_corpus()
        sharded = build_engine(corpus, shards=2)

        def refuse(obj, protocol=None):
            raise _pickle.PicklingError("engine cannot travel")

        monkeypatch.setattr(parallel.pickle, "dumps", refuse)
        got = sharded.batch_range_query(
            self.QUERIES, tau=2.0, verify="exact", workers=2
        )
        expected = build_engine(corpus).batch_range_query(
            self.QUERIES, tau=2.0, verify="exact"
        )
        assert [canonical(r) for r in got] == [canonical(r) for r in expected]
        assert any(
            e.point == "pickle.shard" for e in got[0].stats.degradations
        )


# ----------------------------------------------------------------------
# Worker gating (satellite 1)
# ----------------------------------------------------------------------
class TestEffectiveWorkers:
    def test_single_core_falls_through_to_serial(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        assert effective_workers(8) == 1
        assert effective_workers(8, shards=4) == 1

    def test_multi_core_caps_at_cpu_and_shards(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        assert effective_workers(16) == 8
        assert effective_workers(4) == 4
        assert effective_workers(16, shards=2) == 2
        assert effective_workers(1, shards=4) == 1

    def test_cpu_count_none_is_serial(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert effective_workers(8) == 1

    def test_defaulted_batch_workers_gated_on_one_core(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        calls = []
        engine = build_engine(mixed_corpus(), batch_workers=4)
        original = parallel.parallel_batch_range_query

        def spy(*args, **kwargs):
            calls.append(kwargs.get("workers"))
            return original(*args, **kwargs)

        monkeypatch.setattr(
            "repro.core.engine.parallel_batch_range_query", spy
        )
        engine.batch_range_query([ring(3), ring(4)], tau=1.0)
        assert calls == []  # gate resolved to serial; the pool never ran

    def test_explicit_workers_bypass_the_gate(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        engine = build_engine(mixed_corpus())
        results = engine.batch_range_query([ring(3), ring(4)], tau=1.0, workers=2)
        assert len(results) == 2


# ----------------------------------------------------------------------
# StaleSidecarError detail (satellite 2)
# ----------------------------------------------------------------------
class TestStaleSidecarDetails:
    def test_message_carries_structured_details(self):
        err = StaleSidecarError(
            "worker attached a different state",
            path="/tmp/db.segosx",
            expected_generation=4,
            found_generation=2,
            expected_sha=b"\xab" * 32,
            found_sha="deadbeef" * 8,
        )
        text = str(err)
        assert "sidecar='/tmp/db.segosx'" in text
        assert "generation expected=4 found=2" in text
        assert "sha expected=abababababab…" in text
        assert "found=deadbeefdead…" in text
        assert err.path == "/tmp/db.segosx"
        assert err.expected_generation == 4
        assert err.found_generation == 2

    def test_plain_message_unchanged_without_details(self):
        assert str(StaleSidecarError("stale")) == "stale"

    def test_lazy_store_sha_mismatch_names_the_file(self, tmp_path):
        from repro.graphs import io as gio
        from repro.perf.diskcat import LazyGraphStore

        path = tmp_path / "corpus.txt"
        gio.save(path, [("g", ring(3))])
        with pytest.raises(StaleSidecarError) as info:
            LazyGraphStore(path, expected_sha=b"\x00" * 32)
        text = str(info.value)
        assert str(path) in text
        assert "sha expected=000000000000…" in text


# ----------------------------------------------------------------------
# Ownership guard (satellite 6): shard partitions are built in one place
# ----------------------------------------------------------------------
class TestShardOwnershipGuard:
    def test_shard_of_only_referenced_in_shard_module(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.name == "shard.py" and path.parent.name == "perf":
                continue
            if re.search(r"\bshard_of\b", path.read_text()):
                offenders.append(str(path.relative_to(src)))
        assert offenders == [], (
            "shard partitions constructed outside repro.perf.shard: "
            f"{offenders}"
        )


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
class TestShardConfig:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_SHARD_BY", "hash")
        monkeypatch.setenv("REPRO_SHARD_PIVOTS", "3")
        config = EngineConfig.from_env()
        assert config.shards == 4
        assert config.shard_by == "hash"
        assert config.shard_pivots == 3

    def test_unknown_shard_by_degrades_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BY", "astrology")
        assert EngineConfig.from_env().shard_by == "auto"

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(shards=0)
        with pytest.raises(ValueError):
            EngineConfig(shard_by="modulo")
        with pytest.raises(ValueError):
            EngineConfig(shard_pivots=-1)

    def test_constructor_knobs_reach_config(self):
        engine = SegosIndex(shards=3, shard_by="hash", shard_pivots=2)
        assert engine.config.shards == 3
        assert engine.config.shard_by == "hash"
        assert engine.config.shard_pivots == 2
