"""Benchmark support: parameter grids, timers, and report tables."""

from .charts import render_chart
from .harness import (
    MethodRun,
    Series,
    average_stats,
    format_table,
    run_queries,
    time_build,
)
from .params import ParamGrid, SCALED_DEFAULTS

__all__ = [
    "MethodRun",
    "ParamGrid",
    "SCALED_DEFAULTS",
    "Series",
    "average_stats",
    "format_table",
    "render_chart",
    "run_queries",
    "time_build",
]
