"""Property-based tests (hypothesis) for the core invariants of DESIGN.md §5."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

try:  # only TestHungarianProperties needs these; the no-numpy leg skips it
    import numpy as np
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover
    np = None

from repro.core.index import TwoLevelIndex
from repro.core.ta_search import brute_force_top_k, top_k_stars
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.model import Graph
from repro.graphs.star import (
    Star,
    decompose,
    multiset_intersection_size,
    sed_via_common_leaves,
    star_edit_distance,
)
from repro.matching.hungarian import hungarian
from repro.matching.mapping import (
    DynamicMappingDistance,
    bounds,
    mapping_distance,
)

LABELS = "abcd"

labels_st = st.sampled_from(LABELS)
leaves_st = st.lists(labels_st, max_size=6)
star_st = st.builds(Star, labels_st, leaves_st)


@st.composite
def graph_st(draw, max_order=5):
    order = draw(st.integers(min_value=1, max_value=max_order))
    labels = [draw(labels_st) for _ in range(order)]
    graph = Graph(labels)
    for u in range(order):
        for v in range(u + 1, order):
            if draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


class TestStarProperties:
    @given(star_st, star_st)
    def test_sed_symmetric(self, s1, s2):
        assert star_edit_distance(s1, s2) == star_edit_distance(s2, s1)

    @given(star_st)
    def test_sed_identity(self, s):
        assert star_edit_distance(s, s) == 0

    @given(star_st, star_st)
    def test_sed_positive_on_difference(self, s1, s2):
        if s1 != s2:
            assert star_edit_distance(s1, s2) >= 1

    @given(star_st, star_st, star_st)
    def test_sed_triangle_inequality(self, s1, s2, s3):
        assert star_edit_distance(s1, s3) <= star_edit_distance(
            s1, s2
        ) + star_edit_distance(s2, s3)

    @given(star_st, star_st)
    def test_equation_one_equals_lemma_one(self, query, other):
        psi = multiset_intersection_size(query.leaves, other.leaves)
        assert sed_via_common_leaves(
            query, other.root, other.leaf_size, psi
        ) == star_edit_distance(query, other)

    @given(leaves_st, leaves_st)
    def test_multiset_intersection_commutative(self, a, b):
        a, b = sorted(a), sorted(b)
        assert multiset_intersection_size(a, b) == multiset_intersection_size(b, a)


@pytest.mark.skipif(np is None, reason="needs numpy + scipy")
class TestHungarianProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_matches_scipy(self, n, extra, rnd):
        m = n + extra
        matrix = [[rnd.randint(0, 15) for _ in range(m)] for _ in range(n)]
        total, _ = hungarian(matrix)
        arr = np.array(matrix)
        rows, cols = linear_sum_assignment(arr)
        assert total == float(arr[rows, cols].sum())


class TestMappingProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(), graph_st())
    def test_bounds_sandwich_exact_ged(self, g1, g2):
        exact = graph_edit_distance(g1, g2)
        l_m, u_m, mu = bounds(g1, g2)
        assert l_m <= exact + 1e-9
        assert exact <= u_m

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(), graph_st(), st.randoms(use_true_random=False))
    def test_partial_mapping_monotone_lower_bound(self, g1, g2, rnd):
        mu = mapping_distance(g1, g2)
        stars2 = decompose(g2)
        rnd.shuffle(stars2)
        dyn = DynamicMappingDistance(decompose(g1), len(stars2))
        previous = 0.0
        for star in stars2:
            value = dyn.reveal(star)
            assert previous - 1e-9 <= value <= mu + 1e-9
            previous = value
        assert abs(dyn.finalize() - mu) < 1e-9

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(), graph_st())
    def test_mapping_distance_symmetric(self, g1, g2):
        assert mapping_distance(g1, g2) == mapping_distance(g2, g1)


class TestTASearchProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(graph_st(max_order=4), min_size=1, max_size=6),
        star_st,
        st.integers(min_value=1, max_value=5),
    )
    def test_top_k_matches_brute_force(self, graphs, query, k):
        index = TwoLevelIndex()
        for i, g in enumerate(graphs):
            index.add_graph(f"g{i}", g, decompose(g))
        got = top_k_stars(index, query, k)
        expected = brute_force_top_k(index, query, k)
        assert [sed for _, sed in got.entries] == [sed for _, sed in expected]


class TestGedProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(max_order=4), graph_st(max_order=4))
    def test_ged_symmetric(self, g1, g2):
        assert graph_edit_distance(g1, g2) == graph_edit_distance(g2, g1)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(max_order=4), graph_st(max_order=4), graph_st(max_order=4))
    def test_ged_triangle_inequality(self, g1, g2, g3):
        d13 = graph_edit_distance(g1, g3)
        d12 = graph_edit_distance(g1, g2)
        d23 = graph_edit_distance(g2, g3)
        assert d13 <= d12 + d23
