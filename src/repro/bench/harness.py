"""Workload runners and plain-text report tables for the benchmarks.

Each benchmark file regenerates one of the paper's figures as a table of
series (one row per x-value, one column group per method), printed to stdout
so ``pytest benchmarks/ --benchmark-only -s`` shows the paper-shaped data
alongside pytest-benchmark's timing output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.base import FilterResult, RangeQueryMethod
from ..graphs.model import Graph


@dataclass
class MethodRun:
    """Averaged outcome of a method over a query workload."""

    method: str
    avg_time: float
    avg_candidates: float
    avg_accessed: float
    avg_confirmed: float = 0.0


@dataclass
class Series:
    """One line of a figure: y-values indexed by the sweep variable."""

    label: str
    points: Dict[object, float] = field(default_factory=dict)

    def add(self, x: object, y: float) -> None:
        self.points[x] = y


def run_queries(
    method: RangeQueryMethod, queries: Sequence[Graph], tau: float
) -> MethodRun:
    """Execute a query workload and average the interesting counters."""
    if not queries:
        raise ValueError("empty query workload")
    total_time = 0.0
    total_candidates = 0
    total_accessed = 0
    total_confirmed = 0
    for query in queries:
        result = method.timed_range_query(query, tau)
        total_time += result.elapsed
        total_candidates += len(result.candidates)
        total_accessed += result.graphs_accessed
        total_confirmed += len(result.confirmed)
    n = len(queries)
    return MethodRun(
        method=method.name,
        avg_time=total_time / n,
        avg_candidates=total_candidates / n,
        avg_accessed=total_accessed / n,
        avg_confirmed=total_confirmed / n,
    )


def time_build(factory: Callable[[], RangeQueryMethod]) -> Tuple[RangeQueryMethod, float]:
    """Construct a method (its index build) under a wall-clock timer."""
    started = time.perf_counter()
    method = factory()
    return method, time.perf_counter() - started


def average_stats(values: Sequence[float]) -> float:
    """Mean of a non-empty sequence."""
    if not values:
        raise ValueError("no values to average")
    return sum(values) / len(values)


def format_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[Series],
    *,
    fmt: str = "{:.4g}",
    chart: bool = True,
) -> str:
    """Render series as a fixed-width text table (one row per x-value).

    With ``chart`` (the default) an ASCII bar chart of the same series is
    appended, so the figure's *shape* is visible directly in the report.
    """
    headers = [x_label] + [s.label for s in series]
    rows: List[List[str]] = []
    for x in x_values:
        row = [str(x)]
        for s in series:
            value = s.points.get(x)
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if chart and rows:
        from .charts import render_chart  # local import to avoid a cycle

        lines.append("")
        lines.append(render_chart(title, x_values, series))
    return "\n".join(lines)
