#!/usr/bin/env python3
"""Near-duplicate procedure detection over PDG-like graphs (Linux scenario).

Program dependence graphs of cloned-and-tweaked procedures have tiny graph
edit distances.  This example plants clone families inside a PDG-like corpus
and uses SEGOS range queries to pull each family back out.

Run with::

    python examples/clone_detection.py
"""

import random

from repro import SegosIndex
from repro.datasets import pdg_like
from repro.graphs.generators import mutate


def main() -> None:
    data = pdg_like(150, seed=3, mean_order=12.0)
    graphs = dict(data.graphs)
    rng = random.Random(99)

    # Plant 4 clone families: each original plus 3 lightly edited clones.
    families = {}
    originals = rng.sample(list(data.graphs), 4)
    for gid in originals:
        clones = []
        for c in range(3):
            clone_id = f"{gid}-clone{c}"
            graphs[clone_id] = mutate(
                rng, data.graphs[gid], rng.randint(1, 2), data.labels
            )
            clones.append(clone_id)
        families[gid] = clones

    db = SegosIndex(graphs, k=20, h=100)
    print(f"indexed {len(db)} procedures ({sum(map(len, families.values()))} planted clones)")

    tau = 2
    print(f"\nclone search with tau={tau}:")
    found_total = 0
    for gid, clones in families.items():
        result = db.range_query(graphs[gid], tau=tau, verify="exact")
        hits = sorted(m for m in result.matches if m != gid)
        found = [c for c in clones if c in result.matches]
        found_total += len(found)
        print(f"  {gid}: recovered {len(found)}/{len(clones)} clones -> {hits}")

    print(f"\nrecovered {found_total}/{sum(map(len, families.values()))} planted clones")


if __name__ == "__main__":
    main()
