"""Assignment-problem substrate: Hungarian, dynamic Hungarian, mapping distance."""

from .hungarian import HungarianSolver, hungarian
from .mapping import (
    DynamicMappingDistance,
    MappingResult,
    bounds,
    edit_cost_under_mapping,
    lower_bound,
    mapping_distance,
    mapping_result,
    partial_mapping_distance,
    star_cost_matrix,
    upper_bound,
)

__all__ = [
    "DynamicMappingDistance",
    "HungarianSolver",
    "MappingResult",
    "bounds",
    "edit_cost_under_mapping",
    "hungarian",
    "lower_bound",
    "mapping_distance",
    "mapping_result",
    "partial_mapping_distance",
    "star_cost_matrix",
    "upper_bound",
]
