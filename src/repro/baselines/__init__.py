"""Comparison methods from the paper's evaluation plus the exact oracle."""

from .base import FilterResult, RangeQueryMethod
from .cstar import CStar
from .ctree import Closure, CTree
from .kat import KappaAT, adjacent_tree_signature, pattern_multiset
from .linear import LinearScan
from .segos_adapter import SegosMethod

__all__ = [
    "CStar",
    "CTree",
    "Closure",
    "FilterResult",
    "KappaAT",
    "LinearScan",
    "RangeQueryMethod",
    "SegosMethod",
    "adjacent_tree_signature",
    "pattern_multiset",
]
