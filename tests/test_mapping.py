"""Tests for mapping distance µ, its GED bounds, and Theorem 1."""

from __future__ import annotations

import random

import pytest

from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import erdos_renyi
from repro.graphs.model import Graph, normalization_factor
from repro.graphs.star import Star, decompose
from repro.matching.hungarian import hungarian
from repro.matching.mapping import (
    DynamicMappingDistance,
    bounds,
    edit_cost_under_mapping,
    lower_bound,
    mapping_distance,
    mapping_result,
    partial_mapping_distance,
    star_cost_matrix,
    upper_bound,
)


class TestStarCostMatrix:
    def test_square_no_padding(self):
        s1 = [Star("a", "b")]
        s2 = [Star("a", "b")]
        assert star_cost_matrix(s1, s2) == [[0.0]]

    def test_epsilon_column_costs(self):
        # One real star vs nothing: ε column priced at 1 + 2|L|.
        matrix = star_cost_matrix([Star("a", "bb")], [])
        assert matrix == [[5.0]]

    def test_epsilon_row_costs(self):
        matrix = star_cost_matrix([], [Star("a", "bb")])
        assert matrix == [[5.0]]

    def test_figure3_full_matrix(self, paper_g1, paper_g2):
        """The complete 6×6 matrix M(S(g1), S(g2)) of Figure 3."""
        s1 = sorted(decompose(paper_g1))
        s2 = sorted(decompose(paper_g2))
        # Sorted order: s1 = [abbcc, bab, babcc, cab, cab],
        #               s2 = [abbccd, bab, babccd, cab, cab, dab].
        matrix = star_cost_matrix(s1, s2)
        expected = [
            [2, 6, 4, 6, 6, 6],
            [8, 0, 6, 1, 1, 1],
            [4, 4, 2, 5, 5, 5],
            [8, 1, 7, 0, 0, 1],
            [8, 1, 7, 0, 0, 1],
            [11, 5, 11, 5, 5, 5],
        ]
        assert matrix == [[float(x) for x in row] for row in expected]


class TestMappingDistance:
    def test_paper_example_mu_is_9(self, paper_g1, paper_g2):
        """Figure 2: µ(g1, g2) = 2 + 0 + 2 + 0 + 0 + 5 = 9."""
        assert mapping_distance(paper_g1, paper_g2) == 9

    def test_symmetry(self, paper_g1, paper_g2):
        assert mapping_distance(paper_g1, paper_g2) == mapping_distance(
            paper_g2, paper_g1
        )

    def test_identical_graphs(self, paper_g1):
        assert mapping_distance(paper_g1, paper_g1) == 0

    def test_mapping_result_vertex_mapping_valid(self, paper_g1, paper_g2):
        result = mapping_result(paper_g1, paper_g2)
        targets = [v for v in result.vertex_mapping.values() if v is not None]
        assert len(set(targets)) == len(targets)
        assert set(result.vertex_mapping) == set(paper_g1.vertices())
        assert set(result.inserted) <= set(paper_g2.vertices())
        assert len(targets) + len(result.inserted) == paper_g2.order


class TestBounds:
    def test_lower_bound_formula(self, paper_g1, paper_g2):
        mu = mapping_distance(paper_g1, paper_g2)
        delta = normalization_factor(paper_g1, paper_g2)
        assert lower_bound(paper_g1, paper_g2) == pytest.approx(mu / delta)

    def test_bounds_sandwich_exact_ged(self, rng):
        for _ in range(15):
            g1 = erdos_renyi(rng, "abc", rng.randint(1, 5), 0.4)
            g2 = erdos_renyi(rng, "abc", rng.randint(1, 5), 0.4)
            exact = graph_edit_distance(g1, g2)
            l_m, u_m, mu = bounds(g1, g2)
            assert l_m <= exact <= u_m
            assert mu >= 0

    def test_upper_bound_of_identical_graphs_is_zero(self, paper_g1):
        assert upper_bound(paper_g1, paper_g1) == 0

    def test_edit_cost_counts_relabel(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a", "c"], [(0, 1)])
        assert edit_cost_under_mapping(g1, g2, {0: 0, 1: 1}) == 1

    def test_edit_cost_counts_deletion_and_insertion(self):
        g1 = Graph(["a", "b"], [(0, 1)])
        g2 = Graph(["a"])
        # Map a→a, delete b (and its edge).
        assert edit_cost_under_mapping(g1, g2, {0: 0, 1: None}) == 2

    def test_edit_cost_counts_edge_mismatch(self):
        g1 = Graph(["a", "b", "c"], [(0, 1)])
        g2 = Graph(["a", "b", "c"], [(1, 2)])
        cost = edit_cost_under_mapping(g1, g2, {0: 0, 1: 1, 2: 2})
        assert cost == 2  # delete (0,1), insert (1,2)


class TestTheoremOne:
    """Partial mapping distance is a monotone lower bound on µ."""

    def test_monotone_and_bounded(self, paper_g1, paper_g2, rng):
        mu = mapping_distance(paper_g1, paper_g2)
        stars_q = decompose(paper_g1)
        stars_g = decompose(paper_g2)
        dyn = DynamicMappingDistance(stars_q, len(stars_g))
        previous = dyn.current()
        rng.shuffle(stars_g)
        for star in stars_g:
            value = dyn.reveal(star)
            assert value >= previous
            assert value <= mu
            previous = value
        assert dyn.finalize() == pytest.approx(mu)

    def test_partial_one_shot_helper(self, paper_g1, paper_g2):
        stars_g = decompose(paper_g2)
        mu = mapping_distance(paper_g1, paper_g2)
        for cut in range(len(stars_g) + 1):
            value = partial_mapping_distance(
                decompose(paper_g1), stars_g[:cut], len(stars_g)
            )
            assert value <= mu

    def test_reveal_past_order_rejected(self):
        dyn = DynamicMappingDistance([Star("a")], 1)
        dyn.reveal(Star("a"))
        with pytest.raises(RuntimeError):
            dyn.reveal(Star("a"))

    def test_finalize_requires_all_revealed(self):
        dyn = DynamicMappingDistance([Star("a"), Star("b")], 2)
        dyn.reveal(Star("a"))
        with pytest.raises(RuntimeError):
            dyn.finalize()

    def test_reveal_after_finalize_rejected(self):
        dyn = DynamicMappingDistance([Star("a")], 1)
        dyn.reveal(Star("b"))
        dyn.finalize()
        with pytest.raises(RuntimeError):
            dyn.reveal(Star("c"))

    def test_empty_pair_rejected(self):
        with pytest.raises(ValueError):
            DynamicMappingDistance([], 0)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            DynamicMappingDistance([Star("a")], -1)

    def test_revealed_fraction(self):
        dyn = DynamicMappingDistance([Star("a"), Star("b")], 4)
        assert dyn.revealed_fraction == 0
        dyn.reveal(Star("a"))
        assert dyn.revealed_fraction == pytest.approx(0.25)

    def test_larger_data_graph_epsilon_rows(self, paper_g1, paper_g2):
        # Query smaller than data graph: ε rows appear; final equals µ.
        stars_q = decompose(paper_g1)  # 5 stars
        stars_g = decompose(paper_g2)  # 6 stars
        dyn = DynamicMappingDistance(stars_q, len(stars_g))
        for star in stars_g:
            dyn.reveal(star)
        assert dyn.finalize() == pytest.approx(9)

    def test_smaller_data_graph_epsilon_columns(self, paper_g1, paper_g2):
        stars_q = decompose(paper_g2)  # 6 stars
        stars_g = decompose(paper_g1)  # 5 stars
        dyn = DynamicMappingDistance(stars_q, len(stars_g))
        for star in stars_g:
            dyn.reveal(star)
        assert dyn.finalize() == pytest.approx(9)

    def test_star_alignment_shape(self, paper_g1, paper_g2):
        dyn = DynamicMappingDistance(decompose(paper_g1), paper_g2.order)
        for star in decompose(paper_g2):
            dyn.reveal(star)
        dyn.finalize()
        pairs = dyn.star_alignment()
        assert len(pairs) == max(paper_g1.order, paper_g2.order)
        lefts = [left for left, _ in pairs if left is not None]
        assert len(lefts) == paper_g1.order

    def test_matches_fresh_hungarian(self, rng):
        """Dynamic reveal-all must equal a from-scratch Hungarian solve."""
        for _ in range(10):
            g1 = erdos_renyi(rng, "abcd", rng.randint(1, 6), 0.35)
            g2 = erdos_renyi(rng, "abcd", rng.randint(1, 6), 0.35)
            s1, s2 = decompose(g1), decompose(g2)
            fresh, _ = hungarian(star_cost_matrix(s1, s2))
            dyn = DynamicMappingDistance(s1, len(s2))
            for star in s2:
                dyn.reveal(star)
            assert dyn.finalize() == pytest.approx(fresh)
