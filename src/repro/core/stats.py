"""Query statistics shared by SEGOS and the baselines.

The paper's evaluation reports, besides wall-clock time:

* **access number** — how many graphs had a mapping distance computed
  (Figure 12); this is the metric SEGOS's CA stage minimises;
* **candidate size** — how many graphs survive filtering and would be sent
  to exact-GED verification (Figures 15–18);
* **TA overhead** — sorted accesses spent in the top-k sub-unit stage
  (Figure 20).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..resilience.telemetry import DegradationEvent


@dataclass
class WallClock:
    """The one wall-time helper every query path reports ``elapsed`` from.

    ``range_query``, ``batch_range_query`` and the pipelined engine all time
    themselves through this class so their numbers are comparable — same
    clock (``perf_counter``), same start/read discipline.
    """

    started: float

    @classmethod
    def start(cls) -> "WallClock":
        return cls(time.perf_counter())

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (monotonic)."""
        return time.perf_counter() - self.started


@dataclass
class QueryStats:
    """Counters filled in by one range-query execution."""

    #: graphs whose (partial or full) mapping distance was computed
    graphs_accessed: int = 0
    #: graphs for which the full µ was computed (superset counter above)
    full_mapping_computations: int = 0
    #: graphs resolved purely by constant-time aggregation bounds
    resolved_by_aggregation: int = 0
    #: graphs pruned per bound name (zeta / l_mu / partial_mu / l_m / omega /
    #: never_seen, ...)
    pruned_by: Dict[str, int] = field(default_factory=dict)
    #: entries scanned across all CA graph lists
    list_entries_scanned: int = 0
    #: sorted accesses performed by the TA top-k sub-unit searches
    ta_accesses: int = 0
    #: distinct TA searches executed (duplicate query stars share one)
    ta_searches: int = 0
    #: graphs that reached the candidate set (including confirmed matches)
    candidates: int = 0
    #: candidates confirmed as matches by an upper bound (no GED needed)
    confirmed_matches: int = 0
    #: graphs never seen in any list and filtered by the halting argument
    filtered_unseen: int = 0
    #: graphs processed by the linear fallback (lists exhausted, no halt)
    linear_fallback: int = 0
    #: SED memo-cache hits attributable to this query (filter stage)
    sed_cache_hits: int = 0
    #: SED memo-cache misses attributable to this query (actual Lemma 1 runs)
    sed_cache_misses: int = 0
    #: top-k backend → number of searches it answered (``ta`` / ``scan``)
    topk_backends: Dict[str, int] = field(default_factory=dict)
    #: rows scored by vectorized full scans (the scan-side twin of
    #: ``ta_accesses``; zero when every search ran on the TA backend)
    topk_scan_width: int = 0
    #: verification-stage candidates settled by L_m/U_m bounds alone
    settled_by_bounds: int = 0
    #: verification-stage A* GED runs actually dispatched
    astar_runs: int = 0
    #: A* states expanded across this query's GED runs (search effort)
    astar_expansions: int = 0
    #: catalog shards the scatter-gather executor actually ran this query
    #: against (0 on the monolithic single-catalog path)
    shards_scattered: int = 0
    #: catalog shards skipped outright by pivot-based triangle-inequality
    #: pruning before TA ever ran (see :mod:`repro.perf.shard`)
    shards_pruned: int = 0
    #: filter tier name → bound-tightness counters: ``evaluated`` (pairs the
    #: tier scored), ``bound_sum`` (Σ of its lower bounds — tightness in
    #: aggregate) and ``bound_max`` (its tightest single claim); filled by
    #: the ``embed``/``anchor`` tier stages, merged by +/+/max
    tier_bounds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: candidates settled as matches by the anchor tier's upper bound —
    #: exact answers that never paid for an A* run
    anchor_settled: int = 0
    #: stage name → wall-clock seconds, captured uniformly by the plan
    #: executor (``ta``/``ca``/``verify`` on the serial path, ``ta+ca``/
    #: ``verify`` on the pipelined path — the threaded stages overlap, so
    #: they are timed as one fused stage)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: degradation telemetry: every pool failure, injected fault, retry or
    #: fallback recorded while answering this query (see
    #: :mod:`repro.resilience`); silent degradation is a bug
    degradations: List[DegradationEvent] = field(default_factory=list)

    @property
    def sed_cache_hit_rate(self) -> float:
        """Share of this query's SED lookups served from the memo cache."""
        total = self.sed_cache_hits + self.sed_cache_misses
        return self.sed_cache_hits / total if total else 0.0

    def count_prune(self, bound: str) -> None:
        self.pruned_by[bound] = self.pruned_by.get(bound, 0) + 1

    def count_topk_backend(self, backend: str, scan_width: int = 0) -> None:
        """Record one top-k search answered by *backend*."""
        self.topk_backends[backend] = self.topk_backends.get(backend, 0) + 1
        self.topk_scan_width += scan_width

    def record_tier_bound(self, tier: str, bound: float) -> None:
        """Fold one lower-bound evaluation into *tier*'s tightness counters."""
        entry = self.tier_bounds.setdefault(
            tier, {"evaluated": 0.0, "bound_sum": 0.0, "bound_max": 0.0}
        )
        entry["evaluated"] += 1
        entry["bound_sum"] += bound
        if bound > entry["bound_max"]:
            entry["bound_max"] = bound

    def summary(self) -> str:
        """One-line human-readable account of where the filtering work went.

        Example: ``accessed 12 graphs (9 full µ) | pruned: l_mu=30 omega=55 |
        candidates: 3 (1 confirmed)``.
        """
        pruned = " ".join(
            f"{name}={count}" for name, count in sorted(self.pruned_by.items())
        )
        parts = [
            f"accessed {self.graphs_accessed} graphs "
            f"({self.full_mapping_computations} full µ)",
            f"pruned: {pruned or 'nothing'}",
            f"candidates: {self.candidates} ({self.confirmed_matches} confirmed)",
        ]
        if self.linear_fallback:
            parts.append(f"linear fallback: {self.linear_fallback}")
        if self.sed_cache_hits or self.sed_cache_misses:
            parts.append(
                f"SED cache: {self.sed_cache_hits}/"
                f"{self.sed_cache_hits + self.sed_cache_misses} hits "
                f"({self.sed_cache_hit_rate:.0%})"
            )
        if self.topk_backends:
            chosen = " ".join(
                f"{name}={count}" for name, count in sorted(self.topk_backends.items())
            )
            parts.append(f"top-k backends: {chosen}")
        if self.tier_bounds:
            tiers = " ".join(
                f"{name}={int(entry['evaluated'])}@{entry['bound_max']:g}"
                for name, entry in sorted(self.tier_bounds.items())
            )
            parts.append(f"tiers (evaluated@max bound): {tiers}")
        if self.anchor_settled:
            parts.append(f"anchor settled: {self.anchor_settled}")
        if self.astar_runs or self.settled_by_bounds:
            detail = (
                f"verify: {self.astar_runs} A* runs, "
                f"{self.settled_by_bounds} settled by bounds"
            )
            if self.astar_expansions:
                detail += f", {self.astar_expansions} states expanded"
            parts.append(detail)
        if self.shards_scattered or self.shards_pruned:
            parts.append(
                f"shards: {self.shards_scattered} scattered, "
                f"{self.shards_pruned} pruned"
            )
        if self.stage_seconds:
            timed = " ".join(
                f"{name}={seconds * 1000:.1f}ms"
                for name, seconds in self.stage_seconds.items()
            )
            parts.append(f"stages: {timed}")
        if self.degradations:
            parts.append(
                f"degraded: {len(self.degradations)} event(s), "
                f"{sum(e.retries for e in self.degradations)} retries"
            )
        return " | ".join(parts)

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another run's counters into this one (for averaging)."""
        self.graphs_accessed += other.graphs_accessed
        self.full_mapping_computations += other.full_mapping_computations
        self.resolved_by_aggregation += other.resolved_by_aggregation
        self.list_entries_scanned += other.list_entries_scanned
        self.ta_accesses += other.ta_accesses
        self.ta_searches += other.ta_searches
        self.candidates += other.candidates
        self.confirmed_matches += other.confirmed_matches
        self.filtered_unseen += other.filtered_unseen
        self.linear_fallback += other.linear_fallback
        self.sed_cache_hits += other.sed_cache_hits
        self.sed_cache_misses += other.sed_cache_misses
        self.topk_scan_width += other.topk_scan_width
        self.settled_by_bounds += other.settled_by_bounds
        self.astar_runs += other.astar_runs
        self.astar_expansions += other.astar_expansions
        self.shards_scattered += other.shards_scattered
        self.shards_pruned += other.shards_pruned
        self.anchor_settled += other.anchor_settled
        for tier, entry in other.tier_bounds.items():
            mine = self.tier_bounds.setdefault(
                tier, {"evaluated": 0.0, "bound_sum": 0.0, "bound_max": 0.0}
            )
            mine["evaluated"] += entry["evaluated"]
            mine["bound_sum"] += entry["bound_sum"]
            if entry["bound_max"] > mine["bound_max"]:
                mine["bound_max"] = entry["bound_max"]
        for key, value in other.pruned_by.items():
            self.pruned_by[key] = self.pruned_by.get(key, 0) + value
        for key, value in other.topk_backends.items():
            self.topk_backends[key] = self.topk_backends.get(key, 0) + value
        for key, value in other.stage_seconds.items():
            self.stage_seconds[key] = self.stage_seconds.get(key, 0.0) + value
        self.degradations.extend(other.degradations)

    @classmethod
    def merged(cls, runs: Iterable["QueryStats"]) -> "QueryStats":
        """Fold many per-query stats into one aggregate (batch reporting)."""
        total = cls()
        for run in runs:
            total.merge(run)
        return total
