"""Ablation: which pieces of the CA bound chain actually carry the load?

DESIGN.md calls out four design choices in Algorithm 3's filtering chain:
the constant-time ζ and L_µ prunes, the constant-time U_µ early accept, and
the Theorem-1 partial mapping distance.  This bench disables each in turn
and reports the average access number (graphs needing Hungarian work),
full-µ computations, and response time.  Soundness is preserved by
construction (candidates are re-checked to contain the full-chain answer
set), so the deltas isolate each bound's contribution.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Series, format_table
from repro.core.ca_search import ca_range_query
from repro.core.engine import SegosIndex
from repro.core.graph_lists import build_all_lists
from repro.core.stats import QueryStats
from repro.datasets import sample_queries
from repro.graphs.star import decompose

VARIANTS = [
    ("full chain", frozenset()),
    ("no ζ/L_µ", frozenset({"zeta", "l_mu"})),
    ("no U_µ accept", frozenset({"u_mu"})),
    ("no partial µ", frozenset({"partial_mu"})),
    ("aggregation only", frozenset({"partial_mu", "u_mu"})),
]


def test_ablation_bound_chain(benchmark, aids_dataset, grid, report):
    data = aids_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=91)
    engine = SegosIndex(data.graphs, k=grid.default_k, h=grid.default_h)
    tau = grid.default_tau

    access = Series("access#")
    full_mu = Series("full µ#")
    times = Series("time (s)")
    reference_candidates = {}
    for label, disabled in VARIANTS:
        total_access = total_full = 0
        total_time = 0.0
        for qi, query in enumerate(queries):
            lists = build_all_lists(
                engine.index, decompose(query), query.order, grid.default_k
            )
            started = time.perf_counter()
            result = ca_range_query(
                engine.index,
                engine._graphs,
                query,
                tau,
                lists,
                h=grid.default_h,
                stats=QueryStats(),
                disabled_bounds=disabled,
            )
            total_time += time.perf_counter() - started
            total_access += result.stats.graphs_accessed
            total_full += result.stats.full_mapping_computations
            if not disabled:
                # Confirmed matches are proven answers (U_m ≤ τ): every
                # sound variant must keep them as candidates.
                reference_candidates[qi] = set(result.confirmed)
            else:
                assert reference_candidates[qi] <= set(result.candidates)
        n = len(queries)
        access.add(label, total_access / n)
        full_mu.add(label, total_full / n)
        times.add(label, total_time / n)

    report(
        "ablation_bound_chain",
        format_table(
            f"Ablation: CA bound chain (aids-like, τ={tau})",
            "variant",
            [label for label, _ in VARIANTS],
            [access, full_mu, times],
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The full chain must not need more full-µ computations than the
    # aggregation-only variant.
    assert full_mu.points["full chain"] <= full_mu.points["aggregation only"]
