"""C-Tree: hierarchical closure-tree index (He & Singh [5], ICDE 2006).

C-Tree organises graphs in an R-tree-like hierarchy whose internal nodes
summarise their descendants by a *graph closure*; range queries descend the
tree, pruning any subtree whose closure-based GED lower bound already
exceeds τ.

Substitution note (see DESIGN.md §3): the original closure is a structural
union graph built by pairwise alignment.  We keep the hierarchical shape and
the pruning contract but summarise each node with sound optimistic
statistics — order range, edge-count range, and per-label maximum vertex
counts over the descendants.  The node lower bound

    LB(q, node) = [max(|q|, min_order) − Σ_ℓ min(c_q(ℓ), maxcount(ℓ))]⁺
                  + [max(0, |E(q)| − max_edges, min_edges − |E(q)|)]

under-estimates ``λ(q, g)`` for every descendant g (vertex edits and edge
edits are disjoint operation classes, so the two terms add).  Leaves apply
the same bound with the graph's exact statistics.  This keeps the C-Tree
behaviour the paper reports: cheap-ish traversal, but filtering power well
below the star-based methods.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graphs.model import Graph
from .base import FilterResult, RangeQueryMethod

DEFAULT_FANOUT = 8


@dataclass
class Closure:
    """Optimistic summary of a set of graphs."""

    min_order: int
    max_order: int
    min_edges: int
    max_edges: int
    label_max: Dict[str, int]

    @classmethod
    def of_graph(cls, graph: Graph) -> "Closure":
        return cls(
            min_order=graph.order,
            max_order=graph.order,
            min_edges=graph.size,
            max_edges=graph.size,
            label_max=dict(Counter(graph.labels().values())),
        )

    @classmethod
    def merge(cls, closures: Sequence["Closure"]) -> "Closure":
        label_max: Dict[str, int] = {}
        for closure in closures:
            for label, count in closure.label_max.items():
                if count > label_max.get(label, 0):
                    label_max[label] = count
        return cls(
            min_order=min(c.min_order for c in closures),
            max_order=max(c.max_order for c in closures),
            min_edges=min(c.min_edges for c in closures),
            max_edges=max(c.max_edges for c in closures),
            label_max=label_max,
        )

    def lower_bound(self, query_labels: Counter, query_order: int, query_edges: int) -> int:
        """Sound GED lower bound between the query and any summarised graph."""
        matchable = sum(
            min(count, self.label_max.get(label, 0))
            for label, count in query_labels.items()
        )
        vertex_part = max(query_order, self.min_order) - matchable
        edge_part = max(0, query_edges - self.max_edges, self.min_edges - query_edges)
        return max(0, vertex_part) + edge_part

    def entry_count(self) -> int:
        """Stored entries: the scalar stats plus one per label."""
        return 4 + len(self.label_max)


@dataclass
class _Node:
    closure: Closure
    children: List["_Node"] = field(default_factory=list)
    gid: Optional[object] = None  # set on leaves

    @property
    def is_leaf(self) -> bool:
        return self.gid is not None


class CTree(RangeQueryMethod):
    """Closure-tree index with bulk loading and closure-bound pruning.

    Graphs are bulk-loaded sorted by (order, edge count) so that closures
    summarise graphs of similar shape — the tight-closure goal of the
    original insertion heuristics, achieved the simple way.
    """

    name = "C-Tree"

    def __init__(
        self, graphs: Mapping[object, Graph], *, fanout: int = DEFAULT_FANOUT
    ) -> None:
        super().__init__(graphs)
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        leaves = [
            _Node(closure=Closure.of_graph(graph), gid=gid)
            for gid, graph in sorted(
                self.graphs.items(),
                key=lambda item: (item[1].order, item[1].size, str(item[0])),
            )
        ]
        self.root = self._build(leaves)

    def _build(self, nodes: List[_Node]) -> Optional[_Node]:
        if not nodes:
            return None
        while len(nodes) > 1:
            grouped: List[_Node] = []
            for start in range(0, len(nodes), self.fanout):
                chunk = nodes[start : start + self.fanout]
                grouped.append(
                    _Node(
                        closure=Closure.merge([n.closure for n in chunk]),
                        children=chunk,
                    )
                )
            nodes = grouped
        return nodes[0]

    def range_query(self, query: Graph, *, tau: float) -> FilterResult:
        if query.order == 0:
            raise ValueError("query graph must not be empty")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if self.root is None:
            return FilterResult(candidates=[])
        query_labels = Counter(query.labels().values())
        query_order, query_edges = query.order, query.size
        candidates: List[object] = []
        nodes_visited = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes_visited += 1
            bound = node.closure.lower_bound(query_labels, query_order, query_edges)
            if bound > tau:
                continue
            if node.is_leaf:
                candidates.append(node.gid)
            else:
                stack.extend(node.children)
        result = FilterResult(candidates=candidates, graphs_accessed=0)
        result.nodes_visited = nodes_visited  # type: ignore[attr-defined]
        return result

    def index_size(self) -> int:
        """Total closure entries over all tree nodes."""
        if self.root is None:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += node.closure.entry_count()
            stack.extend(node.children)
        return total

    def depth(self) -> int:
        """Tree height (1 for a single leaf)."""
        depth, node = 0, self.root
        while node is not None:
            depth += 1
            node = node.children[0] if node.children else None
        return depth
