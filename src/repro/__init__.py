"""SEGOS — graph similarity search by graph edit distance.

A complete reproduction of *"An Efficient Graph Indexing Method"*
(Wang, Ding, Tung, Ying, Jin; ICDE 2012): a two-level inverted index over
star decompositions of graphs, searched with TA/CA-style algorithms, plus
the baselines the paper compares against (C-Star, κ-AT, C-Tree).

Quickstart
----------
>>> from repro import Graph, SegosIndex
>>> db = SegosIndex()
>>> db.add("caffeine-ish", Graph(["C", "N", "C"], [(0, 1), (1, 2)]))
>>> db.add("other", Graph(["O", "O", "O"], [(0, 1), (1, 2)]))
>>> hits = db.range_query(Graph(["C", "N", "C"], [(0, 1), (1, 2)]), tau=1)
>>> "caffeine-ish" in hits.candidates
True
"""

from .config import EngineConfig
from .graphs.model import Graph
from .graphs.star import Star, decompose, star_edit_distance
from .graphs.edit_distance import ged_within, graph_edit_distance
from .matching.mapping import mapping_distance
from .core.engine import QueryResult, SegosIndex
from .core.plan import QuerySession
from .core.stats import QueryStats
from .perf.assignment import available_backends, solve_assignment
from .perf.sed_cache import sed_cache_clear, sed_cache_info
from .resilience import DegradationEvent, FaultPlan

__version__ = "1.0.0"

__all__ = [
    "DegradationEvent",
    "EngineConfig",
    "FaultPlan",
    "Graph",
    "QueryResult",
    "QuerySession",
    "QueryStats",
    "SegosIndex",
    "Star",
    "available_backends",
    "decompose",
    "ged_within",
    "graph_edit_distance",
    "mapping_distance",
    "sed_cache_clear",
    "sed_cache_info",
    "solve_assignment",
    "star_edit_distance",
    "__version__",
]
