"""Property-based tests for the extension modules (subsearch, knn, persistence)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import SegosIndex
from repro.core.knn import knn_query
from repro.core.persistence import load_index, save_index
from repro.core.subsearch import sub_mapping_distance, sub_star_distance
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.model import Graph, normalization_factor
from repro.graphs.star import Star, star_edit_distance
from repro.graphs.subgraph_distance import subgraph_edit_distance

LABELS = "abc"

labels_st = st.sampled_from(LABELS)
star_st = st.builds(Star, labels_st, st.lists(labels_st, max_size=5))


@st.composite
def graph_st(draw, max_order=4):
    order = draw(st.integers(min_value=1, max_value=max_order))
    graph = Graph([draw(labels_st) for _ in range(order)])
    for u in range(order):
        for v in range(u + 1, order):
            if draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


class TestSubStarProperties:
    @given(star_st, star_st)
    def test_sub_sed_at_most_sed(self, s1, s2):
        assert sub_star_distance(s1, s2) <= star_edit_distance(s1, s2)

    @given(star_st)
    def test_sub_sed_identity(self, s):
        assert sub_star_distance(s, s) == 0

    @given(star_st, star_st)
    def test_sub_sed_nonnegative(self, s1, s2):
        assert sub_star_distance(s1, s2) >= 0

    @given(star_st, st.lists(labels_st, max_size=3))
    def test_sub_sed_monotone_under_leaf_growth(self, s, extra):
        """Growing the target's leaves can only help containment."""
        grown = Star(s.root, list(s.leaves) + list(extra))
        query = Star(s.root, s.leaves)
        assert sub_star_distance(query, grown) == 0


class TestSubgraphDistanceProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(), graph_st())
    def test_sub_ged_at_most_ged(self, q, g):
        plain = graph_edit_distance(q, g)
        sub = subgraph_edit_distance(q, g)
        assert sub <= plain

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st(), graph_st())
    def test_sub_mapping_bound_sound(self, q, g):
        exact = subgraph_edit_distance(q, g)
        bound = sub_mapping_distance(q, g) / normalization_factor(q, g)
        assert bound <= exact + 1e-9

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph_st())
    def test_sub_ged_self_zero(self, g):
        assert subgraph_edit_distance(g, g) == 0


class TestKnnProperties:
    @settings(
        deadline=None,
        max_examples=10,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(graph_st(max_order=4), min_size=3, max_size=6),
        st.integers(min_value=1, max_value=3),
    )
    def test_knn_matches_exhaustive(self, graphs, k):
        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)})
        query = graphs[0]
        result = knn_query(engine, query, k=k)
        exact = sorted(
            graph_edit_distance(query, g) for g in graphs
        )
        got = sorted(d for _, d in result.neighbours)
        assert got[:k] == exact[:k]


class TestPersistenceProperties:
    @settings(
        deadline=None,
        max_examples=10,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.lists(graph_st(max_order=4), min_size=1, max_size=5))
    def test_round_trip_preserves_answers(self, graphs):
        import tempfile
        from pathlib import Path

        engine = SegosIndex({f"g{i}": g for i, g in enumerate(graphs)})
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "db.segos"
            save_index(engine, path)
            loaded = load_index(path)
        query = graphs[0]
        a = engine.range_query(query, tau=1, verify="exact").matches
        b = loaded.range_query(query, tau=1, verify="exact").matches
        assert a == b
