#!/usr/bin/env python3
"""Similarity self-join: find every near-duplicate pair in one corpus.

Deduplication is the classic join use case: a compound registry with
accidental re-entries (tiny drawing differences) needs all pairs within a
small edit distance.  The SEGOS index answers it with |D| cheap range
probes instead of |D|²/2 Hungarian comparisons.

Run with::

    python examples/similarity_join.py
"""

import random

from repro import SegosIndex
from repro.core.join import similarity_self_join
from repro.datasets import aids_like
from repro.graphs.generators import mutate


def main() -> None:
    data = aids_like(100, seed=41, mean_order=10.0)
    graphs = dict(data.graphs)

    # Simulate registry noise: re-enter 6 compounds with 1-edit variations.
    rng = random.Random(13)
    duplicated = rng.sample(list(data.graphs), 6)
    for key in duplicated:
        graphs[f"{key}-dup"] = mutate(rng, graphs[key], 1, data.labels)

    engine = SegosIndex(graphs, k=25, h=100)
    result = similarity_self_join(engine, tau=1, verify="exact")

    print(f"corpus: {len(graphs)} graphs ({len(duplicated)} planted duplicates)")
    print(f"\nnear-duplicate pairs (GED <= 1): {len(result.matches)}")
    for a, b in sorted(result.matches):
        print(f"  {a} -- {b}")
    planted = {(k, f"{k}-dup") for k in duplicated}
    found = {tuple(sorted(p)) for p in result.matches}
    recovered = sum(1 for p in planted if tuple(sorted(p)) in found)
    print(f"\nrecovered {recovered}/{len(planted)} planted duplicates")
    print(
        f"work: {result.stats.graphs_accessed} mapping computations vs "
        f"{len(graphs) * (len(graphs) - 1) // 2} for a naive join"
    )


if __name__ == "__main__":
    main()
