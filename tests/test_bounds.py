"""Tests for the aggregation bounds (Theorem 2): ζ ≤ L_µ ≤ µ ≤ U_µ."""

from __future__ import annotations

import random

import pytest

from repro.core.bounds import SeenGraph
from repro.core.graph_lists import build_all_lists
from repro.core.index import TwoLevelIndex
from repro.graphs.generators import corpus
from repro.graphs.star import decompose
from repro.matching.mapping import mapping_distance


class TestSeenGraphAccumulator:
    def make(self, **kwargs):
        defaults = dict(gid="g", order=4, max_degree=2, small_side=True)
        defaults.update(kwargs)
        return SeenGraph(**defaults)

    def test_zeta_sums_list_minimums(self):
        sg = self.make()
        sg.observe(0, sid=7, sed=3, freq=1)
        sg.observe(0, sid=8, sed=1, freq=1)
        sg.observe(2, sid=9, sed=5, freq=1)
        assert sg.zeta() == 1 + 5

    def test_observe_keeps_minimum_per_list(self):
        sg = self.make()
        sg.observe(1, sid=7, sed=4, freq=1)
        sg.observe(1, sid=8, sed=2, freq=1)
        assert sg.chi[1] == 2

    def test_duplicate_pairs_not_double_counted(self):
        sg = self.make()
        sg.observe(0, sid=7, sed=3, freq=2)
        sg.observe(0, sid=7, sed=3, freq=2)
        assert len(sg.seen_pairs) == 1

    def test_lower_bound_fills_missing_lists(self):
        sg = self.make()
        sg.observe(0, sid=7, sed=2, freq=1)
        # Lists 1 and 2 missing: floors 5 and 9, epsilons 3 and 20.
        value = sg.aggregation_lower_bound([0.0, 5.0, 9.0], [99, 3, 20])
        assert value == 2 + min(5, 3) + min(9, 20)

    def test_lower_bound_at_least_zeta(self):
        sg = self.make()
        sg.observe(0, sid=7, sed=2, freq=1)
        assert sg.aggregation_lower_bound([0.0, 0.0, 0.0], [9, 9, 9]) >= sg.zeta()

    def test_upper_bound_greedy_alignment(self):
        sg = self.make(order=3, max_degree=1)
        sg.observe(0, sid=7, sed=1, freq=1)
        sg.observe(1, sid=8, sed=2, freq=1)
        # χ̄ = 1 + 2*max(q_deg=1, 1) = 3; matched = 2 of max(3, 3).
        value = sg.aggregation_upper_bound(query_order=3, query_max_degree=1)
        assert value == 1 + 2 + 3 * (3 - 2)

    def test_upper_bound_respects_multiplicity(self):
        sg = self.make(order=2, max_degree=1)
        # Same star seen under two lists, but it occurs only once in g:
        # the greedy alignment may use it once.
        sg.observe(0, sid=7, sed=0, freq=1)
        sg.observe(1, sid=7, sed=0, freq=1)
        value = sg.aggregation_upper_bound(query_order=2, query_max_degree=1)
        assert value == 0 + 3 * (2 - 1)

    def test_seen_star_multiset(self):
        sg = self.make()
        sg.observe(0, sid=7, sed=0, freq=2)
        assert sg.seen_star_multiset() == {7: 2}


class TestTheoremTwoEndToEnd:
    """Simulate full scans and check ζ ≤ L_µ ≤ µ ≤ U_µ against the real µ."""

    @pytest.mark.parametrize("seed", range(4))
    def test_sandwich_on_random_corpora(self, seed):
        rng = random.Random(seed)
        graphs = {
            f"g{i}": g
            for i, g in enumerate(
                corpus(rng, 12, kind="chemical", mean_order=7, stddev=2)
            )
        }
        index = TwoLevelIndex()
        for gid, g in graphs.items():
            index.add_graph(gid, g, decompose(g))
        query = corpus(rng, 1, kind="chemical", mean_order=7, stddev=2)[0]
        query_stars = decompose(query)
        lists = build_all_lists(index, query_stars, query.order, k=10)

        # Drive a complete scan: observe every entry of every list.
        seen = {}
        for j, ql in enumerate(lists):
            for entry in ql.small + ql.large:
                sg = seen.get(entry.gid)
                if sg is None:
                    meta = index.meta(entry.gid)
                    sg = SeenGraph(
                        gid=entry.gid,
                        order=meta.order,
                        max_degree=meta.max_degree,
                        small_side=entry.order <= query.order,
                    )
                    seen[entry.gid] = sg
                sg.observe(j, entry.sid, entry.sed, entry.freq)

        epsilons = [1 + 2 * s.leaf_size for s in query_stars]
        for gid, sg in seen.items():
            mu = mapping_distance(query, graphs[gid])
            zeta = sg.zeta()
            floors = [
                (
                    ql.exhausted_small_bound()
                    if sg.small_side
                    else ql.exhausted_large_bound()
                )
                for ql in lists
            ]
            l_mu = sg.aggregation_lower_bound(floors, epsilons)
            u_mu = sg.aggregation_upper_bound(query.order, query.max_degree())
            assert zeta <= l_mu + 1e-9
            assert l_mu <= mu + 1e-9, (gid, l_mu, mu)
            assert mu <= u_mu + 1e-9, (gid, mu, u_mu)
