"""The staged executor: plan shape, uniform stage timing, session cache
sharing, and the equivalence of every front-end with the core plan."""

from __future__ import annotations

import pytest

from repro.core.engine import SegosIndex
from repro.core.pipeline import PipelinedSegos
from repro.core.plan import (
    CAStage,
    QueryPlan,
    QuerySession,
    TAStage,
    VerifyStage,
    execute_plan,
    make_context,
)
from repro.core.subsearch import SubgraphSearch
from repro.graphs.model import Graph


def build_engine(items, **kwargs):
    engine = SegosIndex(**kwargs)
    for gid, graph in items:
        engine.add(gid, graph)
    return engine


@pytest.fixture(scope="module")
def corpus(small_aids):
    return list(small_aids.graphs.items())[:25]


@pytest.fixture()
def engine(corpus):
    return build_engine(corpus)


class TestPlanShape:
    def test_range_plan_stage_order(self):
        plan = QueryPlan.range_query()
        assert [type(s) for s in plan.stages] == [TAStage, CAStage, VerifyStage]
        assert [s.name for s in plan.stages] == ["ta", "ca", "verify"]

    def test_pipelined_plan_shares_verify_stage(self, engine):
        plan = PipelinedSegos(engine).plan()
        assert [s.name for s in plan.stages] == ["ta+ca", "verify"]
        assert isinstance(plan.stages[-1], VerifyStage)

    def test_subsearch_plan_same_stage_names(self, engine):
        plan = SubgraphSearch(engine).plan()
        assert [s.name for s in plan.stages] == ["ta", "ca", "verify"]


class TestStageTiming:
    """Satellite: per-stage timings are captured uniformly by the executor,
    on the plain and the pipelined path alike — pinned here."""

    def test_serial_stage_seconds_keys(self, engine, corpus):
        result = engine.range_query(corpus[0][1], tau=2, verify="exact")
        assert set(result.stats.stage_seconds) == {"ta", "ca", "verify"}
        assert all(v >= 0 for v in result.stats.stage_seconds.values())
        assert sum(result.stats.stage_seconds.values()) <= result.elapsed

    def test_pipelined_stage_seconds_keys(self, engine, corpus):
        result = PipelinedSegos(engine).range_query(corpus[0][1], tau=2)
        assert set(result.stats.stage_seconds) == {"ta+ca", "verify"}

    def test_subsearch_stage_seconds_keys(self, engine, corpus):
        result = SubgraphSearch(engine).range_query(corpus[0][1], tau=1)
        assert set(result.stats.stage_seconds) == {"ta", "ca", "verify"}
        assert result.elapsed >= 0

    def test_merge_accumulates_stage_seconds(self, engine, corpus):
        a = engine.range_query(corpus[0][1], tau=1).stats
        b = engine.range_query(corpus[1][1], tau=1).stats
        expected = a.stage_seconds["ca"] + b.stage_seconds["ca"]
        a.merge(b)
        assert a.stage_seconds["ca"] == pytest.approx(expected)

    def test_summary_mentions_stages(self, engine, corpus):
        stats = engine.range_query(corpus[0][1], tau=1).stats
        assert "stages:" in stats.summary()


class TestExecutor:
    def test_execute_plan_matches_front_end(self, engine, corpus):
        query = corpus[0][1]
        via_engine = engine.range_query(query, tau=2)
        ctx = make_context(engine, query, 2, config=engine.config)
        ctx = execute_plan(QueryPlan.range_query(), ctx)
        assert sorted(map(str, ctx.candidates)) == sorted(
            map(str, via_engine.candidates)
        )
        assert ctx.matches == via_engine.matches

    def test_context_validation(self, engine):
        with pytest.raises(ValueError, match="empty"):
            make_context(engine, Graph([]), 1, config=engine.config)
        with pytest.raises(ValueError, match="non-negative"):
            make_context(
                engine, Graph(["a"]), -1, config=engine.config
            )
        with pytest.raises(ValueError, match="verify"):
            make_context(
                engine, Graph(["a"]), 1, config=engine.config, verify="maybe"
            )

    def test_verify_stage_noop_without_exact(self, engine, corpus):
        result = engine.range_query(corpus[0][1], tau=2, verify="none")
        assert result.verified is False
        assert result.stats.astar_runs == 0


class TestQuerySession:
    def test_session_shares_ta_searches(self, engine, corpus):
        session = engine.session()
        first = session.range_query(corpus[0][1], tau=1)
        again = session.range_query(corpus[0][1], tau=2)
        assert first.stats.ta_searches > 0
        assert again.stats.ta_searches == 0  # all served from the session cache

    def test_fresh_sessions_are_isolated(self, engine, corpus):
        one = engine.session().range_query(corpus[0][1], tau=1)
        two = engine.session().range_query(corpus[0][1], tau=1)
        assert one.stats.ta_searches == two.stats.ta_searches > 0

    def test_session_pins_config_overrides(self, engine, corpus):
        session = engine.session(k=3)
        assert session.config.k == 3
        assert engine.config.k == 100

    def test_session_results_match_engine(self, engine, corpus):
        session = engine.session()
        for _, query in corpus[:5]:
            direct = engine.range_query(query, tau=2)
            shared = session.range_query(query, tau=2)
            assert sorted(map(str, direct.candidates)) == sorted(
                map(str, shared.candidates)
            )
            assert direct.matches == shared.matches

    def test_private_cache_entry_point_is_gone(self, engine):
        # The deprecated pre-plan shim was removed; sessions are the one
        # public route to cache-sharing.
        assert not hasattr(engine, "_range_query_with_cache")

    def test_session_class_reexported(self):
        import repro
        import repro.core as core

        assert repro.QuerySession is QuerySession
        assert core.QuerySession is QuerySession


class TestPipelinedSession:
    def test_pipelined_serial_batch_shares_ta(self, engine, corpus):
        pipe = PipelinedSegos(engine)
        queries = [corpus[0][1], corpus[0][1]]
        # τ high enough that no side halts the TA thread early: every star
        # is searched and cached on the first query, so the identical
        # second query pays zero TA searches (deterministically).
        results = pipe.batch_range_query(queries, tau=50, workers=1)
        assert results[0].stats.ta_searches > 0
        assert results[1].stats.ta_searches == 0

    def test_pipelined_answers_match_serial(self, engine, corpus):
        pipe = PipelinedSegos(engine)
        for _, query in corpus[:5]:
            serial = engine.range_query(query, tau=2, verify="exact")
            piped = pipe.range_query(query, tau=2, verify="exact")
            assert piped.matches == serial.matches
