"""Exact subgraph edit distance (the conclusion's sub-graph matching extension).

The paper's final section notes that "with bounds adaption our work also
can support the sub-graph matching problems".  The relevant distance is the
**subgraph edit distance**

    λ_sub(q, g) = min_{s ⊆ g} λ(q, s)

— the cheapest way to edit the query into *some* subgraph of ``g`` (not
necessarily induced).  Equivalently, over injective partial mappings
``P: V(q) ⇀ V(g)``:

* +1 per mapped vertex whose label differs (the subgraph keeps g's labels);
* +1 per unmapped query vertex (deletion), plus +1 per query edge incident
  to it;
* +1 per query edge between mapped vertices whose images are not adjacent
  in ``g`` (the subgraph cannot contain an edge g lacks);
* unused vertices/edges of ``g`` cost nothing — that is the whole
  difference from plain GED.

``λ_sub(q, g) = 0`` iff ``q`` is subgraph-isomorphic to ``g``.

The solver is the same threshold/budget-guarded A* as
:mod:`repro.graphs.edit_distance`, with the completion cost and the
asymmetric edge rule adjusted.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from ..errors import SearchBudgetExceeded
from .edit_distance import DEFAULT_BUDGET
from .model import Graph
from .star import multiset_intersection_size


def subgraph_label_lower_bound(query: Graph, target: Graph) -> int:
    """Cheap admissible bound on λ_sub: unmatched labels + surplus edges.

    Every query vertex whose label cannot be matched inside ``g``'s label
    multiset needs at least one edit, and every query edge beyond ``g``'s
    edge count must be deleted.  Vertex ops and edge ops are disjoint
    classes, so the two parts add.
    """
    common = multiset_intersection_size(
        query.label_multiset(), target.label_multiset()
    )
    return max(0, query.order - common) + max(0, query.size - target.size)


def subgraph_edit_distance(
    query: Graph,
    target: Graph,
    *,
    threshold: Optional[int] = None,
    budget: int = DEFAULT_BUDGET,
) -> Optional[int]:
    """Exact ``λ_sub(query, target)``, or None if it exceeds *threshold*.

    Examples
    --------
    >>> path = Graph(["a", "b"], [(0, 1)])
    >>> triangle = Graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
    >>> subgraph_edit_distance(path, triangle)
    0
    >>> subgraph_edit_distance(triangle, path)  # delete c and its 2 edges
    3
    """
    order1 = sorted(query.vertices(), key=lambda v: -query.degree(v))
    ids2 = list(target.vertices())
    n1, n2 = len(order1), len(ids2)
    labels1 = [query.label(v) for v in order1]

    if n1 == 0:
        return 0 if (threshold is None or threshold >= 0) else None

    pos1 = {v: i for i, v in enumerate(order1)}
    # Edges of the query entirely inside the unmapped suffix; each needs a
    # matching target edge or a deletion, so the suffix bound below is
    # admissible when paired with the unmatched-label count.
    suffix_edges1 = [0] * (n1 + 1)
    for i in range(n1 - 1, -1, -1):
        v = order1[i]
        later = sum(1 for nbr in query.neighbors(v) if pos1[nbr] > i)
        suffix_edges1[i] = suffix_edges1[i + 1] + later

    adj2 = {v: target.neighbors(v) for v in ids2}
    labels2 = [target.label(v) for v in ids2]

    def heuristic(depth: int, used_mask: int) -> int:
        rem1 = sorted(labels1[depth:])
        rem2 = sorted(labels2[j] for j in range(n2) if not used_mask >> j & 1)
        common = multiset_intersection_size(rem1, rem2)
        label_part = max(0, len(rem1) - common)
        rem2_ids = [ids2[j] for j in range(n2) if not used_mask >> j & 1]
        rem2_set = set(rem2_ids)
        e2_internal = sum(1 for v in rem2_ids for nbr in adj2[v] if nbr in rem2_set) // 2
        edge_part = max(0, suffix_edges1[depth] - e2_internal)
        return label_part + edge_part

    def extension_cost(
        depth: int, mapping: Tuple[int, ...], target_pos: Optional[int]
    ) -> int:
        v1 = order1[depth]
        cost = 0
        if target_pos is None:
            cost += 1  # delete the query vertex...
            # ...and every edge from it to already-processed query vertices.
            for earlier in range(depth):
                if query.has_edge(v1, order1[earlier]):
                    cost += 1
            return cost
        if labels1[depth] != labels2[target_pos]:
            cost += 1
        target_nbrs = adj2[ids2[target_pos]]
        for earlier in range(depth):
            u1 = order1[earlier]
            if not query.has_edge(v1, u1):
                continue  # g-side extra edges are free in subgraph semantics
            mapped = mapping[earlier]
            if mapped < 0 or ids2[mapped] not in target_nbrs:
                cost += 1  # query edge cannot be realised: delete it
        return cost

    counter = itertools.count()
    start_h = heuristic(0, 0)
    if threshold is not None and start_h > threshold:
        return None
    heap: List[Tuple[int, int, int, int, int, Tuple[int, ...]]] = [
        (start_h, next(counter), 0, 0, 0, ())
    ]
    expanded = 0
    while heap:
        f, _, g_cost, depth, used_mask, mapping = heapq.heappop(heap)
        if threshold is not None and f > threshold:
            return None
        if depth == n1:
            return g_cost  # no completion cost: unused g parts are free
        expanded += 1
        if expanded > budget:
            raise SearchBudgetExceeded(expanded, budget)
        successors: List[Tuple[int, int, Optional[int]]] = [
            (used_mask | (1 << j), j, j)
            for j in range(n2)
            if not used_mask >> j & 1
        ]
        successors.append((used_mask, -1, None))
        for new_mask, j, target_pos in successors:
            step = extension_cost(depth, mapping, target_pos)
            new_g = g_cost + step
            new_depth = depth + 1
            h = heuristic(new_depth, new_mask) if new_depth < n1 else 0
            total = new_g + h
            if threshold is None or total <= threshold:
                heapq.heappush(
                    heap,
                    (total, next(counter), new_g, new_depth, new_mask, mapping + (j,)),
                )
    return None if threshold is not None else 0


def subgraph_within(query: Graph, target: Graph, tau: int, *, budget: int = DEFAULT_BUDGET) -> bool:
    """True iff ``λ_sub(query, target) ≤ tau``."""
    return subgraph_edit_distance(query, target, threshold=tau, budget=budget) is not None


def is_subgraph_isomorphic(query: Graph, target: Graph, *, budget: int = DEFAULT_BUDGET) -> bool:
    """True iff *query* is subgraph-isomorphic to *target* (λ_sub = 0)."""
    return subgraph_within(query, target, 0, budget=budget)
