"""SEGOS core: two-level index, TA/CA search, engine facade, pipeline."""

from ..config import EngineConfig
from .bounds import SeenGraph
from .ca_search import CAResult, ca_range_query
from .engine import DEFAULT_K, QueryResult, SegosIndex
from .plan import (
    CAStage,
    ExecutionContext,
    QueryPlan,
    QuerySession,
    Stage,
    TAStage,
    VerifyStage,
    execute_plan,
    make_context,
)
from .explain import QueryExplanation, StarTrace, explain_range_query
from .join import JoinResult, similarity_join, similarity_self_join
from .knn import KnnResult, knn_query
from .verify import VerificationReport, verify_candidates
from .persistence import load_index, save_index
from .pipeline import PIPELINE_K, PipelinedSegos
from .subsearch import (
    SubgraphQueryResult,
    SubgraphSearch,
    sub_lower_bound,
    sub_mapping_distance,
    sub_star_distance,
)
from .graph_lists import GraphListEntry, QueryStarLists, build_all_lists
from .index import (
    GraphMeta,
    LowerEntry,
    LowerLevelIndex,
    StarCatalog,
    TwoLevelIndex,
    UpperEntry,
    UpperLevelIndex,
)
from .merge import merge_groups, merge_groups_eager
from .stats import QueryStats
from .ta_search import TopKResult, brute_force_top_k, top_k_stars

__all__ = [
    "CAResult",
    "CAStage",
    "DEFAULT_K",
    "EngineConfig",
    "ExecutionContext",
    "QueryPlan",
    "QuerySession",
    "Stage",
    "TAStage",
    "VerifyStage",
    "execute_plan",
    "make_context",
    "JoinResult",
    "KnnResult",
    "PIPELINE_K",
    "PipelinedSegos",
    "SubgraphQueryResult",
    "StarTrace",
    "SubgraphSearch",
    "VerificationReport",
    "GraphListEntry",
    "GraphMeta",
    "LowerEntry",
    "LowerLevelIndex",
    "QueryExplanation",
    "QueryResult",
    "QueryStarLists",
    "QueryStats",
    "SeenGraph",
    "SegosIndex",
    "StarCatalog",
    "TopKResult",
    "TwoLevelIndex",
    "UpperEntry",
    "UpperLevelIndex",
    "brute_force_top_k",
    "build_all_lists",
    "ca_range_query",
    "explain_range_query",
    "knn_query",
    "load_index",
    "merge_groups",
    "merge_groups_eager",
    "save_index",
    "similarity_join",
    "similarity_self_join",
    "sub_lower_bound",
    "sub_mapping_distance",
    "sub_star_distance",
    "top_k_stars",
    "verify_candidates",
]
