"""C-Star: the full-scan star filter of Zeng et al. [9] (PVLDB 2009).

C-Star is the method SEGOS builds on and the subject of Figure 19: for every
database graph it computes the mapping distance ``µ(q, g)`` with one
Hungarian run, prunes when the Lemma 2 lower bound ``L_m = µ/δ`` exceeds τ,
and confirms when the Lemma 3 upper bound falls within τ.  It has excellent
filtering power but, having no index, must touch *all* |D| graphs per query
— the scalability wall SEGOS exists to remove.
"""

from __future__ import annotations

from typing import List, Mapping, Set

from ..graphs.model import Graph, normalization_factor
from ..matching.mapping import edit_cost_under_mapping, mapping_result
from .base import FilterResult, RangeQueryMethod


class CStar(RangeQueryMethod):
    """Linear-scan star-based filter (no index)."""

    name = "C-Star"

    def range_query(self, query: Graph, *, tau: float) -> FilterResult:
        if query.order == 0:
            raise ValueError("query graph must not be empty")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        candidates: List[object] = []
        confirmed: Set[object] = set()
        accessed = 0
        for gid, graph in self.graphs.items():
            accessed += 1
            result = mapping_result(query, graph)
            delta = normalization_factor(query, graph)
            if result.distance / delta > tau:
                continue
            candidates.append(gid)
            upper = edit_cost_under_mapping(query, graph, result.vertex_mapping)
            if upper <= tau:
                confirmed.add(gid)
        return FilterResult(
            candidates=candidates, confirmed=confirmed, graphs_accessed=accessed
        )

    def index_size(self) -> int:
        """C-Star keeps no index at all."""
        return 0
