"""Beyond the paper: in-memory vs relational (SQLite) index backends.

Section IV-C claims the two-level index drops into either a dedicated
inverted-list engine or a relational database.  This bench quantifies the
trade on identical workloads: build time, index footprint, and query time
for both backends, with identical answers asserted.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Series, format_table
from repro.core.engine import SegosIndex
from repro.datasets import sample_queries

BACKENDS = ("memory", "sqlite")


def test_backend_comparison(benchmark, aids_dataset, grid, report):
    data = aids_dataset.subset(grid.default_db_size)
    graphs = {str(gid): g for gid, g in data.graphs.items()}
    queries = sample_queries(data, grid.query_count, seed=96)
    tau = grid.default_tau

    build = Series("build time (s)")
    query_time = Series("query time (s)")
    size = Series("index entries")
    engines = {}
    for backend in BACKENDS:
        started = time.perf_counter()
        engine = SegosIndex(
            graphs, k=grid.default_k, h=grid.default_h, backend=backend
        )
        build.add(backend, time.perf_counter() - started)
        size.add(backend, engine.index_size())
        engines[backend] = engine
        total = 0.0
        for query in queries:
            result = engine.range_query(query, tau=tau)
            total += result.elapsed
        query_time.add(backend, total / len(queries))

    # Both backends must give identical candidate sets.
    for query in queries:
        a = engines["memory"].range_query(query, tau=tau)
        b = engines["sqlite"].range_query(query, tau=tau)
        assert set(map(str, a.candidates)) == set(b.candidates)

    report(
        "backend_comparison",
        format_table(
            f"Index backends: memory vs sqlite (aids-like, τ={tau})",
            "backend",
            list(BACKENDS),
            [build, size, query_time],
        ),
    )
    benchmark.pedantic(
        lambda: engines["sqlite"].range_query(queries[0], tau=tau),
        rounds=1,
        iterations=1,
    )
    assert size.points["memory"] == size.points["sqlite"]
