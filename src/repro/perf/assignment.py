"""Pluggable assignment-problem backends behind one ``solve_assignment()``.

The mapping distance µ (Definition 1) is an assignment problem over the SED
cost matrix.  The reproduction ships its own O(n³) shortest-augmenting-path
solver (:mod:`repro.matching.hungarian`) so the package stays dependency
free, but when SciPy is installed its C implementation of
``linear_sum_assignment`` solves the same matrices several times faster.

This module is a tiny registry mapping backend names to solver callables
with the :func:`repro.matching.hungarian.hungarian` contract —
``matrix -> (total_cost, row_to_col)`` with ``-1`` for unassigned rows:

* ``pure``  — the in-tree Hungarian solver (always available);
* ``scipy`` — ``scipy.optimize.linear_sum_assignment``, falling back to
  ``pure`` gracefully when SciPy is absent;
* ``auto``  — ``scipy`` when importable, else ``pure`` (the default).

Selection precedence: explicit ``backend=`` argument, then the
``REPRO_ASSIGNMENT_BACKEND`` environment variable, then ``auto``.  All
backends return bit-identical totals on the integer-valued SED matrices the
engine produces (a property test asserts it), so switching backends never
changes filtering decisions.

Incremental column updates (the dynamic Hungarian of Theorem 1) stay on the
stateful pure solver — SciPy has no incremental mode — but every one-shot
solve (full µ, the C-Star linear fallback, and the one-shot partial mapping
distance) routes through here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ENV_ASSIGNMENT_BACKEND, env_raw

Matrix = Sequence[Sequence[float]]
AssignmentFn = Callable[[Matrix], Tuple[float, List[int]]]

#: Environment variable naming the default backend (pure / scipy / auto).
#: Alias of :data:`repro.config.ENV_ASSIGNMENT_BACKEND` (the config layer
#: owns the name; this module keeps its historical spelling).
ENV_BACKEND = ENV_ASSIGNMENT_BACKEND

_REGISTRY: Dict[str, AssignmentFn] = {}


def register_backend(name: str) -> Callable[[AssignmentFn], AssignmentFn]:
    """Decorator registering *name* in the backend registry."""

    def decorator(fn: AssignmentFn) -> AssignmentFn:
        _REGISTRY[name] = fn
        return fn

    return decorator


@register_backend("pure")
def _pure_backend(matrix: Matrix) -> Tuple[float, List[int]]:
    # Imported lazily: matching.mapping imports this module, so a top-level
    # import back into repro.matching would be circular.
    from ..matching.hungarian import hungarian

    return hungarian(matrix)


_scipy_lsa: Optional[Callable] = None
_scipy_checked = False


def _load_scipy() -> Optional[Callable]:
    """Return ``linear_sum_assignment`` or None when SciPy is unavailable."""
    global _scipy_lsa, _scipy_checked
    if not _scipy_checked:
        _scipy_checked = True
        try:
            from scipy.optimize import linear_sum_assignment

            _scipy_lsa = linear_sum_assignment
        except Exception:  # pragma: no cover - depends on the environment
            _scipy_lsa = None
    return _scipy_lsa


@register_backend("scipy")
def _scipy_backend(matrix: Matrix) -> Tuple[float, List[int]]:
    lsa = _load_scipy()
    if lsa is None:
        return _pure_backend(matrix)  # graceful degradation, same contract
    n = len(matrix)
    if n == 0:
        return 0.0, []
    if len(matrix[0]) == 0:
        raise ValueError("cost matrix has zero columns")
    row_ind, col_ind = lsa(matrix)
    total = 0.0
    row_to_col = [-1] * n
    for i, j in zip(row_ind, col_ind):
        row_to_col[int(i)] = int(j)
        total += matrix[int(i)][int(j)]
    return float(total), row_to_col


def scipy_available() -> bool:
    """True when the ``scipy`` backend would actually use SciPy."""
    return _load_scipy() is not None


def available_backends() -> Dict[str, bool]:
    """Registered backend names → whether they run natively (no fallback)."""
    return {
        name: (name != "scipy" or scipy_available()) for name in sorted(_REGISTRY)
    }


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name from argument / environment / ``auto``.

    Raises ``ValueError`` for names absent from the registry, so engines can
    fail fast at construction time instead of mid-query.
    """
    name = backend or env_raw(ENV_BACKEND) or "auto"
    if name == "auto":
        return "scipy" if scipy_available() else "pure"
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown assignment backend {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY))}, or 'auto')"
        )
    return name


def solve_assignment(
    matrix: Matrix, backend: Optional[str] = None
) -> Tuple[float, List[int]]:
    """Solve an assignment problem with the selected backend.

    Accepts any rectangular matrix; returns ``(total_cost, row_to_col)``
    with unassigned rows marked ``-1`` — exactly the
    :func:`repro.matching.hungarian.hungarian` contract.
    """
    return _REGISTRY[resolve_backend(backend)](matrix)
