"""Tests for the Algorithm-1 group merge."""

from __future__ import annotations

from repro.core.index import LowerEntry
from repro.core.merge import merge_groups, merge_groups_eager


def entry(sid, freq, size=1):
    return LowerEntry(sid=sid, freq=freq, leaf_size=size)


class TestMerge:
    def test_empty(self):
        assert merge_groups_eager([]) == []

    def test_single_group_passthrough(self):
        group = [entry(1, 5), entry(2, 3)]
        assert merge_groups_eager([group]) == group

    def test_merges_by_descending_frequency(self):
        g1 = [entry(1, 9), entry(2, 2)]
        g2 = [entry(3, 5), entry(4, 4)]
        merged = merge_groups_eager([g1, g2])
        assert [e.freq for e in merged] == [9, 5, 4, 2]

    def test_skips_empty_groups(self):
        merged = merge_groups_eager([[], [entry(1, 1)], []])
        assert [e.sid for e in merged] == [1]

    def test_deterministic_tiebreak(self):
        g1 = [entry(5, 3, size=2)]
        g2 = [entry(1, 3, size=2)]
        merged = merge_groups_eager([g1, g2])
        assert [e.sid for e in merged] == [1, 5]

    def test_lazy_iteration(self):
        stream = merge_groups([[entry(1, 2)], [entry(2, 1)]])
        assert next(stream).sid == 1
        assert next(stream).sid == 2

    def test_result_equals_global_sort(self):
        import random

        rng = random.Random(3)
        groups = []
        for size in (1, 2, 3):
            group = sorted(
                (entry(rng.randrange(100), rng.randrange(10), size) for _ in range(6)),
                key=lambda e: (-e.freq, e.leaf_size, e.sid),
            )
            groups.append(group)
        merged = merge_groups_eager(groups)
        expected = sorted(
            (e for g in groups for e in g),
            key=lambda e: (-e.freq, e.leaf_size, e.sid),
        )
        assert merged == expected
