#!/usr/bin/env python
"""Streaming-ingest durability benchmark: mutation throughput per fsync policy.

Standalone like the other benches so CI can smoke it without the test
harness::

    PYTHONPATH=src python benchmarks/bench_ingest_durability.py [--smoke]

Writes ``BENCH_ingest_durability.json`` at the repository root with, per
fsync policy (``always`` / ``batch`` / ``never``):

1. **sustained ingest** — a stream of interleaved inserts and deletes,
   each followed by ``save_index`` (delta appends, compacting when the
   journal overflows), timed end-to-end and reported as mutations/second
   alongside the exact number of ``os.fsync`` calls the policy issued —
   the knob's overhead is *measured*, not assumed;
2. **concurrent snapshot reads** — while the writer streams, a reader
   thread repeatedly reopens the pair with ``load_index`` and records
   ``(generation, source_sha, graphs)``.  Consistency means every
   ``(generation, sha)`` snapshot it ever observed maps to exactly one
   graph count — readers racing an in-place append may *degrade* to a
   rebuild, but two reads of the same snapshot can never disagree.

``--mode always`` / ``--mode batch`` / ``--mode never`` restrict the run
to one policy while keeping identical ``time_*`` keys, so two runs feed
``check_bench_regression.py`` directly — the CI leg proves ``always`` is
bounded relative to the ``never`` baseline.  ``--check-overhead`` (with
``--mode all``) exits non-zero unless the fsync counts are ordered the
way the policies promise: ``never`` issues zero, ``batch`` more, and
``always`` the most.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import FSYNC_POLICIES  # noqa: E402
from repro.core.engine import SegosIndex  # noqa: E402
from repro.core.persistence import load_index, save_index  # noqa: E402
from repro.datasets import aids_like  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ingest_durability.json"


class FsyncCounter:
    """Counts every ``os.fsync`` issued while installed (single-process)."""

    def __init__(self) -> None:
        self.calls = 0
        self._real = None

    def __enter__(self) -> "FsyncCounter":
        self._real = os.fsync

        def counting(fd):
            self.calls += 1
            return self._real(fd)

        os.fsync = counting
        return self

    def __exit__(self, *exc_info) -> None:
        os.fsync = self._real


def _reader_loop(path, stop, observations, errors):
    """Reopen the pair until told to stop, recording snapshot identities."""
    while not stop.is_set():
        try:
            engine = load_index(path)
        except Exception as exc:  # a reader crash is itself a finding
            errors.append(repr(exc))
            continue
        handle = engine.disk_handle()
        if handle is not None:
            observations.append(
                (handle.disk_generation, handle.source_sha, len(engine))
            )
        else:
            observations.append((None, None, len(engine)))


def bench_policy(workdir, policy, n, mutations, seed, with_reader):
    """One full ingest stream under *policy*; returns the report entry."""
    data = aids_like(n + mutations, seed=seed, mean_order=8, stddev=2)
    gids = sorted(data.graphs)
    base, extra = gids[:n], gids[n:]
    engine = SegosIndex(
        {gid: data.graphs[gid] for gid in base}, fsync_policy=policy
    )
    path = workdir / f"ingest-{policy}.segos"
    save_index(engine, path)

    stop = threading.Event()
    observations, errors = [], []
    reader = None
    if with_reader:
        reader = threading.Thread(
            target=_reader_loop, args=(path, stop, observations, errors),
            daemon=True,
        )
        reader.start()

    present = list(base)
    with FsyncCounter() as counter:
        started = time.perf_counter()
        for i in range(mutations):
            if i % 2 == 0 and extra:
                gid = extra.pop()
                engine.add(gid, data.graphs[gid])
                present.append(gid)
            else:
                engine.remove(present.pop(0))
            save_index(engine, path)
        elapsed = time.perf_counter() - started
    if reader is not None:
        stop.set()
        reader.join(timeout=30)

    # Snapshot consistency: one graph count per observed (generation, sha).
    snapshots = {}
    consistent = True
    for generation, sha, count in observations:
        if generation is None:
            continue
        key = (generation, sha)
        if snapshots.setdefault(key, count) != count:
            consistent = False
    final = load_index(path)
    assert sorted(map(str, final.gids())) == sorted(map(str, present)), (
        f"policy {policy}: final reload disagrees with the writer"
    )
    return {
        "policy": policy,
        "graphs": n,
        "mutations": mutations,
        "time_ingest_s": elapsed,
        "mutations_per_s": mutations / elapsed if elapsed else None,
        "fsync_calls": counter.calls,
        "reader": {
            "enabled": with_reader,
            "reads": len(observations),
            "mapped_reads": sum(1 for g, _, _ in observations if g is not None),
            "distinct_snapshots": len(snapshots),
            "snapshot_consistent": consistent,
            "errors": errors,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, CI import/sanity check"
    )
    parser.add_argument(
        "--mode",
        choices=("all",) + FSYNC_POLICIES,
        default="all",
        help="restrict to one fsync policy (identical time_* keys, for "
        "check_bench_regression.py)",
    )
    parser.add_argument(
        "--check-overhead",
        action="store_true",
        help="with --mode all: exit 1 unless fsync counts order as "
        "never(0) < batch <= always",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--graphs", type=int, default=None)
    parser.add_argument("--mutations", type=int, default=None)
    parser.add_argument(
        "--no-reader", action="store_true", help="skip the concurrent reader"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON report path"
    )
    args = parser.parse_args(argv)

    import tempfile

    n = args.graphs or (12 if args.smoke else 80)
    mutations = args.mutations or (8 if args.smoke else 60)
    policies = FSYNC_POLICIES if args.mode == "all" else (args.mode,)
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as tmp:
        workdir = Path(tmp)
        report = {
            "meta": {
                "bench": "ingest_durability",
                "smoke": args.smoke,
                "mode": args.mode,
                "seed": args.seed,
                "graphs": n,
                "mutations": mutations,
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            },
        }
        if args.mode == "all":
            report["policies"] = {
                policy: bench_policy(
                    workdir, policy, n, mutations, args.seed, not args.no_reader
                )
                for policy in policies
            }
        else:
            # Single-policy runs share one key shape so two of them feed
            # the regression gate directly.
            report["ingest"] = bench_policy(
                workdir, args.mode, n, mutations, args.seed, not args.no_reader
            )

    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)

    entries = (
        report["policies"].values() if args.mode == "all" else [report["ingest"]]
    )
    for entry in entries:
        if entry["reader"]["enabled"] and not entry["reader"]["snapshot_consistent"]:
            print(
                f"FAIL: policy {entry['policy']} served two different graph "
                f"counts for one (generation, sha) snapshot",
                file=sys.stderr,
            )
            return 1
    if args.check_overhead and args.mode == "all":
        counts = {p: report["policies"][p]["fsync_calls"] for p in FSYNC_POLICIES}
        ordered = counts["never"] == 0 < counts["batch"] <= counts["always"]
        if not ordered:
            print(f"FAIL: fsync counts out of order: {counts}", file=sys.stderr)
            return 1
        print(f"fsync counts ordered as promised: {counts}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
