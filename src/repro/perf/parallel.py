"""Process-parallel batch range queries (supervised worker pool).

The batch API of :meth:`repro.core.engine.SegosIndex.batch_range_query` is
embarrassingly parallel across queries: each range query only reads the
index.  CPython's GIL rules out thread-level speed-ups for this pure-Python
CPU-bound work, so the parallel path ships the engine to worker *processes*
once (via an executor initializer) and fans contiguous query chunks out to
them, preserving input order in the results.

Robustness contract (all supervised by :mod:`repro.resilience.pool`):

* engines that cannot be pickled (e.g. the sqlite backend holds a live
  connection) are detected up front and the caller falls back to the
  serial path — same answers, with the cause recorded as a
  :class:`~repro.resilience.telemetry.DegradationEvent` instead of being
  swallowed (a non-pickling-related error from a genuine bug propagates);
* a broken pool (worker killed, fork unavailable) is killed and
  re-spawned with bounded exponential-backoff retries; completed chunk
  results are **salvaged** — only the failed remainder is re-queued, or
  run serially in-process once the circuit breaker opens;
* hung workers are bounded by ``task_timeout`` (the worker is terminated,
  the task retried);
* genuine query errors (empty query graph, negative τ) propagate exactly
  as they would serially;
* every degradation is observable in ``QueryStats.degradations``.

Each chunk runs the engine's serial batch internally, so the shared-TA-cache
optimisation still applies within a chunk; per-query :class:`QueryStats`
come back intact and can be folded with
:meth:`repro.core.stats.QueryStats.merged`.

Worker count precedence: explicit ``workers=`` argument, then the
``REPRO_BATCH_WORKERS`` environment variable, then serial.
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..config import ENV_BATCH_WORKERS, EngineConfig, env_int
from ..errors import StaleSidecarError
from ..obs.metrics import GLOBAL_METRICS, record_query_metrics
from ..obs.trace import NULL_TRACER, activate
from ..resilience.faults import FaultPlan
from ..resilience.pool import PoolTask, ResiliencePolicy, run_supervised
from ..resilience.telemetry import DegradationEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..core.engine import QueryResult, SegosIndex
    from ..graphs.model import Graph

#: Environment variable supplying the default worker count (1 = serial).
#: Alias of :data:`repro.config.ENV_BATCH_WORKERS`.
ENV_WORKERS = ENV_BATCH_WORKERS

#: Exceptions that mean "this object cannot travel to a worker process".
#: Anything else raised while pickling is a genuine bug and propagates.
PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError, NotImplementedError)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count from argument / environment / serial."""
    if workers is None:
        workers = env_int(ENV_WORKERS, 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def effective_workers(requested: int, *, shards: Optional[int] = None) -> int:
    """Cap a *defaulted* worker count by what the machine can parallelise.

    Process pools only pay off with real cores to run on: on a 1-core box
    every pool worker time-slices the same CPU and the dispatch overhead is
    pure loss, so a defaulted count falls through to serial there.  On
    multi-core machines the count is capped at ``min(cpu_count, shards)``
    when scattering shards (more workers than shards would idle) and at
    ``cpu_count`` otherwise.

    This gate applies only to worker counts *defaulted* from the
    environment or engine config — an explicit per-call ``workers=`` is
    honoured verbatim, so tests and operators can force a pool anywhere.
    """
    cpu = os.cpu_count() or 1
    if cpu <= 1:
        return 1
    cap = cpu if shards is None else max(1, min(cpu, shards))
    return max(1, min(requested, cap))


def chunk_evenly(items: Sequence[Any], parts: int) -> List[List[Any]]:
    """Split *items* into ≤ *parts* contiguous, near-equal, non-empty chunks."""
    parts = min(parts, len(items))
    if parts <= 0:
        return []
    base, extra = divmod(len(items), parts)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


# The engine travels to each worker exactly once, through the executor
# initializer, and is cached as a per-process global.
_WORKER_ENGINE: Optional["SegosIndex"] = None


def _init_worker(engine_blob: bytes) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = pickle.loads(engine_blob)


def _init_worker_disk(handle) -> None:
    """Attach the worker's engine from the on-disk index (zero pickling).

    The worker memory-maps the same sidecar the parent holds, sharing its
    pages, and proves it reconstructed the *same* state: the deterministic
    replay generation and the source hash must both match the handle.  Any
    mismatch (an out-of-band writer, a deleted sidecar forcing a rebuild)
    raises — the supervised pool turns that into a retry and ultimately a
    serial salvage in the parent, never a silent divergence.
    """
    global _WORKER_ENGINE
    from ..core.persistence import load_index  # lazy: core.engine imports us

    engine = load_index(handle.graph_path, index_path=handle.index_path, mmap=True)
    attached = engine.disk_handle()
    if (
        attached is None
        or attached.disk_generation != handle.disk_generation
        or attached.source_sha != handle.source_sha
    ):
        raise StaleSidecarError(
            "worker attached a different state than the parent engine",
            path=handle.index_path,
            expected_generation=handle.disk_generation,
            found_generation=None if attached is None else attached.disk_generation,
            expected_sha=handle.source_sha,
            found_sha=None if attached is None else attached.source_sha,
        )
    _WORKER_ENGINE = engine


def _run_chunk(
    queries: List["Graph"], tau: float, kwargs: Dict[str, Any]
) -> List["QueryResult"]:
    assert _WORKER_ENGINE is not None, "worker initializer did not run"
    return _WORKER_ENGINE._serial_batch_range_query(queries, tau, **kwargs)


def _engine_config(engine) -> EngineConfig:
    """The resolved config of a batch front-end (engine or pipeline)."""
    config = getattr(engine, "config", None)
    if config is None:
        config = engine.engine.config  # PipelinedSegos wraps an engine
    return config


def parallel_batch_range_query(
    engine: "SegosIndex",
    queries: Sequence["Graph"],
    tau: float,
    *,
    workers: int,
    k: Optional[int] = None,
    h: Optional[int] = None,
    verify: str = "none",
    tracer=None,
) -> Tuple[Optional[List["QueryResult"]], List[DegradationEvent]]:
    """Fan a batch of range queries out over *workers* processes.

    Returns ``(results, degradations)``.  ``results`` is in input order;
    chunks the supervised pool could not finish (circuit breaker open) are
    salvaged by running only that remainder serially in-process.
    ``results`` is ``None`` only when process-parallel execution was
    impossible from the start (unpicklable engine) and the caller should
    run the whole batch serially — the cause is in ``degradations`` either
    way, for the caller to attach to its stats.

    An enabled *tracer* flows into the supervised pool (worker-side spans
    stitch into the caller's tree) and wraps salvage re-runs, and each
    worker-computed chunk's stats are folded into the parent's metrics
    registry — worker-process registries are discarded with the process.
    """
    config = _engine_config(engine)
    faults = FaultPlan.parse(config.fault_plan)
    policy = ResiliencePolicy.from_config(config)
    tracer = tracer if tracer is not None else NULL_TRACER
    events: List[DegradationEvent] = []

    def _note_event(event: DegradationEvent) -> None:
        if tracer.enabled:
            event.span_id = tracer.event(
                f"degradation:{event.point}",
                stage=event.stage,
                cause=event.cause,
                injected=event.injected,
                fallback=event.fallback,
            )
        events.append(event)

    # Transport selection: an engine whose on-disk index twin is still
    # current ships workers a tiny (path, generation) handle — they attach
    # the mapped sidecar and share its pages.  Everything else (engines
    # built in memory, mutated since the last save, non-string gids) takes
    # the legacy pickle-the-engine road.
    handle = None
    disk_handle = getattr(engine, "disk_handle", None)
    if disk_handle is not None:
        handle = disk_handle()
    if handle is not None:
        transport = "disk"
        initializer = _init_worker_disk
        initargs: Tuple[Any, ...] = (handle,)
    else:
        injected = faults.fire("pickle.engine", stage="batch")
        if injected is not None:
            _note_event(
                DegradationEvent(
                    point="pickle.engine",
                    stage="batch",
                    cause="injected fault: pickle.engine",
                    injected=True,
                    lost=len(queries),
                    fallback="serial",
                )
            )
            return None, events
        try:
            engine_blob = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
        except PICKLE_ERRORS as exc:  # e.g. sqlite backend: connections don't pickle
            _note_event(
                DegradationEvent(
                    point="pickle.engine",
                    stage="batch",
                    cause=repr(exc),
                    lost=len(queries),
                    fallback="serial",
                )
            )
            return None, events
        transport = "pickle"
        initializer = _init_worker
        initargs = (engine_blob,)

    chunks = chunk_evenly(queries, workers)
    # verify_workers pinned to 1: the batch already owns the process fan-out,
    # and the verify-worker knob is inherited by workers — without the pin
    # each chunk would nest a second pool per query.
    kwargs = {"k": k, "h": h, "verify": verify, "verify_workers": 1}
    tasks = [
        PoolTask(index, _run_chunk, (chunk, tau, kwargs))
        for index, chunk in enumerate(chunks)
    ]
    outcome = run_supervised(
        tasks,
        workers=len(chunks),
        policy=policy,
        initializer=initializer,
        initargs=initargs,
        faults=faults,
        stage="batch",
        tracer=tracer,
        transport=transport,
    )
    events.extend(outcome.events)

    results: List["QueryResult"] = []
    for index, chunk in enumerate(chunks):
        if index in outcome.results:
            chunk_results = outcome.results[index]
            if config.metrics:
                # Worker-process registries die with the worker; fold the
                # finished per-query stats into the parent's registry here.
                for result in chunk_results:
                    record_query_metrics(
                        GLOBAL_METRICS, result.stats, result.elapsed
                    )
            results.extend(chunk_results)
        elif tracer.enabled:
            # Per-chunk salvage: only the unfinished remainder runs
            # serially; every completed chunk's results are reused.
            with activate(tracer):
                with tracer.span("salvage.chunk", chunk=index, queries=len(chunk)):
                    results.extend(
                        engine._serial_batch_range_query(chunk, tau, **kwargs)
                    )
        else:
            results.extend(engine._serial_batch_range_query(chunk, tau, **kwargs))
    return results, events


# ---------------------------------------------------------------------------
# Sharded scatter-gather (see repro.perf.shard / repro.core.plan)
# ---------------------------------------------------------------------------

# Per-worker-process cache of attached shard engines, keyed by
# (view token, shard id).  Tokens are process-unique per built view, so a
# rebuilt view (generation bump) can never hit a stale entry.
_SHARD_ENGINES: Dict[Tuple[int, int], "SegosIndex"] = {}


def _run_shard_queries(
    shard_key: Tuple[int, int],
    transport: str,
    payload: Any,
    queries: List["Graph"],
    tau: float,
    kwargs: Dict[str, Any],
) -> List["QueryResult"]:
    """Worker-side shard task: attach (once) and answer this shard's queries.

    ``transport`` is ``"disk"`` (payload = the shard's DiskHandle; the
    worker memory-maps only that shard's sidecar) or ``"pickle"`` (payload
    = the pickled shard sub-engine).  Attached engines are cached per
    process per shard, so a batch re-dispatching to the same shard pays the
    attach exactly once.
    """
    engine = _SHARD_ENGINES.get(shard_key)
    if engine is None:
        if transport == "disk":
            from ..core.persistence import load_index  # lazy import cycle guard

            engine = load_index(
                payload.graph_path, index_path=payload.index_path, mmap=True
            )
            attached = engine.disk_handle()
            if (
                attached is None
                or attached.disk_generation != payload.disk_generation
                or attached.source_sha != payload.source_sha
            ):
                raise StaleSidecarError(
                    "shard worker attached a different state than the parent",
                    path=payload.index_path,
                    expected_generation=payload.disk_generation,
                    found_generation=(
                        None if attached is None else attached.disk_generation
                    ),
                    expected_sha=payload.source_sha,
                    found_sha=None if attached is None else attached.source_sha,
                )
        else:
            engine = pickle.loads(payload)
        _SHARD_ENGINES[shard_key] = engine
    return engine._serial_batch_range_query(list(queries), tau, **kwargs)


def sharded_batch_range_query(
    engine: "SegosIndex",
    view,
    queries: Sequence["Graph"],
    tau: float,
    *,
    workers: int,
    k: Optional[int] = None,
    h: Optional[int] = None,
    verify: str = "none",
    tracer=None,
) -> Tuple[Optional[List[List[Tuple[int, "QueryResult"]]]], List[DegradationEvent]]:
    """Scatter a batch per *shard* through the supervised pool and gather.

    One :class:`PoolTask` per surviving shard; the parent computes every
    query's pivot skips up front and ships each shard only the queries its
    pivots did not rule out.  Returns ``(per_query, degradations)`` where
    ``per_query[i]`` is the list of ``(shard_id, QueryResult)`` pairs for
    ``queries[i]`` — the caller merges them under the global bounds
    (:func:`repro.core.plan.merge_shard_results`).  ``None`` means process
    scatter was impossible from the start (a shard that can neither ride a
    DiskHandle nor pickle) and the caller should run serially; a shard the
    pool *lost* degrades loudly instead: its queries are salvaged serially
    in-process on the parent's shard sub-engine, with the cause recorded.
    """
    config = _engine_config(engine)
    faults = FaultPlan.parse(config.fault_plan)
    policy = ResiliencePolicy.from_config(config)
    tracer = tracer if tracer is not None else NULL_TRACER
    events: List[DegradationEvent] = []

    live = view.live_shards()
    # Per-query shard skips from the pivot floors (empty when pivots off).
    skips = [view.skips(query, tau, backend=config.assignment_backend)
             for query in queries]
    assignments: List[Tuple[Any, List[int]]] = []
    for shard in live:
        indices = [i for i in range(len(queries)) if shard.shard_id not in skips[i]]
        if indices:
            assignments.append((shard, indices))

    # Transport per shard: a shard persisted via persist_shards() carries a
    # valid DiskHandle → ship the ticket; otherwise pickle the sub-engine.
    tasks: List[PoolTask] = []
    transports = set()
    kwargs = {"k": k, "h": h, "verify": verify, "verify_workers": 1}
    for shard, indices in assignments:
        handle = shard.engine.disk_handle()
        if handle is not None:
            transport, payload = "disk", handle
        else:
            try:
                payload = pickle.dumps(
                    shard.engine, protocol=pickle.HIGHEST_PROTOCOL
                )
            except PICKLE_ERRORS as exc:
                events.append(
                    DegradationEvent(
                        point="pickle.shard",
                        stage="shard-batch",
                        cause=repr(exc),
                        lost=len(queries),
                        fallback="serial",
                    )
                )
                return None, events
            transport = "pickle"
        transports.add(transport)
        tasks.append(
            PoolTask(
                shard.shard_id,
                _run_shard_queries,
                (
                    (view.token, shard.shard_id),
                    transport,
                    payload,
                    [queries[i] for i in indices],
                    tau,
                    kwargs,
                ),
            )
        )

    outcome = run_supervised(
        tasks,
        workers=min(workers, max(1, len(tasks))),
        policy=policy,
        faults=faults,
        stage="shard-batch",
        tracer=tracer,
        transport="+".join(sorted(transports)),
    )
    events.extend(outcome.events)

    per_query: List[List[Tuple[int, "QueryResult"]]] = [[] for _ in queries]
    for shard, indices in assignments:
        if shard.shard_id in outcome.results:
            shard_results = outcome.results[shard.shard_id]
        else:
            # Loud per-shard salvage: the pool lost this shard (its events
            # are already recorded above); re-run only its queries serially
            # on the parent's in-process shard sub-engine.
            if tracer.enabled:
                with activate(tracer):
                    with tracer.span(
                        "salvage.shard", shard=shard.shard_id, queries=len(indices)
                    ):
                        shard_results = shard.engine._serial_batch_range_query(
                            [queries[i] for i in indices], tau, **kwargs
                        )
            else:
                shard_results = shard.engine._serial_batch_range_query(
                    [queries[i] for i in indices], tau, **kwargs
                )
        for position, query_index in enumerate(indices):
            per_query[query_index].append(
                (shard.shard_id, shard_results[position])
            )
    return per_query, events
