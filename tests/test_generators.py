"""Tests for the synthetic corpus generators."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import (
    AIDS_LABEL_COUNT,
    PDG_LABEL_COUNT,
    chemical_like,
    corpus,
    erdos_renyi,
    make_label_alphabet,
    mutate,
    normal_order,
    pdg_like,
    random_tree,
    uniform_order,
)


class TestAlphabet:
    def test_count_and_uniqueness(self):
        labels = make_label_alphabet(63)
        assert len(labels) == 63
        assert len(set(labels)) == 63

    def test_lexicographic_equals_numeric_order(self):
        labels = make_label_alphabet(120)
        assert labels == sorted(labels)

    def test_prefix(self):
        assert make_label_alphabet(3, prefix="Q") == ["Q0", "Q1", "Q2"]


class TestGenerators:
    def test_random_tree_is_connected_tree(self, rng):
        g = random_tree(rng, "abc", 12)
        assert g.order == 12
        assert g.size == 11
        assert g.is_connected()

    def test_random_tree_preferential(self, rng):
        g = random_tree(rng, "abc", 30, attach_power=2.0)
        assert g.is_connected()

    def test_random_tree_order_one(self, rng):
        assert random_tree(rng, "ab", 1).order == 1

    def test_random_tree_invalid_order(self, rng):
        with pytest.raises(ValueError):
            random_tree(rng, "ab", 0)

    def test_chemical_like_connected_and_sparse(self, rng):
        for _ in range(5):
            g = chemical_like(rng, make_label_alphabet(63), 20)
            assert g.is_connected()
            assert g.size <= 2 * g.order  # sparse

    def test_pdg_like_connected(self, rng):
        g = pdg_like(rng, make_label_alphabet(36), 25)
        assert g.is_connected()
        assert g.order == 25

    def test_erdos_renyi_edge_probability_extremes(self, rng):
        empty = erdos_renyi(rng, "ab", 6, 0.0)
        full = erdos_renyi(rng, "ab", 6, 1.0)
        assert empty.size == 0
        assert full.size == 15

    def test_order_samplers(self, rng):
        assert normal_order(rng, 10, 0, minimum=1) == 10
        assert normal_order(rng, -5, 0, minimum=3) == 3
        assert 2 <= uniform_order(rng, 2, 4) <= 4


class TestCorpus:
    def test_chemical_corpus_shape(self):
        rng = random.Random(1)
        graphs = corpus(rng, 40, kind="chemical", mean_order=12, stddev=3)
        assert len(graphs) == 40
        mean = statistics.mean(g.order for g in graphs)
        assert 9 <= mean <= 15

    def test_pdg_corpus_uniform_sizes(self):
        rng = random.Random(2)
        graphs = corpus(rng, 40, kind="pdg", mean_order=10, min_order=5)
        orders = [g.order for g in graphs]
        assert min(orders) >= 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            corpus(random.Random(0), 1, kind="nope")

    def test_label_counts_default_to_paper_values(self):
        rng = random.Random(3)
        chem = corpus(rng, 20, kind="chemical")
        labels = {lbl for g in chem for lbl in g.labels().values()}
        alphabet = set(make_label_alphabet(AIDS_LABEL_COUNT, prefix="C"))
        assert labels <= alphabet
        pdg = corpus(rng, 20, kind="pdg")
        labels = {lbl for g in pdg for lbl in g.labels().values()}
        assert labels <= set(make_label_alphabet(PDG_LABEL_COUNT, prefix="P"))

    def test_deterministic_given_seed(self):
        a = corpus(random.Random(7), 5, kind="chemical")
        b = corpus(random.Random(7), 5, kind="chemical")
        assert a == b


class TestMutate:
    def test_zero_edits_is_copy(self, rng):
        g = chemical_like(rng, "abc", 8)
        m = mutate(rng, g, 0, "abc")
        assert m == g
        assert m is not g

    def test_edit_distance_bounded_by_edits(self, rng):
        """λ(g, mutate(g, j)) ≤ j — the recall-probe guarantee."""
        for _ in range(10):
            g = erdos_renyi(rng, "abc", rng.randint(2, 5), 0.4)
            edits = rng.randint(0, 3)
            m = mutate(rng, g, edits, "abc")
            assert graph_edit_distance(g, m) <= edits

    def test_original_untouched(self, rng):
        g = chemical_like(rng, "abc", 8)
        snapshot = g.copy()
        mutate(rng, g, 5, "abc")
        assert g == snapshot

    def test_keep_connected(self, rng):
        g = random_tree(rng, "abc", 10)
        for _ in range(5):
            m = mutate(rng, g, 4, "abc", keep_connected=True)
            assert m.is_connected()
