"""Verification scheduling for filter-and-verify pipelines.

GED verification is NP-hard, so *order matters*: verifying the most
promising candidates first produces answers early, and per-candidate
budgets stop one pathological pair from starving the rest.  The paper
leaves verification implicit ("candidates verification using the GED is an
extremely expensive process"); this module makes it a first-class,
schedulable step:

* candidates are verified in increasing ``L_m`` order (most similar first);
* candidates whose ``U_m ≤ τ`` are admitted without any A* at all;
* candidates whose ``L_m > τ`` (possible when the filter admitted them via
  an aggregation shortcut) are rejected without A*;
* each A* run gets a state budget; blown budgets are reported as
  ``undecided`` rather than crashing the batch;
* with ``workers > 1`` (or ``REPRO_VERIFY_WORKERS``) the A* runs fan out
  over a process pool.  The bounds stage stays in-process (it is cheap and
  prunes most of the batch); the surviving runs are dispatched in the same
  ``L_m``-ascending priority order, each with its budget intact, and the
  deadline bounds how long results are awaited.  Engines or graphs that
  cannot be pickled degrade to the serial path with identical answers.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import SearchBudgetExceeded
from ..graphs.edit_distance import graph_edit_distance
from ..graphs.model import Graph
from ..config import ENV_VERIFY_WORKERS, env_int
from ..matching.mapping import bounds as mapping_bounds

#: Default per-candidate A* state budget for *direct* verify_candidates
#: calls; engine-driven verification uses ``EngineConfig.verify_budget``.
DEFAULT_VERIFY_BUDGET = 200_000


def resolve_verify_workers(workers: Optional[int] = None) -> int:
    """Resolve the verify worker count from argument / environment / serial."""
    if workers is None:
        workers = env_int(ENV_VERIFY_WORKERS, 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


@dataclass
class VerificationReport:
    """Outcome of verifying a candidate set."""

    matches: Set[object] = field(default_factory=set)
    rejected: Set[object] = field(default_factory=set)
    undecided: Set[object] = field(default_factory=set)
    #: how many candidates were settled by bounds alone (no A* run)
    settled_by_bounds: int = 0
    astar_runs: int = 0
    elapsed: float = 0.0
    #: worker processes the A* stage actually ran on (1 = in-process)
    workers_used: int = 1

    def decided(self) -> bool:
        """True when no candidate was left undecided."""
        return not self.undecided


def _astar_outcome(query: Graph, graph: Graph, tau: int, budget: int) -> str:
    """One A* run folded to its scheduling outcome."""
    try:
        distance = graph_edit_distance(query, graph, threshold=tau, budget=budget)
    except SearchBudgetExceeded:
        return "undecided"
    return "match" if distance is not None else "rejected"


# The query/τ/budget triple travels to each worker exactly once through the
# executor initializer; tasks then carry only (gid, graph).
_WORKER_CTX: Optional[Tuple[Graph, int, int]] = None


def _init_verify_worker(blob: bytes) -> None:
    global _WORKER_CTX
    _WORKER_CTX = pickle.loads(blob)


def _run_verify_task(gid: object, graph: Graph) -> Tuple[object, str]:
    assert _WORKER_CTX is not None, "verify worker initializer did not run"
    query, tau, budget = _WORKER_CTX
    return gid, _astar_outcome(query, graph, tau, budget)


def _parallel_astar(
    graphs: Mapping[object, Graph],
    query: Graph,
    scheduled: Sequence[Tuple[float, object]],
    tau: int,
    budget: int,
    deadline: Optional[float],
    started: float,
    workers: int,
    report: VerificationReport,
) -> bool:
    """Fan the scheduled A* runs out over *workers* processes.

    Returns False when parallel execution is impossible (unpicklable
    payload, broken pool) so the caller falls back to the serial loop.
    Priority is preserved by submitting in ``L_m`` order: the pool pops
    tasks FIFO, so the most promising candidates still run first.
    """
    try:
        ctx_blob = pickle.dumps(
            (query, tau, budget), protocol=pickle.HIGHEST_PROTOCOL
        )
        task_args = [(gid, graphs[gid]) for _, gid in scheduled]
        pickle.dumps(task_args[0], protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    outcomes: Dict[object, str] = {}
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(scheduled)),
            initializer=_init_verify_worker,
            initargs=(ctx_blob,),
        ) as pool:
            futures = [
                pool.submit(_run_verify_task, gid, graph) for gid, graph in task_args
            ]
            for future in futures:
                if deadline is not None:
                    remaining = deadline - (time.perf_counter() - started)
                    if remaining <= 0:
                        # Past the deadline: whatever has not produced a
                        # result yet is undecided, exactly as the serial
                        # path stops scheduling new runs.
                        if not future.done():
                            future.cancel()
                            continue
                    try:
                        gid, outcome = future.result(timeout=max(remaining, 0))
                    except FutureTimeoutError:
                        future.cancel()
                        continue
                else:
                    gid, outcome = future.result()
                outcomes[gid] = outcome
    except (BrokenProcessPool, OSError, pickle.PicklingError):
        return False
    for _, gid in scheduled:
        outcome = outcomes.get(gid)
        if outcome is None:
            report.undecided.add(gid)
            continue
        report.astar_runs += 1
        if outcome == "match":
            report.matches.add(gid)
        elif outcome == "rejected":
            report.rejected.add(gid)
        else:
            report.undecided.add(gid)
    report.workers_used = min(workers, len(scheduled))
    return True


def verify_candidates(
    graphs: Mapping[object, Graph],
    query: Graph,
    candidates: Sequence[object],
    tau: int,
    *,
    already_confirmed: Sequence[object] = (),
    budget_per_candidate: int = DEFAULT_VERIFY_BUDGET,
    deadline: Optional[float] = None,
    workers: Optional[int] = None,
    assignment_backend: Optional[str] = None,
) -> VerificationReport:
    """Verify *candidates* against ``λ(query, ·) ≤ tau``.

    ``already_confirmed`` entries (e.g. upper-bound hits from the filter)
    are admitted directly.  ``deadline`` (seconds) stops scheduling new A*
    runs once exceeded; unprocessed candidates end up ``undecided``.
    ``workers`` (default: the ``REPRO_VERIFY_WORKERS`` environment
    variable) above 1 dispatches the A* runs to a process pool.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> g = Graph(["a", "b"], [(0, 1)])
    >>> report = verify_candidates({"g": g}, g, ["g"], 0)
    >>> report.matches
    {'g'}
    """
    if tau < 0:
        raise ValueError("tau must be non-negative")
    started = time.perf_counter()
    report = VerificationReport()
    report.matches.update(already_confirmed)

    # Compute bounds once per candidate; schedule by increasing L_m.
    scheduled: List[Tuple[float, object]] = []
    for gid in candidates:
        if gid in report.matches:
            continue
        l_m, u_m, _ = mapping_bounds(
            query, graphs[gid], backend=assignment_backend
        )
        if u_m <= tau:
            report.matches.add(gid)
            report.settled_by_bounds += 1
        elif l_m > tau:
            report.rejected.add(gid)
            report.settled_by_bounds += 1
        else:
            scheduled.append((l_m, gid))
    scheduled.sort(key=lambda item: (item[0], str(item[1])))

    workers = resolve_verify_workers(workers)
    if workers > 1 and len(scheduled) > 1:
        if _parallel_astar(
            graphs,
            query,
            scheduled,
            tau,
            budget_per_candidate,
            deadline,
            started,
            workers,
            report,
        ):
            report.elapsed = time.perf_counter() - started
            return report

    for l_m, gid in scheduled:
        if deadline is not None and time.perf_counter() - started > deadline:
            report.undecided.add(gid)
            continue
        report.astar_runs += 1
        outcome = _astar_outcome(query, graphs[gid], tau, budget_per_candidate)
        if outcome == "match":
            report.matches.add(gid)
        elif outcome == "rejected":
            report.rejected.add(gid)
        else:
            report.undecided.add(gid)
    report.elapsed = time.perf_counter() - started
    return report
