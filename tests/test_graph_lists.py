"""Tests for the CA graph score-list construction (Section V-B)."""

from __future__ import annotations

import pytest

from repro.core.graph_lists import build_all_lists, build_query_star_lists
from repro.core.index import TwoLevelIndex
from repro.core.ta_search import top_k_stars
from repro.graphs.model import Graph
from repro.graphs.star import Star, decompose, epsilon_distance


@pytest.fixture
def paper_index(paper_g1, paper_g2):
    index = TwoLevelIndex()
    index.add_graph("g1", paper_g1, decompose(paper_g1))
    index.add_graph("g2", paper_g2, decompose(paper_g2))
    return index


class TestBuildLists:
    def test_figure9_small_large_split(self, paper_index, paper_g1):
        """Figure 9: lists for q = g1 split at |q| = 5; g1 small, g2 large."""
        query_star = Star("c", "ab")  # q: s5
        topk = top_k_stars(paper_index, query_star, 2)
        lists = build_query_star_lists(paper_index, query_star, 5, topk)
        assert all(e.gid == "g1" for e in lists.small)
        assert all(e.gid == "g2" for e in lists.large)
        # Top-2 of s5 = {s5: 0, s2: 1}; both have postings on both sides.
        assert [e.sed for e in lists.small] == [0, 1]
        assert [e.sed for e in lists.large] == [0, 1]
        # The SED-ascending order within a side is what CA relies on.
        assert [e.freq for e in lists.small] == [2, 1]

    def test_small_side_epsilon_discard(self, paper_index):
        """Small-side segments with SED > λ(s_q, ε) are dropped (§V-B)."""
        tiny = Star("a")  # ε distance 1: almost everything exceeds it
        topk = top_k_stars(paper_index, tiny, 7)
        lists = build_query_star_lists(paper_index, tiny, 99, topk)
        eps = epsilon_distance(tiny)
        assert all(e.sed <= eps for e in lists.small)
        # The large side keeps everything (no ε alignment there).
        kept_small = {e.sid for e in lists.small}
        assert len(kept_small) < len(topk.entries)

    def test_entries_sed_ascending(self, paper_index, paper_g1):
        lists = build_all_lists(paper_index, decompose(paper_g1), 5, 5)
        for ql in lists:
            for side in (ql.small, ql.large):
                seds = [e.sed for e in side]
                assert seds == sorted(seds)

    def test_duplicate_query_stars_share_ta(self, paper_index, paper_g1):
        accesses = []
        lists = build_all_lists(
            paper_index, decompose(paper_g1), 5, 3, ta_accesses=accesses
        )
        # g1 has 5 stars but s5 appears twice: only 4 TA searches run.
        assert len(lists) == 5
        assert len(accesses) == 4

    def test_exhausted_bounds(self, paper_index):
        star = Star("c", "ab")
        topk = top_k_stars(paper_index, star, 2)
        lists = build_query_star_lists(paper_index, star, 5, topk)
        assert lists.exhausted_small_bound() <= lists.exhausted_large_bound() or (
            lists.exhausted_small_bound() == min(lists.kth_sed, lists.epsilon)
        )
        assert lists.epsilon == epsilon_distance(star)

    def test_unindexed_star_yields_empty_lists(self, paper_index):
        missing = Star("zz", ["zz"])
        topk = top_k_stars(paper_index, missing, 1)
        lists = build_query_star_lists(paper_index, missing, 5, topk)
        # Top-1 exists (some nearest star) and has postings; but a star id
        # with no postings would produce empty sides — simulate via k=1 on
        # an empty index.
        empty = TwoLevelIndex()
        empty_topk = top_k_stars(empty, missing, 1)
        empty_lists = build_query_star_lists(empty, missing, 5, empty_topk)
        assert empty_lists.small == [] and empty_lists.large == []
        assert empty_lists.kth_sed == float("inf")
