"""Tests for the dataset harness."""

from __future__ import annotations

import statistics

import pytest

from repro.datasets import Dataset, aids_like, pdg_like, sample_queries
from repro.graphs.edit_distance import graph_edit_distance


class TestCorpora:
    def test_aids_like_shape(self):
        data = aids_like(50, seed=1, mean_order=10, stddev=2)
        assert len(data) == 50
        assert data.name == "aids-like"
        assert len(data.labels) == 63
        assert 8 <= data.average_order() <= 12

    def test_pdg_like_shape(self):
        data = pdg_like(50, seed=1, mean_order=10, min_order=6)
        assert len(data) == 50
        assert len(data.labels) == 36
        assert all(g.order >= 6 for g in data.graphs.values())

    def test_deterministic_by_seed(self):
        a = aids_like(10, seed=42)
        b = aids_like(10, seed=42)
        assert list(a.graphs) == list(b.graphs)
        assert all(a.graphs[k] == b.graphs[k] for k in a.graphs)

    def test_different_seeds_differ(self):
        a = aids_like(10, seed=1)
        b = aids_like(10, seed=2)
        assert any(a.graphs[k] != b.graphs[k] for k in a.graphs)

    def test_size_distribution_kinds(self):
        """AIDS-like is normal-ish (non-trivial spread around the mean);
        PDG-like is uniform over its range."""
        aids = aids_like(300, seed=3, mean_order=12, stddev=3)
        pdg = pdg_like(300, seed=3, mean_order=12, min_order=6)
        aids_orders = [g.order for g in aids.graphs.values()]
        pdg_orders = [g.order for g in pdg.graphs.values()]
        assert statistics.stdev(aids_orders) > 1.5
        # Uniform over [6, ~18]: every size bucket populated.
        assert len(set(pdg_orders)) >= 8


class TestSubset:
    def test_subset_is_stable_prefix(self):
        data = aids_like(20, seed=5)
        sub = data.subset(7)
        assert len(sub) == 7
        assert list(sub.graphs) == list(data.graphs)[:7]

    def test_subset_too_large(self):
        with pytest.raises(ValueError):
            aids_like(5, seed=5).subset(6)


class TestQueries:
    def test_sample_queries_count(self):
        data = aids_like(20, seed=6)
        queries = sample_queries(data, 4, seed=1)
        assert len(queries) == 4

    def test_queries_are_copies(self):
        data = aids_like(5, seed=7)
        queries = sample_queries(data, 1, seed=1)
        queries[0].relabel_vertex(next(iter(queries[0].vertices())), "XX")
        assert all("XX" not in g.labels().values() for g in data.graphs.values())

    def test_mutated_queries_within_edit_budget(self):
        data = aids_like(10, seed=8, mean_order=6, stddev=1)
        queries = sample_queries(data, 3, seed=2, edits=2)
        for query in queries:
            best = min(
                graph_edit_distance(query, g, threshold=2) or 99
                for g in data.graphs.values()
            )
            assert best <= 2

    def test_empty_dataset_rejected(self):
        empty = Dataset(name="x", graphs={}, labels=[], seed=0)
        with pytest.raises(ValueError):
            sample_queries(empty, 1)
