"""Edit-script extraction and replay.

The mapping distance gives more than a number: the Hungarian star alignment
induces a vertex mapping ``P``, and ``P`` induces a concrete edit script —
the actual relabel/insert/delete operations transforming one graph into the
other (Lemma 3 prices exactly this script).  This module materialises that
script and can replay it, which gives the test suite a strong end-to-end
check (*applying the script must really produce the target, and its length
must equal the Lemma 3 bound*) and gives users diff-like output.

Operations are plain frozen dataclasses; a script is a list ordered so
replay is always valid: relabels, then edge deletions, then vertex
deletions, then vertex insertions, then edge insertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from .model import Graph
from ..matching.mapping import MappingResult, mapping_result


@dataclass(frozen=True)
class RelabelVertex:
    vertex: int
    old_label: str
    new_label: str


@dataclass(frozen=True)
class DeleteVertex:
    vertex: int


@dataclass(frozen=True)
class InsertVertex:
    vertex: int
    label: str


@dataclass(frozen=True)
class DeleteEdge:
    u: int
    v: int


@dataclass(frozen=True)
class InsertEdge:
    u: int
    v: int


EditOperation = Union[RelabelVertex, DeleteVertex, InsertVertex, DeleteEdge, InsertEdge]


def edit_script_from_mapping(
    source: Graph, target: Graph, vertex_mapping: Dict[int, Optional[int]]
) -> List[EditOperation]:
    """Materialise the edit script induced by a vertex mapping.

    ``vertex_mapping`` maps source vertices to target vertices (None = the
    vertex is deleted); unmatched target vertices are inserted.  The script
    operates on *source's* vertex ids; inserted vertices get fresh ids
    (recorded in the InsertVertex ops), and inserted edges refer to ids
    after all insertions.

    The script's length equals the Lemma 3 edit cost
    (:func:`repro.matching.mapping.edit_cost_under_mapping`); a test pins
    that equality and that replaying yields a graph isomorphic to *target*.
    """
    script: List[EditOperation] = []
    image: Dict[int, int] = {
        v1: v2 for v1, v2 in vertex_mapping.items() if v2 is not None
    }
    reverse: Dict[int, int] = {v2: v1 for v1, v2 in image.items()}

    # 1. Relabels for mapped vertices whose labels differ.
    for v1, v2 in image.items():
        if source.label(v1) != target.label(v2):
            script.append(RelabelVertex(v1, source.label(v1), target.label(v2)))

    # 2. Edge deletions: source edges not preserved by the mapping.
    preserved = set()
    for u, v in source.edges():
        iu, iv = image.get(u), image.get(v)
        if iu is not None and iv is not None and target.has_edge(iu, iv):
            preserved.add((min(u, v), max(u, v)))
        else:
            script.append(DeleteEdge(u, v))

    # 3. Vertex deletions (their incident edges are all deleted above).
    deleted = [v1 for v1, v2 in vertex_mapping.items() if v2 is None]
    for v1 in sorted(deleted):
        script.append(DeleteVertex(v1))

    # 4. Vertex insertions for unmatched target vertices, at fresh ids.
    next_id = max(list(source.vertices()) or [-1]) + 1
    for v2 in target.vertices():
        if v2 not in reverse:
            script.append(InsertVertex(next_id, target.label(v2)))
            reverse[v2] = next_id
            next_id += 1

    # 5. Edge insertions: target edges not preserved.
    for u2, v2 in target.edges():
        u1, v1 = reverse[u2], reverse[v2]
        key = (min(u1, v1), max(u1, v1))
        if key not in preserved:
            script.append(InsertEdge(u1, v1))
    return script


def extract_edit_script(
    source: Graph, target: Graph, result: Optional[MappingResult] = None
) -> List[EditOperation]:
    """Edit script from the optimal star alignment (the Lemma 3 witness)."""
    if result is None:
        result = mapping_result(source, target)
    return edit_script_from_mapping(source, target, result.vertex_mapping)


def apply_edit_script(graph: Graph, script: List[EditOperation]) -> Graph:
    """Replay *script* on a copy of *graph* and return the result."""
    out = graph.copy()
    for op in script:
        if isinstance(op, RelabelVertex):
            out.relabel_vertex(op.vertex, op.new_label)
        elif isinstance(op, DeleteEdge):
            out.remove_edge(op.u, op.v)
        elif isinstance(op, DeleteVertex):
            out.remove_vertex(op.vertex)
        elif isinstance(op, InsertVertex):
            out.add_vertex(op.vertex, op.label)
        elif isinstance(op, InsertEdge):
            out.add_edge(op.u, op.v)
        else:  # pragma: no cover - closed union
            raise TypeError(f"unknown edit operation {op!r}")
    return out


def render_edit_script(script: List[EditOperation]) -> str:
    """Human-readable one-op-per-line rendering."""
    lines: List[str] = []
    for op in script:
        if isinstance(op, RelabelVertex):
            lines.append(f"relabel v{op.vertex}: {op.old_label} -> {op.new_label}")
        elif isinstance(op, DeleteEdge):
            lines.append(f"delete edge ({op.u}, {op.v})")
        elif isinstance(op, DeleteVertex):
            lines.append(f"delete vertex v{op.vertex}")
        elif isinstance(op, InsertVertex):
            lines.append(f"insert vertex v{op.vertex} label {op.label}")
        elif isinstance(op, InsertEdge):
            lines.append(f"insert edge ({op.u}, {op.v})")
    return "\n".join(lines)
