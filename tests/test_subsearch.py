"""Tests for the SEGOS subgraph-similarity extension (adapted bounds)."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SegosIndex
from repro.core.subsearch import (
    SubgraphSearch,
    sub_lower_bound,
    sub_mapping_distance,
    sub_star_distance,
)
from repro.graphs.generators import corpus, erdos_renyi
from repro.graphs.model import Graph, normalization_factor
from repro.graphs.star import Star, decompose
from repro.graphs.subgraph_distance import subgraph_edit_distance


@pytest.fixture(scope="module")
def sub_setup():
    rng = random.Random(66)
    graphs = {
        f"g{i}": g
        for i, g in enumerate(
            corpus(rng, 20, kind="chemical", mean_order=7, stddev=2)
        )
    }
    engine = SegosIndex(graphs)
    return rng, graphs, engine, SubgraphSearch(engine, k=10)


class TestSubStarDistance:
    def test_contained_star_is_free(self):
        assert sub_star_distance(Star("a", "bc"), Star("a", "bcd")) == 0

    def test_root_mismatch(self):
        assert sub_star_distance(Star("a", "b"), Star("c", "b")) == 1

    def test_missing_leaves(self):
        assert sub_star_distance(Star("a", "bbb"), Star("a", "b")) == 2

    def test_never_exceeds_plain_sed(self):
        from repro.graphs.star import star_edit_distance

        rng = random.Random(0)
        for _ in range(50):
            s1 = Star(rng.choice("ab"), [rng.choice("abc") for _ in range(rng.randint(0, 4))])
            s2 = Star(rng.choice("ab"), [rng.choice("abc") for _ in range(rng.randint(0, 4))])
            assert sub_star_distance(s1, s2) <= star_edit_distance(s1, s2)


class TestSubMappingBound:
    def test_lower_bounds_exact_sub_ged(self, rng):
        for _ in range(12):
            q = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            g = erdos_renyi(rng, "abc", rng.randint(1, 5), 0.4)
            exact = subgraph_edit_distance(q, g)
            bound = sub_mapping_distance(q, g) / normalization_factor(q, g)
            assert bound <= exact + 1e-9

    def test_zero_for_contained_query(self, paper_g1, paper_g2):
        assert sub_mapping_distance(paper_g1, paper_g2) == 0
        assert sub_lower_bound(paper_g1, paper_g2) == 0

    def test_positive_when_not_contained(self, paper_g2, paper_g1):
        assert sub_mapping_distance(paper_g2, paper_g1) > 0


class TestTopKSubStars:
    def test_matches_brute_force(self, sub_setup):
        rng, graphs, engine, search = sub_setup
        catalog = engine.index.catalog
        query_graph = corpus(random.Random(5), 1, kind="chemical", mean_order=7, stddev=2)[0]
        for query in decompose(query_graph):
            got = search.top_k_sub_stars(query, 5)
            expected = sorted(
                (
                    (sid, sub_star_distance(query, catalog.star(sid)))
                    for sid in catalog.live_sids()
                ),
                key=lambda p: (p[1], p[0]),
            )[:5]
            assert [d for _, d in got] == [d for _, d in expected]

    def test_leafless_query_star(self, sub_setup):
        _, _, engine, search = sub_setup
        got = search.top_k_sub_stars(Star("C00"), 3)
        assert len(got) == 3
        assert got[0][1] in (0, 1)


class TestSubgraphRangeQuery:
    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_no_false_negatives(self, sub_setup, tau):
        rng, graphs, engine, search = sub_setup
        query = erdos_renyi(
            random.Random(tau), ["C00", "C01", "C02"], 3, 0.6
        )
        truth = {
            gid
            for gid, g in graphs.items()
            if subgraph_edit_distance(query, g, threshold=tau) is not None
        }
        result = search.range_query(query, tau=tau, verify="exact")
        assert truth <= set(result.candidates)
        assert result.matches == truth

    def test_validation(self, sub_setup):
        _, _, engine, search = sub_setup
        with pytest.raises(ValueError):
            search.range_query(Graph(), tau=1)
        with pytest.raises(ValueError):
            search.range_query(Graph(["a"]), tau=-1)
        with pytest.raises(ValueError):
            search.range_query(Graph(["a"]), tau=1, verify="nope")
        with pytest.raises(ValueError):
            SubgraphSearch(engine, k=0)

    def test_stats_populated(self, sub_setup):
        _, _, _, search = sub_setup
        result = search.range_query(Graph(["C00", "C01"], [(0, 1)]), tau=1)
        assert result.stats.candidates == len(result.candidates)
        assert result.stats.ta_searches >= 1

    def test_filter_beats_scanning_everything(self, sub_setup):
        """A hopeless query must be pruned without touching every graph."""
        _, graphs, _, search = sub_setup
        big = Graph(
            {i: "Z9" for i in range(15)},
            [(i, i + 1) for i in range(14)],
        )
        result = search.range_query(big, tau=0)
        assert result.candidates == []
        assert result.stats.graphs_accessed < len(graphs)
