"""Ablation: the 50 % partial-matching rule (Section V-E).

The paper runs the Theorem-1 partial mapping distance "only when more than
50 % sub-units of a graph have been accessed".  This bench sweeps the
trigger fraction from 0 (check eagerly at every checkpoint) to >1 (never
check early; defer everything to the forced DC pass) and reports the time /
full-µ trade-off that motivates the 0.5 default.
"""

from __future__ import annotations

import pytest

from repro.baselines import SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.core.engine import SegosIndex
from repro.datasets import sample_queries

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.01)


def test_ablation_partial_fraction(benchmark, aids_dataset, grid, report):
    data = aids_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=92)
    tau = grid.default_tau

    times = Series("time (s)")
    access = Series("access#")
    pruned_partial = Series("pruned by partial µ")
    for fraction in FRACTIONS:
        engine = SegosIndex(
            data.graphs,
            k=grid.default_k,
            h=grid.default_h,
            partial_fraction=fraction,
        )
        total_time = total_access = total_pruned = 0.0
        for query in queries:
            result = engine.range_query(query, tau=tau)
            total_time += result.elapsed
            total_access += result.stats.graphs_accessed
            total_pruned += result.stats.pruned_by.get("partial_mu", 0)
        n = len(queries)
        times.add(fraction, total_time / n)
        access.add(fraction, total_access / n)
        pruned_partial.add(fraction, total_pruned / n)

    report(
        "ablation_partial_fraction",
        format_table(
            f"Ablation: partial-matching trigger fraction (aids-like, τ={tau})",
            "fraction",
            list(FRACTIONS),
            [times, access, pruned_partial],
        ),
    )
    engine = SegosIndex(data.graphs, k=grid.default_k, h=grid.default_h)
    benchmark.pedantic(
        lambda: run_queries(
            SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h),
            queries[:1],
            tau,
        ),
        rounds=1,
        iterations=1,
    )
