"""Tests for the baseline methods: C-Star, κ-AT, C-Tree, linear oracle."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    CStar,
    CTree,
    KappaAT,
    LinearScan,
    SegosMethod,
    adjacent_tree_signature,
    pattern_multiset,
)
from repro.baselines.kat import edits_affect_at_most
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import corpus, make_label_alphabet, mutate
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def corpus_setup():
    rng = random.Random(55)
    graphs = {
        f"g{i}": g
        for i, g in enumerate(
            corpus(rng, 25, kind="chemical", mean_order=7, stddev=2)
        )
    }
    return rng, graphs


def ground_truth(graphs, query, tau):
    return {
        gid
        for gid, g in graphs.items()
        if graph_edit_distance(query, g, threshold=tau) is not None
    }


class TestSoundnessAllMethods:
    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_candidates_cover_truth(self, corpus_setup, tau):
        rng, graphs = corpus_setup
        labels = make_label_alphabet(63, prefix="C")
        query = mutate(
            random.Random(tau + 10), rng.choice(list(graphs.values())), 1, labels
        )
        truth = ground_truth(graphs, query, tau)
        for method in (
            CStar(graphs),
            KappaAT(graphs, kappa=1),
            KappaAT(graphs, kappa=2),
            CTree(graphs),
            LinearScan(graphs),
            SegosMethod(graphs, k=10, h=25),
        ):
            result = method.range_query(query, tau=tau)
            assert truth <= set(result.candidates), method.name
            assert result.confirmed <= truth, method.name


class TestCStar:
    def test_accesses_whole_database(self, corpus_setup):
        rng, graphs = corpus_setup
        query = rng.choice(list(graphs.values())).copy()
        result = CStar(graphs).range_query(query, tau=1)
        assert result.graphs_accessed == len(graphs)

    def test_no_index(self, corpus_setup):
        _, graphs = corpus_setup
        assert CStar(graphs).index_size() == 0

    def test_validation(self, corpus_setup):
        _, graphs = corpus_setup
        method = CStar(graphs)
        with pytest.raises(ValueError):
            method.range_query(Graph(), tau=1)
        with pytest.raises(ValueError):
            method.range_query(Graph(["a"]), tau=-1)

    def test_timed_query_sets_elapsed(self, corpus_setup):
        rng, graphs = corpus_setup
        query = rng.choice(list(graphs.values())).copy()
        result = CStar(graphs).timed_range_query(query, 1)
        assert result.elapsed > 0


class TestKappaAT:
    def test_kappa_one_signature_is_star_like(self):
        g = Graph(["a", "b", "c"], [(0, 1), (0, 2)])
        assert adjacent_tree_signature(g, 0, 1) == "a(b,c)"
        assert adjacent_tree_signature(g, 1, 1) == "b(a)"

    def test_kappa_two_signature_nests(self):
        g = Graph(["a", "b", "c"], [(0, 1), (1, 2)])
        assert adjacent_tree_signature(g, 0, 2) == "a(b(c))"

    def test_signature_canonical_under_child_order(self):
        g1 = Graph(["a", "b", "c"], [(0, 1), (0, 2)])
        g2 = Graph(["a", "c", "b"], [(0, 1), (0, 2)])
        assert adjacent_tree_signature(g1, 0, 2) == adjacent_tree_signature(g2, 0, 2)

    def test_pattern_multiset_size(self, paper_g1):
        patterns = pattern_multiset(paper_g1, 2)
        assert sum(patterns.values()) == paper_g1.order

    def test_budget_growth(self):
        # δ=1, κ=1: vertex touch 1+1=2, edge touch 2·1=2 → 2.
        assert edits_affect_at_most(1, 1) == 2
        # δ=2, κ=1: vertex 1+2=3, edge 2 → 3.
        assert edits_affect_at_most(2, 1) == 3
        # δ=1, κ=2: vertex 3, edge 2·2=4 → 4 (edge ops dominate on paths).
        assert edits_affect_at_most(1, 2) == 4
        # δ=4, κ=2: vertex 1+4+16=21, edge 2·5=10 → 21.
        assert edits_affect_at_most(4, 2) == 21

    def test_identical_patterns_give_zero_tau_match(self, corpus_setup):
        rng, graphs = corpus_setup
        gid, graph = next(iter(graphs.items()))
        method = KappaAT(graphs, kappa=2)
        result = method.range_query(graph.copy(), tau=0)
        assert gid in result.candidates

    def test_index_size_counts_postings(self, corpus_setup):
        _, graphs = corpus_setup
        method = KappaAT(graphs, kappa=2)
        assert method.index_size() >= len(graphs)
        assert method.distinct_pattern_count() > 0

    def test_invalid_kappa(self, corpus_setup):
        _, graphs = corpus_setup
        with pytest.raises(ValueError):
            KappaAT(graphs, kappa=0)

    def test_weaker_than_cstar(self, corpus_setup):
        """κ-AT must be the loosest star-family filter (paper's finding)."""
        rng, graphs = corpus_setup
        query = rng.choice(list(graphs.values())).copy()
        tau = 2
        kat = set(KappaAT(graphs, kappa=2).range_query(query, tau=tau).candidates)
        cstar = set(CStar(graphs).range_query(query, tau=tau).candidates)
        assert len(kat) >= len(cstar)


class TestCTree:
    def test_bulk_load_depth(self, corpus_setup):
        _, graphs = corpus_setup
        tree = CTree(graphs, fanout=4)
        assert tree.depth() >= 2

    def test_invalid_fanout(self, corpus_setup):
        _, graphs = corpus_setup
        with pytest.raises(ValueError):
            CTree(graphs, fanout=1)

    def test_empty_database(self):
        tree = CTree({})
        assert tree.range_query(Graph(["a"]), tau=1).candidates == []
        assert tree.index_size() == 0
        assert tree.depth() == 0

    def test_index_size_positive(self, corpus_setup):
        _, graphs = corpus_setup
        assert CTree(graphs).index_size() > 0

    def test_pruning_actually_happens(self, corpus_setup):
        _, graphs = corpus_setup
        tree = CTree(graphs, fanout=4)
        query = Graph(["Z1", "Z2"], [(0, 1)])  # labels absent from corpus
        result = tree.range_query(query, tau=0)
        assert result.candidates == []
        assert result.nodes_visited < len(graphs)

    def test_validation(self, corpus_setup):
        _, graphs = corpus_setup
        tree = CTree(graphs)
        with pytest.raises(ValueError):
            tree.range_query(Graph(), tau=1)
        with pytest.raises(ValueError):
            tree.range_query(Graph(["a"]), tau=-0.5)


class TestLinearScan:
    def test_exact_answers(self, corpus_setup):
        rng, graphs = corpus_setup
        labels = make_label_alphabet(63, prefix="C")
        query = mutate(rng, rng.choice(list(graphs.values())), 1, labels)
        tau = 2
        result = LinearScan(graphs).range_query(query, tau=tau)
        assert set(result.candidates) == ground_truth(graphs, query, tau)
        assert result.confirmed == set(result.candidates)
