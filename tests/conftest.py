"""Shared fixtures: the paper's worked-example graphs and small corpora."""

from __future__ import annotations

import random

import pytest

from repro.datasets import aids_like, pdg_like
from repro.graphs.model import Graph


def make_paper_g1() -> Graph:
    """Figure 2's g1: star representation {abbcc, bab, babcc, cab, cab}."""
    return Graph(
        ["a", "b", "b", "c", "c"],
        [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3), (2, 4)],
    )


def make_paper_g2() -> Graph:
    """Figure 2's g2: stars {abbccd, bab, babccd, cab, cab, dab}."""
    return Graph(
        ["a", "b", "b", "c", "c", "d"],
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (2, 3),
            (2, 4),
            (2, 5),
        ],
    )


@pytest.fixture
def paper_g1() -> Graph:
    return make_paper_g1()


@pytest.fixture
def paper_g2() -> Graph:
    return make_paper_g2()


@pytest.fixture(scope="session")
def small_aids():
    """60 chemical-like graphs, ~8 vertices (fast enough for exact GED)."""
    return aids_like(60, seed=101, mean_order=8.0, stddev=2.0, min_order=3)


@pytest.fixture(scope="session")
def small_pdg():
    """60 PDG-like graphs, uniform sizes 5..11."""
    return pdg_like(60, seed=202, mean_order=8.0, min_order=5, max_order=11)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
