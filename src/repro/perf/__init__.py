"""Performance subsystem: SED memoization, assignment backends, parallelism,
and the columnar star-catalog mirror.

Independent accelerators for the filtering hot path, each opt-out /
configurable via environment variables (see the README's performance table):

* :mod:`repro.perf.sed_cache` — process-global memo cache for the star edit
  distance, keyed on canonical signature pairs (``REPRO_SED_CACHE_SIZE``);
* :mod:`repro.perf.assignment` — pluggable assignment-problem backends
  (pure Hungarian vs SciPy) behind :func:`solve_assignment`
  (``REPRO_ASSIGNMENT_BACKEND``);
* :mod:`repro.perf.parallel` — process-parallel batch range queries with a
  serial fallback (``REPRO_BATCH_WORKERS``);
* :mod:`repro.perf.columnar` — a generation-coherent columnar snapshot of
  the star catalog with vectorized batch-SED kernels, backing the ``scan``
  top-k backend (``REPRO_TOPK_BACKEND``) with a pure-Python fallback when
  numpy is absent.  Parallel verification lives in :mod:`repro.core.verify`
  (``REPRO_VERIFY_WORKERS``);
* :mod:`repro.perf.diskcat` — the zero-copy on-disk index: the ``.segosx``
  mmap sidecar format, lazily-materialising mapped index views, delta
  segments, and the :class:`DiskHandle` worker transport
  (``REPRO_MMAP`` / ``REPRO_INDEX_PATH`` / ``REPRO_DELTA_COMPACT``);
* :mod:`repro.perf.shard` — catalog sharding for scatter-gather query
  execution with pivot-based shard pruning (``REPRO_SHARDS`` /
  ``REPRO_SHARD_BY`` / ``REPRO_SHARD_PIVOTS``).
"""

from .assignment import (
    available_backends,
    register_backend,
    resolve_backend,
    scipy_available,
    solve_assignment,
)
from .columnar import ColumnarCatalog, columnar_snapshot, numpy_available
from .diskcat import (
    DiskCatalog,
    DiskHandle,
    LazyGraphStore,
    MappedTwoLevelIndex,
    default_sidecar_path,
)
from .parallel import (
    chunk_evenly,
    effective_workers,
    parallel_batch_range_query,
    resolve_workers,
)
from .shard import PivotRange, ShardedView, ShardView, persist_shards, sharded_view
from .sed_cache import (
    DEFAULT_CAPACITY,
    GLOBAL_SED_CACHE,
    CacheInfo,
    SEDCache,
    cached_star_edit_distance,
    sed_cache_clear,
    sed_cache_info,
)

__all__ = [
    "CacheInfo",
    "ColumnarCatalog",
    "DEFAULT_CAPACITY",
    "DiskCatalog",
    "DiskHandle",
    "GLOBAL_SED_CACHE",
    "LazyGraphStore",
    "MappedTwoLevelIndex",
    "PivotRange",
    "SEDCache",
    "ShardView",
    "ShardedView",
    "available_backends",
    "cached_star_edit_distance",
    "chunk_evenly",
    "columnar_snapshot",
    "default_sidecar_path",
    "effective_workers",
    "numpy_available",
    "parallel_batch_range_query",
    "persist_shards",
    "register_backend",
    "resolve_backend",
    "resolve_workers",
    "scipy_available",
    "sed_cache_clear",
    "sed_cache_info",
    "sharded_view",
    "solve_assignment",
]
