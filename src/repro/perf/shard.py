"""Catalog sharding + pivot-based shard pruning for scatter-gather queries.

The two-level index answers every staged :class:`~repro.core.plan.QueryPlan`
against one monolithic catalog; past the sizes of Figures 17/18 that is the
scaling wall — parallel workers all time-slice the same full index.  This
module partitions a database into ``config.shards`` disjoint shards, each a
complete, self-contained :class:`~repro.core.engine.SegosIndex` over its
subset (own star catalog, own postings, own
:func:`~repro.perf.columnar.columnar_snapshot`, optionally its own
``.segosx`` sidecar so workers attach the shard through the existing
:class:`~repro.perf.diskcat.DiskHandle` transport instead of the whole
index).

**This module is the only place shard partitions are constructed** — a
grep-based guard test enforces that :func:`shard_of` is never referenced
elsewhere, mirroring the resilience pool's ownership guard — so the
assignment of graphs to shards cannot silently fork between the build,
query and persistence paths.

Soundness of the scatter-gather decomposition: every filter decision the
CA stage makes is conservative with respect to the terminal exact
``L_m(q, g) ≤ τ`` test, and the per-shard normalisation factor
``δ' = max(4, max(δ(q), δ_max(shard)) + 1)`` still dominates every member's
own factor, so the union of per-shard candidate *sets* equals the
single-catalog candidate set (candidate *order* is canonicalised by the
merge instead — global insertion order).

Pivot pruning (Bause et al., *Metric Indexing for Graph Similarity
Search*): GED is a metric, so for a pivot graph ``p`` and any member ``g``
of its shard,

    λ(q, g) ≥ max( λ(q, p) − λ(p, g),  λ(p, g) − λ(q, p) )
            ≥ max( L_m(q, p) − hi_p,   lo_p − U_m(q, p) )

where ``hi_p = max_g U_m(p, g)`` and ``lo_p = min_g L_m(p, g)`` are the
shard's precomputed distance range to ``p``.  When that floor exceeds τ
for some pivot, no member can be an answer and the planner skips the whole
shard before TA ever runs — surfaced as ``shards_pruned`` in
:class:`~repro.core.stats.QueryStats`.  The bound is *not* valid for the
subgraph edit distance (not a metric), so subsearch scatters to every
shard.
"""

from __future__ import annotations

import itertools
import os
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..config import EngineConfig
from ..graphs.model import Graph


def _mapping_bounds(g1, g2, *, backend=None):
    # Deferred: matching.mapping itself imports repro.perf (assignment
    # backends), so a module-level import here would be circular.
    from ..matching.mapping import bounds

    return bounds(g1, g2, backend=backend)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import SegosIndex

__all__ = [
    "PivotRange",
    "ShardView",
    "ShardedView",
    "persist_shards",
    "shard_of",
    "sharded_view",
]

#: Monotonic token source: every built view gets a process-unique id, used
#: by the worker pools to key per-process shard-engine caches without any
#: risk of a recycled ``id()`` colliding across generations.
_VIEW_TOKENS = itertools.count(1)


def shard_of(gid: object, graph: Graph, *, shards: int, shard_by: str = "auto") -> int:
    """Assign one graph to a shard — the package's *only* partition function.

    ``size`` (and ``auto``) band graphs by order modulo the shard count, so
    graphs of equal order colocate — that keeps each shard's size spread
    narrow, which is what makes the pivot distance ranges tight enough to
    prune.  ``hash`` spreads gids uniformly by a stable CRC32 of the gid's
    string form (never Python's randomised ``hash``), the right choice when
    sizes are uniform but load balance matters.
    """
    if shards <= 1:
        return 0
    if shard_by == "hash":
        return zlib.crc32(str(gid).encode("utf-8")) % shards
    # "size" / "auto": order band
    return graph.order % shards


@dataclass(frozen=True)
class PivotRange:
    """One pivot graph's precomputed distance range over its shard.

    ``lo ≤ min_g λ(p, g)`` and ``hi ≥ max_g λ(p, g)`` for every member
    ``g`` — conservative on both sides, so the triangle-inequality floor
    built from them never excludes a true answer.
    """

    gid: object
    lo: float
    hi: float


@dataclass
class ShardView:
    """One shard: a full sub-engine over a disjoint subset of the database."""

    shard_id: int
    engine: "SegosIndex"
    gids: Tuple[object, ...]
    pivots: Tuple[PivotRange, ...] = ()

    def query_floor(self, query: Graph, *, backend: Optional[str] = None) -> float:
        """Largest triangle-inequality lower bound on λ(query, g), g ∈ shard.

        One assignment solve per pivot yields ``(L_m, U_m)`` between the
        query and the pivot; combined with the stored shard range the floor
        is ``max_p max(L_m(q,p) − hi_p, lo_p − U_m(q,p))``.  Zero pivots ⇒
        floor 0 (never prunes).
        """
        floor = 0.0
        for pivot in self.pivots:
            l_qp, u_qp, _ = _mapping_bounds(
                query, self.engine.graph(pivot.gid), backend=backend
            )
            floor = max(floor, l_qp - pivot.hi, pivot.lo - float(u_qp))
        return floor


@dataclass
class ShardedView:
    """An engine's shard decomposition, cached per index generation."""

    shards: Tuple[ShardView, ...]
    key: tuple
    token: int

    def live_shards(self) -> List[ShardView]:
        """Shards that actually hold graphs (empty ones answer nothing)."""
        return [shard for shard in self.shards if shard.gids]

    def skips(
        self, query: Graph, tau: float, *, backend: Optional[str] = None
    ) -> Set[int]:
        """Shard ids the pivot floors rule out for this ``(query, tau)``.

        Only shards carrying pivots can be skipped; a shard with no pivots
        (knob off, or fewer members than requested pivots) always runs.
        """
        return {
            shard.shard_id
            for shard in self.shards
            if shard.pivots and shard.query_floor(query, backend=backend) > tau
        }


def _select_pivots(
    members: Sequence[Tuple[object, Graph]], count: int
) -> List[Tuple[object, Graph]]:
    """Deterministically pick ≤ *count* spread-out pivot graphs.

    Members are ranked by (order, gid string) and sampled at even strides,
    so pivots cover the shard's size spectrum and the choice is identical
    in every process that builds the view.
    """
    if count <= 0 or not members:
        return []
    ranked = sorted(members, key=lambda item: (item[1].order, str(item[0])))
    count = min(count, len(ranked))
    stride = len(ranked) / count
    picked = []
    seen = set()
    for i in range(count):
        index = min(int(i * stride), len(ranked) - 1)
        if index not in seen:
            seen.add(index)
            picked.append(ranked[index])
    return picked


def _pivot_ranges(
    pivot_gid: object,
    pivot_graph: Graph,
    members: Sequence[Tuple[object, Graph]],
    *,
    backend: Optional[str] = None,
) -> PivotRange:
    """Compute one pivot's conservative ``[lo, hi]`` λ-range over *members*."""
    lo = float("inf")
    hi = 0.0
    for _gid, graph in members:
        l_m, u_m, _ = _mapping_bounds(pivot_graph, graph, backend=backend)
        lo = min(lo, l_m)
        hi = max(hi, float(u_m))
    return PivotRange(gid=pivot_gid, lo=lo, hi=hi)


def build_sharded_view(engine: "SegosIndex", config: EngineConfig) -> ShardedView:
    """Partition *engine* into ``config.shards`` sub-engines (uncached).

    Each shard is a normal in-memory :class:`~repro.core.engine.SegosIndex`
    built with the parent's resolved config minus the scatter knobs
    (``shards=1`` so shard queries never recurse, ``metrics=False`` so only
    the merged query records metrics).  Graphs are inserted in the parent's
    insertion order, so shard-local scan orders — and therefore every
    per-shard answer — are deterministic functions of the parent database.
    """
    from ..core.engine import SegosIndex  # lazy: engine imports our siblings

    key = _view_key(engine, config)
    sub_config = config.override(shards=1, metrics=False)
    buckets: Dict[int, List[object]] = {i: [] for i in range(config.shards)}
    for gid in engine.gids():
        buckets[
            shard_of(
                gid, engine.graph(gid), shards=config.shards, shard_by=config.shard_by
            )
        ].append(gid)
    shards = []
    for shard_id in range(config.shards):
        sub = SegosIndex(config=sub_config)
        members = []
        for gid in buckets[shard_id]:
            graph = engine.graph(gid)
            sub.add(gid, graph)
            members.append((gid, graph))
        pivots: Tuple[PivotRange, ...] = ()
        if config.shard_pivots > 0 and members:
            pivots = tuple(
                _pivot_ranges(
                    gid, graph, members, backend=config.assignment_backend
                )
                for gid, graph in _select_pivots(members, config.shard_pivots)
            )
        shards.append(
            ShardView(
                shard_id=shard_id,
                engine=sub,
                gids=tuple(buckets[shard_id]),
                pivots=pivots,
            )
        )
    return ShardedView(shards=tuple(shards), key=key, token=next(_VIEW_TOKENS))


def _view_key(engine: "SegosIndex", config: EngineConfig) -> tuple:
    """Cache key: index identity + generation + the three scatter knobs.

    Shard add/drain rides the existing generation counters — any §IV-C
    mutation bumps ``index.generation``, so the next sharded query
    transparently rebuilds the view, exactly like the columnar snapshot.
    """
    return (
        id(engine.index),
        engine.index.generation,
        config.shards,
        config.shard_by,
        config.shard_pivots,
    )


def sharded_view(
    engine: "SegosIndex", config: Optional[EngineConfig] = None
) -> ShardedView:
    """The engine's (lazily rebuilt) shard decomposition for *config*.

    Cached on the engine keyed by index generation + shard knobs, mirroring
    ``columnar_snapshot``'s lazy-rebuild pattern: mutations invalidate by
    bumping the generation, never by explicit hooks.
    """
    config = config if config is not None else engine.config
    key = _view_key(engine, config)
    cached = getattr(engine, "_sharded_view_cache", None)
    if cached is not None and cached.key == key:
        return cached
    view = build_sharded_view(engine, config)
    engine._sharded_view_cache = view
    return view


# ---------------------------------------------------------------------------
# Per-shard persistence: one (.segos text, .segosx sidecar) pair per shard
# ---------------------------------------------------------------------------

def shard_path(base_path: str, shard_id: int) -> str:
    """The on-disk path of one shard's database file."""
    return f"{os.fspath(base_path)}.shard{shard_id}"


def persist_shards(
    engine: "SegosIndex",
    base_path: str,
    *,
    config: Optional[EngineConfig] = None,
) -> List[str]:
    """Write every shard as its own database + mmap sidecar pair.

    After this call each shard sub-engine carries a valid
    :class:`~repro.perf.diskcat.DiskHandle`, so the scatter pool ships
    workers a tiny ``(path, generation)`` ticket per shard and the worker
    memory-maps *only its shard's* sidecar — never the whole index.  The
    shard layout and every pivot range are also recorded in a JSON manifest
    (``<base>.shards.json``) next to the shard sidecars, so operators can
    audit the partition and the pruning metadata without loading anything.

    Returns the list of shard database paths, index-ordered.
    """
    import json

    from ..core.persistence import save_index  # lazy: persistence imports engine

    view = sharded_view(engine, config)
    paths = []
    manifest: Dict[str, object] = {
        "shards": len(view.shards),
        "shard_by": (config or engine.config).shard_by,
        "layout": {},
    }
    for shard in view.shards:
        path = shard_path(base_path, shard.shard_id)
        save_index(shard.engine, path)
        paths.append(path)
        manifest["layout"][str(shard.shard_id)] = {
            "path": path,
            "graphs": len(shard.gids),
            "pivots": [
                {"gid": str(p.gid), "lo": p.lo, "hi": p.hi} for p in shard.pivots
            ],
        }
    with open(f"{os.fspath(base_path)}.shards.json", "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return paths
