"""Global memoization of the star edit distance (the SED memo cache).

SEGOS's filtering pipeline bottoms out in :func:`repro.graphs.star.
star_edit_distance` calls: the TA top-k sub-unit search scores every star it
touches, ``star_cost_matrix`` fills O(n²) cells per graph pair, and every
:meth:`DynamicMappingDistance.reveal` prices a full column.  The upper-level
index exists precisely because star signatures repeat massively across a
database — which means most of those SED evaluations are recomputations of
*identical signature pairs*.

:class:`SEDCache` exploits that: a bounded memo table mapping canonical
signature pairs to their SED, evicting oldest entries first when full.
Because a :class:`Star` is fully determined by its signature and the SED is
symmetric, the key ``(min(sig1, sig2), max(sig1, sig2))`` is exact — a hit
returns precisely what Lemma 1 would recompute.  A hit must cost less than
the Counter arithmetic it replaces, so the lookup path takes no lock:
single dict operations on string-tuple keys are atomic under CPython's GIL,
and only mutation (inserts, eviction, clear, resize) is serialised.

The module exposes one process-global cache (:data:`GLOBAL_SED_CACHE`) plus
``functools.lru_cache``-style introspection (:func:`sed_cache_info`,
:func:`sed_cache_clear`).  Capacity comes from the ``REPRO_SED_CACHE_SIZE``
environment variable (``0`` disables caching entirely); the engine snapshots
the counters around each query so :class:`repro.core.stats.QueryStats` can
report per-query hit rates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import ENV_SED_CACHE_SIZE, env_int
from ..graphs.star import Star, star_edit_distance

#: Default maximum number of signature pairs kept (a pair is ~100 bytes of
#: strings plus dict overhead, so the default tops out around tens of MB).
DEFAULT_CAPACITY = 1 << 18

#: Environment variable overriding the global cache capacity (0 disables).
#: Alias of :data:`repro.config.ENV_SED_CACHE_SIZE`.
ENV_CAPACITY = ENV_SED_CACHE_SIZE


@dataclass(frozen=True)
class CacheInfo:
    """``functools.lru_cache``-style snapshot of a cache's counters."""

    hits: int
    misses: int
    maxsize: int
    currsize: int

    @property
    def requests(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0


class SEDCache:
    """Bounded cache of star edit distances keyed on signature pairs.

    Eviction is oldest-first (insertion order): refreshing recency on every
    hit would cost more than the SED it saves, and with the default capacity
    of 2¹⁸ pairs eviction is rare anyway.  Thread-safe: the pipelined
    engine's DC workers share the global cache; hit counters are best-effort
    under concurrent readers (they may undercount, never miscount a value).
    A ``maxsize <= 0`` cache is a transparent pass-through that neither
    stores results nor counts hits/misses, so disabling it restores the
    uncached behaviour exactly.

    Examples
    --------
    >>> cache = SEDCache(maxsize=16)
    >>> cache.distance(Star("a", "bc"), Star("a", "bd"))
    1
    >>> cache.distance(Star("a", "bd"), Star("a", "bc"))  # symmetric hit
    1
    >>> cache.info().hits, cache.info().misses
    (1, 1)
    """

    def __init__(self, maxsize: int = DEFAULT_CAPACITY) -> None:
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def distance(self, s1: Star, s2: Star) -> int:
        """``λ(s1, s2)`` — memoised :func:`star_edit_distance`."""
        if self.maxsize <= 0:
            return star_edit_distance(s1, s2)
        a, b = s1.signature, s2.signature
        key = (a, b) if a <= b else (b, a)
        # Lock-free lookup: a single dict.get on a string-tuple key is
        # atomic under the GIL, and a stale read is just a recompute.
        value = self._data.get(key)
        if value is not None:
            self._hits += 1
            return value
        value = star_edit_distance(s1, s2)
        with self._lock:
            self._misses += 1
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
        return value

    def info(self) -> CacheInfo:
        """Counter snapshot (hits, misses, maxsize, currsize)."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self.maxsize,
                currsize=len(self._data),
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def resize(self, maxsize: int) -> None:
        """Change capacity in place, evicting LRU entries if shrinking."""
        with self._lock:
            self.maxsize = int(maxsize)
            while len(self._data) > max(0, self.maxsize):
                self._data.popitem(last=False)


def _capacity_from_env() -> int:
    return env_int(ENV_CAPACITY, DEFAULT_CAPACITY)


#: The process-global cache every engine query path goes through.
GLOBAL_SED_CACHE = SEDCache(_capacity_from_env())


def cached_star_edit_distance(s1: Star, s2: Star) -> int:
    """Drop-in replacement for :func:`star_edit_distance` using the global cache."""
    return GLOBAL_SED_CACHE.distance(s1, s2)


def sed_cache_info() -> CacheInfo:
    """Introspect the global cache (mirrors ``lru_cache.cache_info()``)."""
    return GLOBAL_SED_CACHE.info()


def sed_cache_clear() -> None:
    """Empty the global cache (mirrors ``lru_cache.cache_clear()``)."""
    GLOBAL_SED_CACHE.clear()


def publish_cache_metrics(registry, cache: SEDCache = None) -> None:
    """Export a cache's lifetime counters as gauges on *registry*.

    *registry* is duck-typed (a :class:`repro.obs.metrics.MetricsRegistry`)
    so this module keeps zero dependency on the observability layer.
    Called by the plan executor after each metered query; cheap enough to
    run per query (four gauge sets from one locked snapshot).
    """
    info = (cache if cache is not None else GLOBAL_SED_CACHE).info()
    registry.gauge(
        "repro_sed_cache_entries", "signature pairs currently cached"
    ).set(info.currsize)
    registry.gauge(
        "repro_sed_cache_capacity", "configured cache capacity"
    ).set(info.maxsize)
    registry.gauge(
        "repro_sed_cache_hits_lifetime", "process-lifetime cache hits"
    ).set(info.hits)
    registry.gauge(
        "repro_sed_cache_misses_lifetime", "process-lifetime cache misses"
    ).set(info.misses)
