"""Synthetic graph generators (dataset substitutes, see DESIGN.md §3).

The paper evaluates on two corpora we cannot ship offline:

* the NCI **AIDS** antiviral screen (chemical compounds: sparse, mostly
  tree-like connected graphs, 63 vertex labels with a heavily skewed
  frequency distribution, near-normal size distribution);
* a **Linux** kernel PDG corpus from the proprietary CodeSurfer tool
  (dependence graphs: layered/sequential structure, 36 role labels,
  near-uniform size distribution).

The generators here synthesise graphs with the same distributional knobs —
size distribution, sparsity, label skew — because those are the only graph
statistics SEGOS's behaviour depends on (star multiset overlap is a function
of them).  Every generator takes an explicit :class:`random.Random` so
corpora are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .model import Graph

#: Label alphabet sizes used by the paper's datasets.
AIDS_LABEL_COUNT = 63
PDG_LABEL_COUNT = 36


def _zipf_weights(count: int, exponent: float) -> List[float]:
    """Zipf-like weights ``1/rank^exponent`` for a label alphabet."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


def make_label_alphabet(count: int, prefix: str = "L") -> List[str]:
    """Return ``count`` distinct, totally ordered label strings.

    Zero-padding keeps lexicographic order equal to numeric order, which the
    lower-level index relies on for its label ordering.
    """
    width = len(str(count - 1)) if count > 1 else 1
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def random_tree(
    rng: random.Random, labels: Sequence[str], order: int, *, attach_power: float = 0.0
) -> Graph:
    """Random labelled tree on *order* vertices.

    ``attach_power > 0`` biases attachment towards high-degree vertices
    (preferential attachment), producing the hub-and-spoke shapes common in
    molecules; 0 gives a uniform random recursive tree.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    g = Graph([rng.choice(labels) for _ in range(order)])
    for v in range(1, order):
        if attach_power > 0:
            weights = [(g.degree(u) + 1) ** attach_power for u in range(v)]
            parent = rng.choices(range(v), weights=weights)[0]
        else:
            parent = rng.randrange(v)
        g.add_edge(parent, v)
    return g


def chemical_like(
    rng: random.Random,
    labels: Sequence[str],
    order: int,
    *,
    extra_edge_rate: float = 0.12,
    label_exponent: float = 1.1,
) -> Graph:
    """One AIDS-like compound graph: a tree plus a few rings.

    Molecules are connected, sparse (|E| ≈ |V|), and dominated by a handful
    of frequent atom labels; rings appear as a small number of extra edges
    closing tree paths.
    """
    weights = _zipf_weights(len(labels), label_exponent)
    g = Graph(rng.choices(labels, weights=weights, k=order))
    for v in range(1, order):
        parent = rng.randrange(v)
        g.add_edge(parent, v)
    extra = int(round(extra_edge_rate * order))
    for _ in range(extra):
        u, v = rng.randrange(order), rng.randrange(order)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def pdg_like(
    rng: random.Random,
    labels: Sequence[str],
    order: int,
    *,
    layer_width: int = 4,
    cross_rate: float = 0.25,
) -> Graph:
    """One PDG-like procedure graph: layered control/data dependencies.

    Statements form a rough sequence (layers); each vertex depends on one
    vertex in a previous layer (control) plus occasional cross dependencies
    (data flow).  Labels are roles and nearly uniform, like the paper's 36
    "declaration"/"expression"/"control-point" roles.
    """
    g = Graph([rng.choice(labels) for _ in range(order)])
    for v in range(1, order):
        lo = max(0, v - layer_width)
        parent = rng.randrange(lo, v)
        g.add_edge(parent, v)
    extra = int(round(cross_rate * order))
    for _ in range(extra):
        v = rng.randrange(1, order) if order > 1 else 0
        lo = max(0, v - 3 * layer_width)
        u = rng.randrange(lo, v) if v > lo else None
        if u is not None and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def erdos_renyi(
    rng: random.Random, labels: Sequence[str], order: int, edge_prob: float
) -> Graph:
    """Plain G(n, p) with uniform labels (used by property tests)."""
    g = Graph([rng.choice(labels) for _ in range(order)])
    for u in range(order):
        for v in range(u + 1, order):
            if rng.random() < edge_prob:
                g.add_edge(u, v)
    return g


def normal_order(rng: random.Random, mean: float, stddev: float, minimum: int = 1) -> int:
    """Sample a graph order from a clamped normal distribution."""
    return max(minimum, int(round(rng.gauss(mean, stddev))))


def uniform_order(rng: random.Random, low: int, high: int) -> int:
    """Sample a graph order uniformly from ``[low, high]``."""
    return rng.randint(low, high)


def mutate(
    rng: random.Random,
    graph: Graph,
    edits: int,
    labels: Sequence[str],
    *,
    keep_connected: bool = False,
) -> Graph:
    """Apply *edits* random unit edit operations; returns a new graph.

    By construction ``λ(graph, result) ≤ edits`` (each step is one edit
    operation), which makes mutated copies ideal range-query probes: a query
    mutated by ``j ≤ τ`` edits *must* be answered by its source graph.
    """
    g = graph.copy()
    for _ in range(edits):
        ops = ["relabel"]
        vertices = list(g.vertices())
        # An inserted vertex starts isolated, so it is excluded when the
        # caller needs connectivity preserved.
        if vertices and not keep_connected:
            ops.append("add_vertex")
        if len(vertices) >= 2:
            ops.append("toggle_edge")
        removable = [v for v in vertices if g.degree(v) == 0]
        if removable and g.order > 1 and not keep_connected:
            ops.append("del_vertex")
        op = rng.choice(ops)
        if op == "relabel":
            v = rng.choice(vertices)
            g.relabel_vertex(v, rng.choice(labels))
        elif op == "add_vertex":
            new_id = max(vertices) + 1 if vertices else 0
            g.add_vertex(new_id, rng.choice(labels))
        elif op == "del_vertex":
            g.remove_vertex(rng.choice(removable))
        else:  # toggle_edge
            u, v = rng.sample(vertices, 2)
            if g.has_edge(u, v):
                bridge_risk = keep_connected
                if not bridge_risk:
                    g.remove_edge(u, v)
                else:
                    g.remove_edge(u, v)
                    if not g.is_connected():
                        g.add_edge(u, v)
            else:
                g.add_edge(u, v)
    return g


def corpus(
    rng: random.Random,
    count: int,
    *,
    kind: str = "chemical",
    mean_order: float = 12.0,
    stddev: float = 3.0,
    min_order: int = 3,
    max_order: Optional[int] = None,
    label_count: Optional[int] = None,
) -> List[Graph]:
    """Generate a corpus of *count* graphs of the given *kind*.

    ``kind`` is ``"chemical"`` (AIDS stand-in, normal sizes, skewed labels)
    or ``"pdg"`` (Linux stand-in, uniform sizes, uniform labels).
    """
    if kind == "chemical":
        labels = make_label_alphabet(label_count or AIDS_LABEL_COUNT, prefix="C")
        graphs = []
        for _ in range(count):
            order = normal_order(rng, mean_order, stddev, min_order)
            if max_order is not None:
                order = min(order, max_order)
            graphs.append(chemical_like(rng, labels, order))
        return graphs
    if kind == "pdg":
        labels = make_label_alphabet(label_count or PDG_LABEL_COUNT, prefix="P")
        low = min_order
        high = int(max_order if max_order is not None else round(2 * mean_order - low))
        return [
            pdg_like(rng, labels, uniform_order(rng, low, max(low, high)))
            for _ in range(count)
        ]
    raise ValueError(f"unknown corpus kind {kind!r} (expected 'chemical' or 'pdg')")
