"""Graph similarity join: all pairs within GED τ.

The companion problem to the paper's range query: given graph sets ``R``
and ``S`` (or one set, for a self-join), report every pair with
``λ(r, s) ≤ τ``.  The SEGOS index turns the naive ``|R|·|S|`` scan into
|R| indexed range queries, with two extra join-level savings:

* all probes run through one :class:`~repro.core.plan.QuerySession`, so
  the TA top-k cache is shared across them (stars repeat heavily inside
  one corpus — the same effect as
  :meth:`~repro.core.engine.SegosIndex.batch_range_query`);
* for self-joins each unordered pair is probed once (candidates with
  ``gid ≤ probe`` are skipped), halving the work.

Results are *candidate* pairs (sound, no false negatives) unless
``verify="exact"`` upgrades them to exact pairs via threshold-pruned A*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..graphs.edit_distance import ged_within
from ..graphs.model import Graph
from .engine import SegosIndex
from .stats import QueryStats


@dataclass
class JoinResult:
    """Outcome of a similarity join."""

    #: candidate pairs ``(left gid, right gid)``; superset of true pairs
    pairs: List[Tuple[object, object]]
    #: pairs confirmed ``λ ≤ τ`` (all of them, when verified)
    matches: Set[Tuple[object, object]] = field(default_factory=set)
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed: float = 0.0
    verified: bool = False


def similarity_self_join(
    engine: SegosIndex, tau: float, *, verify: str = "none"
) -> JoinResult:
    """All unordered pairs of indexed graphs within GED τ.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> db = SegosIndex()
    >>> db.add("a", Graph(["x", "y"], [(0, 1)]))
    >>> db.add("b", Graph(["x", "y"], [(0, 1)]))
    >>> db.add("c", Graph(["q", "q", "q"]))
    >>> similarity_self_join(db, 0, verify="exact").matches
    {('a', 'b')}
    """
    return _join(engine, None, tau, verify=verify)


def similarity_join(
    engine: SegosIndex,
    probes: Mapping[object, Graph],
    tau: float,
    *,
    verify: str = "none",
) -> JoinResult:
    """All ``(probe, indexed)`` pairs within GED τ.

    The right side is the indexed set; ``probes`` may be any graphs (they
    need not be indexed).
    """
    return _join(engine, dict(probes), tau, verify=verify)


def _join(
    engine: SegosIndex,
    probes: Optional[Dict[object, Graph]],
    tau: float,
    *,
    verify: str,
) -> JoinResult:
    if tau < 0:
        raise ValueError("tau must be non-negative")
    if verify not in ("none", "exact"):
        raise ValueError(f"unknown verify mode {verify!r}")
    started = time.perf_counter()
    self_join = probes is None
    if self_join:
        probes = {gid: engine.graph(gid) for gid in engine.gids()}

    stats = QueryStats()
    # One session for the whole join: every probe shares its TA top-k
    # searches through the session cache (the public cache-sharing API).
    session = engine.session()
    pairs: List[Tuple[object, object]] = []
    confirmed: Set[Tuple[object, object]] = set()

    # Deterministic probe order; for self-joins it also defines the pair
    # ordering used to halve the work.
    ordering = {gid: i for i, gid in enumerate(sorted(probes, key=str))}
    for left in sorted(probes, key=str):
        query = probes[left]
        result = session.range_query(query, tau)
        stats.merge(result.stats)
        for right in result.candidates:
            if self_join:
                if right not in ordering or ordering[right] <= ordering[left]:
                    continue  # own reflection, or the mirrored pair
                pair = (left, right)
            else:
                pair = (left, right)
            pairs.append(pair)
            if right in result.matches:
                confirmed.add(pair)

    verified = verify == "exact"
    if verified:
        for pair in pairs:
            if pair in confirmed:
                continue
            left, right = pair
            if ged_within(probes[left] if left in probes else engine.graph(left),
                          engine.graph(right), int(tau)):
                confirmed.add(pair)
    return JoinResult(
        pairs=pairs,
        matches=confirmed,
        stats=stats,
        elapsed=time.perf_counter() - started,
        verified=verified,
    )
