"""Tests for the graph similarity join."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.engine import SegosIndex
from repro.core.join import similarity_join, similarity_self_join
from repro.datasets import aids_like
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import mutate
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def join_world():
    data = aids_like(15, seed=61, mean_order=6, stddev=1)
    graphs = dict(data.graphs)
    # Plant two clone pairs so the join has guaranteed matches.
    rng = random.Random(62)
    keys = list(graphs)
    for i, key in enumerate(keys[:2]):
        graphs[f"{key}-twin"] = mutate(rng, graphs[key], 1, data.labels)
    return graphs, SegosIndex(graphs, k=10, h=30)


def exact_pairs(graphs, tau):
    return {
        (a, b)
        for a, b in combinations(sorted(graphs, key=str), 2)
        if graph_edit_distance(graphs[a], graphs[b], threshold=tau) is not None
    }


class TestSelfJoin:
    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_exact_self_join(self, join_world, tau):
        graphs, engine = join_world
        result = similarity_self_join(engine, tau=tau, verify="exact")
        assert result.verified
        assert result.matches == exact_pairs(graphs, tau)

    def test_candidates_cover_truth(self, join_world):
        graphs, engine = join_world
        result = similarity_self_join(engine, tau=1)
        assert exact_pairs(graphs, 1) <= set(result.pairs)

    def test_no_self_pairs_or_mirrors(self, join_world):
        graphs, engine = join_world
        result = similarity_self_join(engine, tau=2)
        assert all(a != b for a, b in result.pairs)
        seen = set(result.pairs)
        assert all((b, a) not in seen for a, b in result.pairs)

    def test_ta_cache_shared(self, join_world):
        graphs, engine = join_world
        result = similarity_self_join(engine, tau=1)
        # Shared cache: far fewer TA searches than total query stars.
        total_stars = sum(g.order for g in graphs.values())
        assert result.stats.ta_searches < total_stars


class TestProbeJoin:
    def test_probe_join_finds_sources(self, join_world):
        graphs, engine = join_world
        rng = random.Random(63)
        probes = {
            f"probe-{i}": mutate(rng, graphs[key], 1, list("abc"))
            for i, key in enumerate(list(graphs)[:3])
        }
        result = similarity_join(engine, probes, tau=1, verify="exact")
        lefts = {a for a, _ in result.matches}
        assert lefts  # every probe is 1 edit from its source

    def test_probe_join_keeps_all_pairs(self, join_world):
        graphs, engine = join_world
        gid = next(iter(graphs))
        probes = {"p": graphs[gid].copy()}
        result = similarity_join(engine, probes, tau=0, verify="exact")
        assert ("p", gid) in result.matches

    def test_validation(self, join_world):
        _, engine = join_world
        with pytest.raises(ValueError):
            similarity_self_join(engine, tau=-1)
        with pytest.raises(ValueError):
            similarity_self_join(engine, tau=1, verify="hmm")

    def test_empty_probe_set(self, join_world):
        _, engine = join_world
        result = similarity_join(engine, {}, tau=1)
        assert result.pairs == []


class TestPublicPlanRouting:
    """The join runs through the public session API — no private reach-ins."""

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_join_emits_no_deprecation_warnings(self, join_world):
        _, engine = join_world
        similarity_self_join(engine, tau=1)

    def test_join_identical_to_independent_range_queries(self, join_world):
        graphs, engine = join_world
        result = similarity_self_join(engine, tau=1)
        # Rebuild the join with one public range query per probe (no shared
        # session): the shared-cache path must not change a single pair.
        ordering = {gid: i for i, gid in enumerate(sorted(graphs, key=str))}
        expected = []
        for left in sorted(graphs, key=str):
            probe = engine.range_query(graphs[left], tau=1)
            for right in probe.candidates:
                if ordering[right] <= ordering[left]:
                    continue
                expected.append((left, right))
        assert sorted(result.pairs, key=str) == sorted(expected, key=str)

    def test_probe_join_shares_one_session(self, join_world):
        graphs, engine = join_world
        probes = {f"p{i}": graphs[key].copy() for i, key in enumerate(graphs)}
        shared = similarity_join(engine, probes, tau=1)
        solo = sum(
            engine.range_query(g, tau=1).stats.ta_searches for g in probes.values()
        )
        # Cache sharing must strictly reduce TA work on this clone-heavy set.
        assert shared.stats.ta_searches < solo
