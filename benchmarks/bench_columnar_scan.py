#!/usr/bin/env python
"""Columnar-scan benchmark: TA vs vectorized scan crossover + parallel verify.

Standalone like ``bench_perf_kernels.py`` so CI can smoke it without the
test harness::

    PYTHONPATH=src python benchmarks/bench_columnar_scan.py [--smoke]

Writes ``BENCH_columnar_scan.json`` at the repository root with:

1. **crossover curve** — best-of-N wall time of the ``ta`` and ``scan``
   top-k backends over a k sweep from 1 to the full catalog, per-k access
   counts / scan widths, and which backend the adaptive planner would pick
   (the acceptance bar: scan ≥ 5× faster than TA at full-catalog k, planner
   within 20% of the better backend at both ends of the sweep);
2. **parallel verification** — serial vs 4-worker ``verify_candidates``
   wall time over the A*-bound candidates of a query batch (honest numbers:
   on a single-core container the pool cannot win, so ``cpu_count`` is
   recorded alongside the speedup and the ≥ 2× expectation only applies
   with ≥ 2 cores).

The results double as the calibration input for the planner cost-model
constants in :mod:`repro.core.ta_search`.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import SegosIndex  # noqa: E402
from repro.core.ta_search import plan_topk_backend, top_k_stars  # noqa: E402
from repro.core.verify import verify_candidates  # noqa: E402
from repro.datasets import aids_like, sample_queries  # noqa: E402
from repro.graphs.star import decompose  # noqa: E402
from repro.perf.columnar import columnar_snapshot, numpy_available  # noqa: E402
from repro.perf.sed_cache import GLOBAL_SED_CACHE  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_columnar_scan.json"


def _build_catalog(smoke: bool, seed: int):
    db_size = 30 if smoke else 150
    data = aids_like(db_size, seed=seed, mean_order=9, stddev=2)
    engine = SegosIndex(data.graphs, k=15, h=50)
    query_graphs = sample_queries(data, 2 if smoke else 5, seed=seed + 1)
    queries = []
    seen = set()
    for graph in query_graphs:
        for star in decompose(graph):
            if star.signature not in seen:
                seen.add(star.signature)
                queries.append(star)
    return data, engine, queries


def _timed_backend(index, queries, k, backend, repeats):
    """Best-of-*repeats* wall time for one (backend, k) cell."""
    best = None
    results = None
    for _ in range(repeats):
        # The TA backend's exact-SED evaluations go through the memo cache;
        # clear it per pass so TA is not charged for a cold first repeat
        # the scan never pays.
        GLOBAL_SED_CACHE.clear()
        started = time.perf_counter()
        results = [top_k_stars(index, q, k, backend=backend) for q in queries]
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, results


def bench_crossover(engine, queries, repeats: int) -> dict:
    """TA vs scan over a k sweep; the planner graded against both."""
    index = engine.index
    n = len(index.catalog)
    columnar_snapshot(index)  # build the mirror outside the timed region
    sweep = sorted({k for k in (1, 2, 5, 10, 25, 50, 100, 250, n) if 1 <= k <= n})
    curve = []
    for k in sweep:
        time_ta, ta_results = _timed_backend(index, queries, k, "ta", repeats)
        time_scan, scan_results = _timed_backend(index, queries, k, "scan", repeats)
        for a, b in zip(ta_results, scan_results):
            assert a.entries == b.entries, "backends disagreed"
        planner_picks = {plan_topk_backend(index, q, k) for q in queries}
        # The planner is per-query; grade the sweep cell by majority pick.
        picked = "scan" if planner_picks == {"scan"} else (
            "ta" if planner_picks == {"ta"} else "mixed"
        )
        best_time = min(time_ta, time_scan)
        picked_time = {"ta": time_ta, "scan": time_scan}.get(
            picked, max(time_ta, time_scan)
        )
        curve.append(
            {
                "k": k,
                "time_ta_s": time_ta,
                "time_scan_s": time_scan,
                "scan_speedup": time_ta / time_scan if time_scan else None,
                "mean_ta_accesses": sum(r.accesses for r in ta_results)
                / len(ta_results),
                "scan_width": n,
                "planner_pick": picked,
                "planner_within_20pct": picked_time <= 1.2 * best_time,
            }
        )
    full = curve[-1]
    low = curve[0]
    return {
        "catalog_stars": n,
        "distinct_queries": len(queries),
        "repeats": repeats,
        "numpy": numpy_available(),
        "curve": curve,
        "scan_speedup_at_full_k": full["scan_speedup"],
        "scan_5x_at_full_k": bool(
            full["scan_speedup"] and full["scan_speedup"] >= 5.0
        ),
        "planner_ok_low_end": low["planner_within_20pct"],
        "planner_ok_high_end": full["planner_within_20pct"],
    }


def bench_parallel_verify(
    data, engine, tau: float, workers: int, repeats: int, smoke: bool, seed: int
) -> dict:
    """Serial vs pooled A* verification over a query batch's candidates."""
    queries = sample_queries(data, 2 if smoke else 6, seed=seed + 2, edits=2)
    jobs = []
    for query in queries:
        result = engine.range_query(query, tau=tau)
        jobs.append((query, list(result.candidates), set(result.matches)))

    def timed(n_workers: int):
        best, reports = None, None
        for _ in range(repeats):
            started = time.perf_counter()
            reports = [
                verify_candidates(
                    data.graphs,
                    query,
                    candidates,
                    int(tau),
                    already_confirmed=confirmed,
                    workers=n_workers,
                )
                for query, candidates, confirmed in jobs
            ]
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, reports

    time_serial, serial = timed(1)
    time_parallel, parallel = timed(workers)
    for a, b in zip(serial, parallel):
        assert a.matches == b.matches, "parallel verification changed answers"
    speedup = time_serial / time_parallel if time_parallel else None
    cores = os.cpu_count() or 1
    return {
        "queries": len(jobs),
        "candidates": sum(len(c) for _, c, _ in jobs),
        "astar_runs": sum(r.astar_runs for r in serial),
        "workers": workers,
        "repeats": repeats,
        "cpu_count": cores,
        "time_serial_s": time_serial,
        "time_parallel_s": time_parallel,
        "speedup": speedup,
        # The ≥2× acceptance bar only binds when the hardware can deliver it.
        "multicore": cores >= 2,
        "speedup_2x": bool(speedup and speedup >= 2.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, CI import/sanity check"
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--tau",
        type=float,
        default=4.0,
        help="range-query threshold for the verification workload (τ=4 "
        "leaves a healthy share of candidates A*-bound on the bundled "
        "corpus; smaller τ lets the bounds settle everything)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON report path"
    )
    args = parser.parse_args(argv)

    data, engine, queries = _build_catalog(args.smoke, args.seed)
    repeats = max(1, args.repeats)
    report = {
        "meta": {
            "bench": "columnar_scan",
            "smoke": args.smoke,
            "seed": args.seed,
            "tau": args.tau,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": numpy_available(),
            "db_size": len(engine),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "crossover": bench_crossover(engine, queries, repeats),
        "parallel_verify": bench_parallel_verify(
            data, engine, args.tau, args.workers, repeats, args.smoke, args.seed
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
