"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the common failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for invalid graph construction or mutation requests."""


class VertexNotFound(GraphError, KeyError):
    """Raised when an operation references a vertex id that does not exist."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} does not exist")
        self.vertex = vertex


class EdgeNotFound(GraphError, KeyError):
    """Raised when an operation references an edge that does not exist."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) does not exist")
        self.edge = (u, v)


class DuplicateVertex(GraphError, ValueError):
    """Raised when adding a vertex id that is already present."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} already exists")
        self.vertex = vertex


class DuplicateEdge(GraphError, ValueError):
    """Raised when adding an edge that is already present."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.edge = (u, v)


class IndexCorruptionError(ReproError):
    """Raised when an internal index invariant is violated.

    This is a defensive error: user code should never be able to trigger it
    through the public API.  Seeing it means a bug inside :mod:`repro.core`.
    """


class GraphNotIndexed(ReproError, KeyError):
    """Raised when querying or removing a graph id unknown to an index."""

    def __init__(self, gid: object) -> None:
        super().__init__(f"graph {gid!r} is not present in the index")
        self.gid = gid


class GraphAlreadyIndexed(ReproError, ValueError):
    """Raised when inserting a graph id that an index already holds."""

    def __init__(self, gid: object) -> None:
        super().__init__(f"graph {gid!r} is already present in the index")
        self.gid = gid


class ParseError(ReproError, ValueError):
    """Raised when parsing a graph database file fails."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        location = f" (line {line_number})" if line_number is not None else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number


class SidecarError(ReproError, ValueError):
    """Raised when an on-disk ``.segosx`` index sidecar cannot be used.

    Covers a bad magic number, an unknown format version, checksum
    mismatches, and truncated sections.  ``load_index`` treats a sidecar
    that raises this as absent and falls back to rebuilding the index
    from the transaction text, so a corrupt sidecar can never take a
    database down — it only costs the rebuild it was meant to avoid.
    """


def _sha_prefix(sha: object) -> str:
    """Render a SHA-256 (bytes or hex string) as a short readable prefix."""
    if sha is None:
        return "?"
    if isinstance(sha, (bytes, bytearray)):
        sha = bytes(sha).hex()
    return f"{str(sha)[:12]}…"


class StaleSidecarError(SidecarError):
    """Raised when a sidecar is well-formed but out of date.

    Staleness is detected by comparing the graph file's size and content
    hash against the values recorded in the sidecar header, and — for
    worker processes attaching via a :class:`~repro.core.persistence.DiskHandle`
    — by comparing generation counters with the parent engine.

    The structured keywords (all optional) are appended to the message so
    degraded-shard telemetry is debuggable straight from the CLI's
    ``degraded:`` lines: which sidecar file, which generation the attacher
    expected vs found, and the source-hash prefixes that disagreed.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        expected_generation: int | None = None,
        found_generation: int | None = None,
        expected_sha: object = None,
        found_sha: object = None,
    ) -> None:
        details = []
        if path is not None:
            details.append(f"sidecar={path!r}")
        if expected_generation is not None or found_generation is not None:
            details.append(
                f"generation expected={expected_generation} "
                f"found={found_generation}"
            )
        if expected_sha is not None or found_sha is not None:
            details.append(
                f"sha expected={_sha_prefix(expected_sha)} "
                f"found={_sha_prefix(found_sha)}"
            )
        if details:
            message = f"{message} [{', '.join(details)}]"
        super().__init__(message)
        self.path = path
        self.expected_generation = expected_generation
        self.found_generation = found_generation
        self.expected_sha = expected_sha
        self.found_sha = found_sha


class PoolBrokenError(ReproError):
    """Recorded when a worker process pool dies mid-flight.

    The supervised executor (:mod:`repro.resilience.pool`) converts a
    ``BrokenProcessPool`` into this library error, kills the remains of the
    pool, and re-spawns; callers see it in the ``cause`` of a
    :class:`~repro.resilience.telemetry.DegradationEvent` rather than as a
    raised exception.
    """


class WorkerTimeout(ReproError):
    """Recorded when a supervised worker task exceeds its ``task_timeout``.

    A running task cannot be cancelled (``future.cancel()`` is a no-op once
    execution starts), so the supervisor terminates the worker processes
    and retries the unfinished remainder on a fresh pool.
    """

    def __init__(self, task_id: object, timeout: float | None) -> None:
        super().__init__(
            f"worker task {task_id!r} exceeded its timeout of {timeout} s"
        )
        self.task_id = task_id
        self.timeout = timeout


class SearchBudgetExceeded(ReproError):
    """Raised when an exact computation exceeds its configured budget.

    Exact graph edit distance is NP-hard; :func:`repro.graphs.edit_distance`
    refuses to expand more than a configurable number of search states so a
    single pathological pair cannot hang a whole experiment.
    """

    def __init__(self, expanded: int, budget: int) -> None:
        super().__init__(
            f"A* search expanded {expanded} states, exceeding the budget of {budget}"
        )
        self.expanded = expanded
        self.budget = budget
