"""Tests for the verification scheduler."""

from __future__ import annotations

import random

import pytest

from repro.core import verify as verify_mod
from repro.core.engine import SegosIndex
from repro.core.verify import resolve_verify_workers, verify_candidates
from repro.datasets import aids_like, sample_queries
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import erdos_renyi
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def verify_setup():
    data = aids_like(25, seed=19, mean_order=7, stddev=2)
    engine = SegosIndex(data.graphs, k=10, h=30)
    return data, engine


class TestVerifyCandidates:
    def test_exact_partition(self, verify_setup):
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=20, edits=1)[0]
        tau = 2
        result = engine.range_query(query, tau=tau)
        report = verify_candidates(
            data.graphs,
            query,
            result.candidates,
            tau,
            already_confirmed=result.matches,
        )
        truth = {
            gid
            for gid, g in data.graphs.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        assert report.decided()
        assert report.matches == truth
        assert report.rejected == set(result.candidates) - truth

    def test_confirmed_skip_astar(self, verify_setup):
        data, engine = verify_setup
        gid, graph = next(iter(data.graphs.items()))
        report = verify_candidates(
            data.graphs, graph.copy(), [gid], 0, already_confirmed=[gid]
        )
        assert report.astar_runs == 0
        assert gid in report.matches

    def test_bounds_settle_without_astar(self, verify_setup):
        data, _ = verify_setup
        gid, graph = next(iter(data.graphs.items()))
        # Self-query: U_m = 0 ≤ τ, settled by bounds.
        report = verify_candidates(data.graphs, graph.copy(), [gid], 0)
        assert report.settled_by_bounds == 1
        assert report.astar_runs == 0
        assert gid in report.matches

    def test_budget_exhaustion_is_undecided(self):
        rng = random.Random(2)
        q = erdos_renyi(rng, "ab", 9, 0.5)
        g = erdos_renyi(rng, "ab", 9, 0.5)
        report = verify_candidates({"g": g}, q, ["g"], 3, budget_per_candidate=2)
        assert report.undecided in ({"g"}, set())  # bounds may settle it
        assert report.decided() == (not report.undecided)

    def test_deadline_zero_defers_everything_scheduled(self, verify_setup):
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=21)[0]
        result = engine.range_query(query, tau=5)
        report = verify_candidates(
            data.graphs, query, result.candidates, 5, deadline=0.0
        )
        # Whatever bounds could not settle is undecided, never silently
        # dropped.
        assert (
            len(report.matches)
            + len(report.rejected)
            + len(report.undecided)
            >= len(result.candidates)
        )
        assert report.astar_runs == 0

    def test_validation(self, verify_setup):
        data, _ = verify_setup
        with pytest.raises(ValueError):
            verify_candidates(data.graphs, Graph(["a"]), [], -1)

    def test_empty_candidates(self, verify_setup):
        data, _ = verify_setup
        report = verify_candidates(data.graphs, Graph(["C00"]), [], 1)
        assert report.decided()
        assert not report.matches


class TestParallelVerification:
    def test_resolve_workers_precedence(self, monkeypatch):
        monkeypatch.delenv(verify_mod.ENV_VERIFY_WORKERS, raising=False)
        assert resolve_verify_workers() == 1
        assert resolve_verify_workers(3) == 3
        monkeypatch.setenv(verify_mod.ENV_VERIFY_WORKERS, "4")
        assert resolve_verify_workers() == 4
        assert resolve_verify_workers(2) == 2  # argument beats environment
        monkeypatch.setenv(verify_mod.ENV_VERIFY_WORKERS, "garbage")
        assert resolve_verify_workers() == 1
        with pytest.raises(ValueError):
            resolve_verify_workers(0)

    def test_parallel_report_equals_serial(self, verify_setup):
        """Same partition, same bookkeeping, regardless of worker count."""
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=22, edits=1)[0]
        tau = 2
        result = engine.range_query(query, tau=tau)
        serial = verify_candidates(data.graphs, query, result.candidates, tau)
        parallel = verify_candidates(
            data.graphs, query, result.candidates, tau, workers=2
        )
        assert parallel.matches == serial.matches
        assert parallel.rejected == serial.rejected
        assert parallel.undecided == serial.undecided
        assert parallel.settled_by_bounds == serial.settled_by_bounds
        assert parallel.astar_runs == serial.astar_runs

    def test_workers_used_recorded(self, verify_setup):
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=23, edits=1)[0]
        result = engine.range_query(query, tau=2)
        report = verify_candidates(
            data.graphs, query, result.candidates, 2, workers=2
        )
        # Either the pool engaged (≥ 2 scheduled runs) or everything was
        # settled by bounds / a lone A* run stayed serial.
        assert report.workers_used in (1, 2)

    def test_env_var_engages_parallel_path(self, verify_setup, monkeypatch):
        data, engine = verify_setup
        monkeypatch.setenv(verify_mod.ENV_VERIFY_WORKERS, "2")
        query = sample_queries(data, 1, seed=24, edits=1)[0]
        tau = 2
        result = engine.range_query(query, tau=tau)
        report = verify_candidates(data.graphs, query, result.candidates, tau)
        monkeypatch.delenv(verify_mod.ENV_VERIFY_WORKERS)
        serial = verify_candidates(data.graphs, query, result.candidates, tau)
        assert report.matches == serial.matches
        assert report.rejected == serial.rejected

    def test_unpicklable_graphs_fall_back_to_serial(self, verify_setup):
        data, _ = verify_setup
        gid, graph = next(iter(data.graphs.items()))

        class Unpicklable(Graph):
            def __reduce__(self):
                raise TypeError("not today")

        bad = Unpicklable(graph.labels(), list(graph.edges()))
        truth = verify_candidates({gid: graph}, graph.copy(), [gid], 1)
        report = verify_candidates(
            {gid: bad}, graph.copy(), [gid, gid], 1, workers=2
        )
        assert report.matches == truth.matches
        assert report.workers_used == 1

    def test_range_query_exact_with_workers(self, verify_setup):
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=25, edits=1)[0]
        tau = 2
        plain = engine.range_query(query, tau=tau, verify="exact")
        parallel = engine.range_query(
            query, tau=tau, verify="exact", verify_workers=2
        )
        assert parallel.matches == plain.matches
        assert parallel.verified == plain.verified
        assert parallel.stats.astar_runs == plain.stats.astar_runs
        assert parallel.stats.settled_by_bounds == plain.stats.settled_by_bounds
