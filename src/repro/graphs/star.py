"""Star decomposition and the star edit distance (Section III-A).

A *star* is a labelled, single-level, rooted tree ``s = (r, L, l)``: a root
vertex plus the multiset of its neighbours' labels.  A graph with ``n``
vertices decomposes into a multiset of exactly ``n`` stars, one rooted at
each vertex.  Stars are the "sub-units" that SEGOS indexes.

This module implements:

* :class:`Star` — an immutable star with a canonical label-sequence
  signature (the paper writes ``s0: abbcc`` for root ``a``, leaves
  ``{b, b, c, c}``);
* :func:`decompose` — the graph → star multiset transformation;
* :func:`star_edit_distance` — Lemma 1, computed in Θ(n) on the sorted leaf
  multisets;
* :func:`sed_via_common_leaves` — Equation (1), the reformulation that TA
  search aggregates over (``ψ`` = number of common leaf labels);
* :func:`epsilon_distance` — the cost ``λ(s, ε)`` of matching a star against
  the padding ε sub-unit, which Figure 3 fixes at ``1 + 2·|L|``.
"""

from __future__ import annotations

from typing import Counter as CounterType
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .model import Graph, Label


class Star:
    """An immutable star sub-unit: a root label plus sorted leaf labels.

    Examples
    --------
    >>> s = Star("a", ["c", "b", "b", "c"])
    >>> s.signature
    'a|b,b,c,c'
    >>> s.leaf_size
    4
    """

    __slots__ = ("root", "leaves", "_hash", "_signature")

    def __init__(self, root: Label, leaves: Iterable[Label] = ()) -> None:
        self.root: Label = root
        self.leaves: Tuple[Label, ...] = tuple(sorted(leaves))
        self._hash = hash((self.root, self.leaves))
        self._signature = f"{root}|{','.join(self.leaves)}"

    @property
    def leaf_size(self) -> int:
        """``|L|``: the number of leaves (equals the root's degree)."""
        return len(self.leaves)

    @property
    def signature(self) -> str:
        """Canonical string form used as the upper-level index key.

        The separator characters keep multi-character labels unambiguous
        (``("ab", "c")`` and ``("a", "bc")`` must not collide).  Precomputed
        at construction: the SED memo cache keys on signature pairs, so this
        sits on the filter stage's hottest path.
        """
        return self._signature

    def leaf_counter(self) -> CounterType[Label]:
        """Return the leaf label multiset as a :class:`collections.Counter`."""
        return Counter(self.leaves)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Star):
            return NotImplemented
        return self.root == other.root and self.leaves == other.leaves

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Star") -> bool:
        """Alphabetical order on signatures (the upper-level index order)."""
        return (self.root, self.leaves) < (other.root, other.leaves)

    def __repr__(self) -> str:
        return f"Star({self.signature!r})"


def star_at(graph: Graph, vertex: int) -> Star:
    """Build the star rooted at *vertex* of *graph*."""
    return Star(graph.label(vertex), (graph.label(n) for n in graph.neighbors(vertex)))


def decompose(graph: Graph) -> List[Star]:
    """Decompose *graph* into its multiset of stars, one per vertex.

    The result is ordered by vertex insertion order; callers that need a
    canonical multiset should sort by :attr:`Star.signature`.
    """
    return [star_at(graph, v) for v in graph.vertices()]


def decompose_map(graph: Graph) -> Dict[int, Star]:
    """Like :func:`decompose` but keyed by vertex id.

    The key → star association is what lets the Hungarian star alignment be
    lifted back to a vertex mapping (needed for the Lemma 3 upper bound).
    """
    return {v: star_at(graph, v) for v in graph.vertices()}


def multiset_intersection_size(
    left: Sequence[Label], right: Sequence[Label]
) -> int:
    """``|Ψ₁ ∩ Ψ₂|`` — multiset intersection size of two *sorted* sequences.

    Runs in Θ(|left| + |right|); both inputs must already be sorted, which
    :class:`Star` guarantees for its ``leaves`` tuple.
    """
    i = j = common = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        a, b = left[i], right[j]
        if a == b:
            common += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return common


def sed_from_psi(root_equal: bool, n1: int, n2: int, psi: int) -> int:
    """Lemma 1 in the ``2·max − min − ψ`` form shared by every SED kernel.

    ``||L1| − |L2|| + max(|L1|, |L2|)`` equals ``2·max(|L1|, |L2|) −
    min(|L1|, |L2|)``, so the whole distance is a function of the two leaf
    sizes and the common-leaf count ``ψ`` alone.  The scalar
    :func:`star_edit_distance`, the Equation (1) rewrite
    :func:`sed_via_common_leaves` and the columnar batch kernel
    (:mod:`repro.perf.columnar`) all reduce to this one expression, which is
    what lets a property test pin them against each other.

    Examples
    --------
    >>> sed_from_psi(True, 4, 5, 4)
    2
    """
    return (0 if root_equal else 1) + 2 * max(n1, n2) - min(n1, n2) - psi


def star_edit_distance(s1: Star, s2: Star) -> int:
    """Lemma 1: ``λ(s1, s2) = T(r1, r2) + d(L1, L2)``.

    ``T`` is 0/1 on root label equality and
    ``d(L1, L2) = ||L1| − |L2|| + max(|Ψ1|, |Ψ2|) − |Ψ1 ∩ Ψ2|``.

    Examples
    --------
    Figure 2's worked example (``s0 = abbcc`` vs ``s1 = abbccd``):

    >>> star_edit_distance(Star("a", "bbcc"), Star("a", "bbccd"))
    2
    """
    common = multiset_intersection_size(s1.leaves, s2.leaves)
    return sed_from_psi(s1.root == s2.root, s1.leaf_size, s2.leaf_size, common)


def sed_via_common_leaves(
    query: Star, other_root: Label, other_leaf_size: int, common: int
) -> int:
    """Equation (1): SED from ``ψ`` (common leaves) and ``|L_i]``.

    This is the decomposition the TA stage's aggregation functions are built
    on.  It must equal :func:`star_edit_distance` for the true ``ψ``; a
    property test asserts that.
    """
    return sed_from_psi(
        query.root == other_root, query.leaf_size, other_leaf_size, common
    )


def epsilon_distance(star: Star) -> int:
    """``λ(s, ε)``: cost of aligning *star* with the padding ε sub-unit.

    Figure 3's full cost matrix fixes this at ``1 + 2·|L|`` (delete the root
    plus, per Lemma 1's ``d`` term against an empty leaf set, ``2·|L|`` for
    the leaves), e.g. ``λ(abbccd, ε) = 11`` and ``λ(bab, ε) = 5``.
    """
    return 1 + 2 * star.leaf_size


def max_epsilon_distance(stars: Iterable[Star]) -> int:
    """``χ̄ = max_{s} λ(s, ε)`` over a collection of stars (Section V-C)."""
    result = 0
    for s in stars:
        d = epsilon_distance(s)
        if d > result:
            result = d
    return result


EPSILON_SIGNATURE = "ε"
"""Display name for the ε padding sub-unit (never a real signature)."""
