#!/usr/bin/env python
"""Compare two bench-report JSONs and fail on timing regressions.

Used by the CI chaos job as the zero-overhead proof for the resilience
layer: a smoke bench run with the fault registry explicitly disabled must
land within tolerance of the baseline run, or the "one truthiness test on
the hot path" claim is broken::

    python benchmarks/check_bench_regression.py baseline.json candidate.json \
        --tolerance 0.05 --abs-floor 0.05

Every numeric leaf whose key starts with ``time_`` is compared; the
candidate fails when it exceeds ``baseline * (1 + tolerance) + abs_floor``.
The absolute floor keeps sub-100ms smoke timings from flagging scheduler
noise as a regression.  Exits 0 (all within tolerance) or 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterator, Tuple


def _time_leaves(obj, prefix: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                yield from _time_leaves(value, path)
            elif str(key).startswith("time_") and isinstance(value, (int, float)):
                yield path, float(value)


def compare(
    baseline: Dict, candidate: Dict, tolerance: float, abs_floor: float
) -> Tuple[list, list]:
    """Return ``(rows, regressions)`` over the shared ``time_*`` metrics."""
    base = dict(_time_leaves(baseline))
    cand = dict(_time_leaves(candidate))
    rows, regressions = [], []
    for path in sorted(base.keys() & cand.keys()):
        limit = base[path] * (1.0 + tolerance) + abs_floor
        ok = cand[path] <= limit
        rows.append((path, base[path], cand[path], ok))
        if not ok:
            regressions.append(path)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, allow_abbrev=False,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="reference bench JSON")
    parser.add_argument("candidate", help="bench JSON to validate")
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative slowdown (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--abs-floor", type=float, default=0.05,
        help="absolute seconds of slack added on top (default 0.05)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    rows, regressions = compare(baseline, candidate, args.tolerance, args.abs_floor)
    if not rows:
        print("error: no shared time_* metrics between the two reports")
        return 1
    width = max(len(path) for path, *_ in rows)
    for path, base, cand, ok in rows:
        delta = (cand / base - 1.0) * 100 if base else float("inf")
        flag = "ok" if ok else "REGRESSION"
        print(f"{path:<{width}}  {base:9.4f}s -> {cand:9.4f}s  {delta:+7.1f}%  {flag}")
    if regressions:
        print(
            f"{len(regressions)} metric(s) regressed beyond "
            f"{args.tolerance:.0%} + {args.abs_floor}s: {', '.join(regressions)}"
        )
        return 1
    print(f"all {len(rows)} time_* metrics within {args.tolerance:.0%} (+{args.abs_floor}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
