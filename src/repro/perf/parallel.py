"""Process-parallel batch range queries (chunked ``concurrent.futures``).

The batch API of :meth:`repro.core.engine.SegosIndex.batch_range_query` is
embarrassingly parallel across queries: each range query only reads the
index.  CPython's GIL rules out thread-level speed-ups for this pure-Python
CPU-bound work, so the parallel path ships the engine to worker *processes*
once (via an executor initializer) and fans contiguous query chunks out to
them, preserving input order in the results.

Robustness contract:

* engines that cannot be pickled (e.g. the sqlite backend holds a live
  connection) are detected up front and the caller falls back to the serial
  path — same answers, no crash;
* a broken pool (worker killed, fork unavailable) likewise degrades to
  serial rather than raising;
* genuine query errors (empty query graph, negative τ) propagate exactly as
  they would serially.

Each chunk runs the engine's serial batch internally, so the shared-TA-cache
optimisation still applies within a chunk; per-query :class:`QueryStats`
come back intact and can be folded with
:meth:`repro.core.stats.QueryStats.merged`.

Worker count precedence: explicit ``workers=`` argument, then the
``REPRO_BATCH_WORKERS`` environment variable, then serial.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..config import ENV_BATCH_WORKERS, env_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..core.engine import QueryResult, SegosIndex
    from ..graphs.model import Graph

#: Environment variable supplying the default worker count (1 = serial).
#: Alias of :data:`repro.config.ENV_BATCH_WORKERS`.
ENV_WORKERS = ENV_BATCH_WORKERS


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count from argument / environment / serial."""
    if workers is None:
        workers = env_int(ENV_WORKERS, 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def chunk_evenly(items: Sequence[Any], parts: int) -> List[List[Any]]:
    """Split *items* into ≤ *parts* contiguous, near-equal, non-empty chunks."""
    parts = min(parts, len(items))
    if parts <= 0:
        return []
    base, extra = divmod(len(items), parts)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


# The engine travels to each worker exactly once, through the executor
# initializer, and is cached as a per-process global.
_WORKER_ENGINE: Optional["SegosIndex"] = None


def _init_worker(engine_blob: bytes) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = pickle.loads(engine_blob)


def _run_chunk(
    queries: List["Graph"], tau: float, kwargs: Dict[str, Any]
) -> List["QueryResult"]:
    assert _WORKER_ENGINE is not None, "worker initializer did not run"
    return _WORKER_ENGINE._serial_batch_range_query(queries, tau, **kwargs)


def parallel_batch_range_query(
    engine: "SegosIndex",
    queries: Sequence["Graph"],
    tau: float,
    *,
    workers: int,
    k: Optional[int] = None,
    h: Optional[int] = None,
    verify: str = "none",
) -> Optional[List["QueryResult"]]:
    """Fan a batch of range queries out over *workers* processes.

    Returns results in input order, or ``None`` when process-parallel
    execution is impossible (unpicklable engine, broken pool) and the caller
    should run serially instead.
    """
    try:
        engine_blob = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # e.g. sqlite backend: connections don't pickle
    chunks = chunk_evenly(queries, workers)
    # verify_workers pinned to 1: the batch already owns the process fan-out,
    # and REPRO_VERIFY_WORKERS is inherited by workers — without the pin each
    # chunk would nest a second pool per query.
    kwargs = {"k": k, "h": h, "verify": verify, "verify_workers": 1}
    try:
        with ProcessPoolExecutor(
            max_workers=len(chunks), initializer=_init_worker, initargs=(engine_blob,)
        ) as pool:
            futures = [pool.submit(_run_chunk, chunk, tau, kwargs) for chunk in chunks]
            per_chunk = [future.result() for future in futures]
    except (BrokenProcessPool, OSError, pickle.PicklingError):
        return None
    return [result for chunk_results in per_chunk for result in chunk_results]
