"""The observability layer: tracer semantics, the metrics registry, the
exporters, the config knobs — and the golden end-to-end trace of a
pipelined query whose verification crosses a crashing worker pool.
"""

from __future__ import annotations

import json
import pickle
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ENV_METRICS, ENV_TRACE, ENV_TRACE_PATH, EngineConfig
from repro.core.engine import SegosIndex
from repro.core.knn import knn_query
from repro.core.join import similarity_self_join
from repro.core.pipeline import PipelinedSegos
from repro.graphs.model import Graph
from repro.obs import (
    GLOBAL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Span,
    SpanContext,
    Trace,
    Tracer,
    activate,
    chrome_trace_events,
    current_tracer,
    prometheus_text,
    read_spans_jsonl,
    record_query_metrics,
    span_from_dict,
    span_to_dict,
    trace_query,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.perf.sed_cache import sed_cache_clear


def build_engine(items, **kwargs):
    engine = SegosIndex(**kwargs)
    for gid, graph in items:
        engine.add(gid, graph)
    return engine


@pytest.fixture(scope="module")
def corpus(small_aids):
    return list(small_aids.graphs.items())[:25]


# Module-scoped: queries never mutate the engine, and hypothesis
# (the identity property below) requires non-function-scoped fixtures.
@pytest.fixture(scope="module")
def engine(corpus):
    return build_engine(corpus)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_builds_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.snapshot()[-1]
        inner = tracer.snapshot()[0]
        assert (outer.name, inner.name) == ("outer", "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""  # root
        assert inner.trace_id == outer.trace_id == tracer.trace_id
        assert outer.end >= inner.end >= inner.start >= outer.start

    def test_error_status_and_reraise(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.snapshot()
        assert span.status == "error"
        assert span.end >= span.start

    def test_thread_without_stack_uses_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            parent = root.context()

            def work():
                with tracer.span("threaded", parent=parent):
                    pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        threaded = tracer.to_trace().find("threaded")[0]
        assert threaded.parent_id == parent.span_id
        assert threaded.tid != tracer.to_trace().find("root")[0].tid

    def test_fallback_parent_seeds_orphan_threads(self):
        tracer = Tracer(trace_id="t-1", parent_id="remote-parent")
        assert tracer.current_context() == SpanContext("t-1", "remote-parent")
        with tracer.span("adopted"):
            pass
        assert tracer.snapshot()[0].parent_id == "remote-parent"

    def test_event_is_instant_and_linkable(self):
        tracer = Tracer()
        with tracer.span("host"):
            span_id = tracer.event("blip", detail=1)
        blip = tracer.to_trace().find("blip")[0]
        assert blip.span_id == span_id
        assert blip.duration == 0.0
        assert blip.parent_id == tracer.to_trace().find("host")[0].span_id
        assert blip.attrs == {"detail": 1}

    def test_begin_end_span_skips_the_stack(self):
        tracer = Tracer()
        pool = tracer.begin("pool", tasks=3)
        # begin() does not make `pool` ambient on this thread:
        with tracer.span("sibling"):
            pass
        tracer.end_span(pool, retries=1)
        by_name = {s.name: s for s in tracer.snapshot()}
        assert by_name["sibling"].parent_id == ""
        assert by_name["pool"].attrs == {"tasks": 3, "retries": 1}
        assert by_name["pool"].end >= by_name["pool"].start

    def test_adopt_merges_worker_spans(self):
        parent = Tracer()
        with parent.span("pool") as pool:
            ctx = pool.context()
        worker = Tracer(trace_id=ctx.trace_id, parent_id=ctx.span_id)
        with worker.span("task"):
            pass
        parent.adopt(worker.snapshot())
        trace = parent.to_trace()
        assert trace.find("task")[0].parent_id == ctx.span_id
        assert len(trace) == 2

    def test_drain_unexported_is_incremental(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [s.name for s in tracer.drain_unexported()] == ["a"]
        assert tracer.drain_unexported() == []
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.drain_unexported()] == ["b"]
        # snapshot() never consumes
        assert [s.name for s in tracer.snapshot()] == ["a", "b"]


class TestNullTracer:
    def test_every_surface_is_a_noop(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x", parent=None, attr=1) as span:
            assert span is None
        assert NULL_TRACER.event("x") == ""
        assert NULL_TRACER.begin("x") is None
        NULL_TRACER.end_span(None)  # must not raise
        NULL_TRACER.adopt([])
        assert NULL_TRACER.current_context() is None
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.drain_unexported() == []
        assert len(NULL_TRACER.to_trace()) == 0

    def test_span_cm_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ----------------------------------------------------------------------
# Trace view
# ----------------------------------------------------------------------
def _toy_trace():
    tracer = Tracer()
    with tracer.span("query", tau=2):
        with tracer.span("ta"):
            pass
        with tracer.span("ca"):
            pass
        tracer.event("degradation:worker.crash")
    return tracer.to_trace()


class TestTraceView:
    def test_roots_children_find(self):
        trace = _toy_trace()
        (root,) = trace.roots()
        assert root.name == "query"
        kids = [s.name for s in trace.children(root.span_id)]
        assert kids == ["ta", "ca", "degradation:worker.crash"]
        assert len(trace.find("ta")) == 1
        assert trace.find("nope") == []

    def test_live_view_grows_with_the_tracer(self):
        tracer = Tracer()
        trace = tracer.to_trace()
        assert len(trace) == 0
        with tracer.span("later"):
            pass
        assert [s.name for s in trace.spans] == ["later"]

    def test_render_indents_and_annotates(self):
        trace = _toy_trace()
        text = trace.render()
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "[tau=2]" in lines[0]
        assert any(line.startswith("  ta") for line in lines)
        assert len(lines) == 4

    def test_orphan_spans_render_as_roots(self):
        span = Span(name="lost", trace_id="t", span_id="s", parent_id="gone")
        trace = Trace([span], "t")
        assert trace.roots() == [span]
        assert trace.render().startswith("lost")

    def test_pickle_materialises_live_view(self):
        tracer = Tracer()
        with tracer.span("q"):
            pass
        clone = pickle.loads(pickle.dumps(tracer.to_trace()))
        assert clone.trace_id == tracer.trace_id
        assert [s.name for s in clone.spans] == ["q"]
        # the clone is detached: new spans do not appear
        with tracer.span("afterwards"):
            pass
        assert len(clone) == 1

    def test_processes_lists_distinct_pids(self):
        spans = [
            Span(name="a", trace_id="t", span_id="1", pid=10),
            Span(name="b", trace_id="t", span_id="2", pid=20),
            Span(name="c", trace_id="t", span_id="3", pid=10),
        ]
        assert Trace(spans, "t").processes() == [10, 20]


class TestAmbientTracer:
    def test_trace_query_installs_and_restores(self):
        assert current_tracer() is None
        with trace_query("outer", run="x") as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None
        (root,) = tracer.snapshot()
        assert root.name == "outer" and root.attrs == {"run": "x"}

    def test_activate_nests(self):
        a, b = Tracer(), Tracer()
        with activate(a):
            with activate(b):
                assert current_tracer() is b
            assert current_tracer() is a


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "hits", kind="a")
        c.inc()
        c.inc(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_up_and_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.counts == [1, 2, 3]  # cumulative, +Inf implicit
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_same_name_and_labels_is_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("x", mode="a") is reg.counter("x", mode="a")
        assert reg.counter("x", mode="a") is not reg.counter("x", mode="b")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", kind="other")

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("c", mode="r").inc(2)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        snap = reg.snapshot()
        assert snap['c{mode="r"}'] == 2
        assert snap["h_sum"] == 0.5 and snap["h_count"] == 1
        reg.reset()
        assert reg.snapshot() == {}


def _strip_timing(snapshot):
    """Drop wall-clock-derived series (they differ run to run by nature)."""
    return {k: v for k, v in snapshot.items() if "seconds" not in k}


class TestRecordQueryMetrics:
    def test_real_query_populates_the_registry(self, engine, corpus):
        result = engine.range_query(corpus[0][1], tau=2, verify="exact")
        reg = MetricsRegistry()
        record_query_metrics(reg, result.stats, result.elapsed)
        snap = reg.snapshot()
        assert snap['repro_queries_total{mode="range"}'] == 1
        assert snap["repro_ta_accesses_total"] == result.stats.ta_accesses
        assert snap["repro_candidates_total"] == result.stats.candidates
        assert 'repro_query_seconds_count{mode="range"}' in snap

    def test_prometheus_text_round_trips_structure(self):
        reg = MetricsRegistry()
        reg.counter("repro_queries_total", "queries", mode="range").inc(3)
        reg.histogram("repro_lat", "latency", buckets=(0.1, 1.0)).observe(0.5)
        text = prometheus_text(reg)
        assert "# HELP repro_queries_total queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{mode="range"} 3' in text
        assert 'repro_lat_bucket{le="0.1"} 0' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 0.5" in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")
        assert prometheus_text(MetricsRegistry()) == ""


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        trace = _toy_trace()
        path = str(tmp_path / "spans.jsonl")
        wrote = write_spans_jsonl(trace, path, append=False)
        assert wrote == len(trace)
        loaded = read_spans_jsonl(path)
        assert loaded == trace.spans
        # append mode accumulates across traced queries
        write_spans_jsonl(trace.spans[:1], path)
        assert len(read_spans_jsonl(path)) == wrote + 1

    def test_span_dict_round_trip_defaults(self):
        span = _toy_trace().spans[0]
        assert span_from_dict(span_to_dict(span)) == span
        sparse = span_from_dict({"name": "n", "trace_id": "t", "span_id": "s"})
        assert sparse.parent_id == "" and sparse.status == "ok"

    def test_chrome_events_shape(self, tmp_path):
        trace = _toy_trace()
        events = chrome_trace_events(trace)
        by_name = {e["name"]: e for e in events}
        query = by_name["query"]
        assert query["ph"] == "X" and query["dur"] >= 0
        assert query["args"]["tau"] == 2
        assert query["args"]["span_id"]
        instant = by_name["degradation:worker.crash"]
        assert instant["ph"] == "i" and instant["s"] == "p"
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(trace, path) == len(events)
        payload = json.loads(open(path).read())
        assert len(payload["traceEvents"]) == len(events)


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
class TestObsKnobs:
    def test_defaults_off(self, monkeypatch):
        for env in (ENV_TRACE, ENV_TRACE_PATH, ENV_METRICS):
            monkeypatch.delenv(env, raising=False)
        config = EngineConfig.from_env()
        assert config.trace is False
        assert config.trace_path is None
        assert config.metrics is False

    def test_env_switches_on(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_TRACE, "1")
        monkeypatch.setenv(ENV_TRACE_PATH, str(tmp_path / "t.jsonl"))
        monkeypatch.setenv(ENV_METRICS, "true")
        config = EngineConfig.from_env()
        assert config.trace is True
        assert config.trace_path == str(tmp_path / "t.jsonl")
        assert config.metrics is True

    def test_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE, "0")
        monkeypatch.setenv(ENV_METRICS, "no")
        config = EngineConfig.from_env()
        assert config.trace is False and config.metrics is False

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE, "1")
        assert EngineConfig.from_env(trace=False).trace is False
        monkeypatch.delenv(ENV_TRACE)
        assert EngineConfig.from_env(trace=True).trace is True


# ----------------------------------------------------------------------
# Traced queries through the public API
# ----------------------------------------------------------------------
class TestTracedQueries:
    def test_untraced_query_has_no_trace_handle(self, engine, corpus):
        result = engine.range_query(corpus[0][1], tau=2)
        assert result.trace is None

    def test_traced_range_query_span_tree(self, engine, corpus):
        result = engine.range_query(corpus[0][1], tau=2, verify="exact", trace=True)
        trace = result.trace
        assert trace is not None
        (root,) = trace.roots()
        assert root.name == "query"
        stages = [s.name for s in trace.children(root.span_id)]
        assert stages == ["ta", "ca", "verify"]

    def test_trace_true_identical_answers(self, engine, corpus):
        query = corpus[1][1]
        sed_cache_clear()
        plain = engine.range_query(query, tau=2, verify="exact")
        sed_cache_clear()
        traced = engine.range_query(query, tau=2, verify="exact", trace=True)
        assert sorted(map(str, traced.candidates)) == sorted(
            map(str, plain.candidates)
        )
        assert traced.matches == plain.matches

    @settings(deadline=None, max_examples=8)
    @given(index=st.integers(min_value=0, max_value=24), tau=st.sampled_from([0, 1, 2, 3]))
    def test_metrics_identical_traced_vs_untraced(self, engine, corpus, index, tau):
        """The identity guarantee: metrics derive from finished QueryStats,
        so tracing must not change a single non-timing series — for any
        query and threshold."""
        query = corpus[index][1]
        sed_cache_clear()
        plain = engine.range_query(query, tau=tau, verify="exact")
        sed_cache_clear()
        traced = engine.range_query(query, tau=tau, verify="exact", trace=True)
        reg_plain, reg_traced = MetricsRegistry(), MetricsRegistry()
        record_query_metrics(reg_plain, plain.stats, 0.0)
        record_query_metrics(reg_traced, traced.stats, 0.0)
        assert _strip_timing(reg_plain.snapshot()) == _strip_timing(
            reg_traced.snapshot()
        )

    def test_config_metrics_knob_feeds_global_registry(self, corpus):
        engine = build_engine(corpus, metrics=True)
        before = GLOBAL_METRICS.snapshot().get(
            'repro_queries_total{mode="range"}', 0
        )
        engine.range_query(corpus[0][1], tau=1)
        after = GLOBAL_METRICS.snapshot()['repro_queries_total{mode="range"}']
        assert after == before + 1

    def test_trace_path_appends_jsonl(self, corpus, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        engine = build_engine(corpus, trace=True, trace_path=path)
        engine.range_query(corpus[0][1], tau=1)
        engine.range_query(corpus[1][1], tau=1)
        spans = read_spans_jsonl(path)
        names = {s.name for s in spans}
        assert {"query", "ta", "ca"} <= names
        assert len({s.trace_id for s in spans}) == 2  # one trace per query

    def test_ambient_trace_query_collects_engine_spans(self, engine, corpus):
        with trace_query("experiment") as tracer:
            engine.range_query(corpus[0][1], tau=1)
            engine.range_query(corpus[1][1], tau=1)
        trace = tracer.to_trace()
        (root,) = trace.roots()
        assert root.name == "experiment"
        assert len(trace.find("query")) == 2
        assert all(s.parent_id == root.span_id for s in trace.find("query"))

    def test_batch_results_share_one_trace(self, engine, corpus):
        queries = [corpus[0][1], corpus[1][1], corpus[2][1]]
        results = engine.batch_range_query(queries, tau=1, trace=True)
        traces = {id(r.trace) for r in results}
        assert len(traces) == 1
        trace = results[0].trace
        (root,) = trace.roots()
        assert root.name == "batch"
        assert len(trace.find("query")) == len(queries)

    def test_knn_and_join_return_trace_handles(self, engine, corpus):
        knn = knn_query(engine, corpus[0][1], k=2)
        assert knn.trace is None  # tracing off by default
        with trace_query("session") as tracer:
            knn = knn_query(engine, corpus[0][1], k=2)
            join = similarity_self_join(engine, tau=0)
        assert knn.trace is not None and join.trace is not None
        names = {s.name for s in tracer.snapshot()}
        assert {"knn", "join", "query"} <= names


# ----------------------------------------------------------------------
# Golden end-to-end: a traced pipelined query across a crashing pool
# ----------------------------------------------------------------------
def _rand_graph(n, seed, extra=3, labels="abcd"):
    import random

    rng = random.Random(seed)
    ls = [rng.choice(labels) for _ in range(n)]
    edges = [(i, i + 1) for i in range(n - 1)]
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        edge = (min(u, v), max(u, v))
        if edge not in edges:
            edges.append(edge)
    return Graph(ls, edges)


@pytest.fixture(scope="module")
def golden_result():
    """One traced pipelined query: exact verification fans out to two
    worker processes, one of which is scripted to crash (and be respawned);
    everything must stitch back into a single span tree."""
    graphs = {f"v{i}": _rand_graph(7, seed=i) for i in range(14)}
    engine = SegosIndex(
        graphs,
        verify_workers=2,
        fault_plan="worker.crash:times=1:stage=verify",
        retry_backoff=0.0,
    )
    query = _rand_graph(7, seed=99)
    result = PipelinedSegos(engine).range_query(
        query, tau=4, verify="exact", trace=True
    )
    assert result.stats.astar_runs > 1  # precondition: the pool really ran
    return result


class TestGoldenPipelinedTrace:
    def test_stage_spans_fused_and_ordered(self, golden_result):
        trace = golden_result.trace
        (root,) = trace.roots()
        assert root.name == "query"
        stages = [s.name for s in trace.children(root.span_id)]
        assert stages == ["ta+ca", "verify"]

    def test_pipeline_threads_attach_under_fused_stage(self, golden_result):
        trace = golden_result.trace
        fused = trace.find("ta+ca")[0]
        kids = {s.name for s in trace.children(fused.span_id)}
        assert {"pipeline.ta", "pipeline.dc", "pipeline.ca"} <= kids

    def test_worker_process_spans_are_stitched(self, golden_result):
        trace = golden_result.trace
        assert len(trace.processes()) >= 2, "no worker-process spans adopted"
        pool = trace.find("pool:verify")[0]
        tasks = trace.children(pool.span_id)
        worker_tasks = [s for s in tasks if s.name == "task:verify"]
        assert worker_tasks
        parent_pid = trace.roots()[0].pid
        assert any(s.pid != parent_pid for s in worker_tasks)
        # worker-side A* spans nest under their task span
        astar = trace.find("verify.astar")
        task_ids = {s.span_id for s in worker_tasks}
        assert any(s.parent_id in task_ids for s in astar)

    def test_degradation_event_links_into_the_tree(self, golden_result):
        events = golden_result.stats.degradations
        assert events and all(e.span_id for e in events)
        span_ids = {s.span_id for s in golden_result.trace.spans}
        assert all(e.span_id in span_ids for e in events)
        crash = golden_result.trace.find("degradation:worker.crash")
        assert crash and crash[0].attrs.get("injected") is True

    def test_exports_round_trip(self, golden_result, tmp_path):
        trace = golden_result.trace
        path = str(tmp_path / "golden.jsonl")
        write_spans_jsonl(trace, path, append=False)
        loaded = read_spans_jsonl(path)
        assert loaded == trace.spans
        assert Trace(loaded, trace.trace_id).render() == trace.render()
        events = chrome_trace_events(trace)
        assert len(events) == len(trace.spans)
        assert len({e["pid"] for e in events}) >= 2

    def test_verdicts_match_untraced_run(self, golden_result):
        graphs = {f"v{i}": _rand_graph(7, seed=i) for i in range(14)}
        engine = SegosIndex(graphs)
        query = _rand_graph(7, seed=99)
        plain = PipelinedSegos(engine).range_query(query, tau=4, verify="exact")
        assert golden_result.matches == plain.matches


# ----------------------------------------------------------------------
# Facade completeness (satellite: one public surface, fully exported)
# ----------------------------------------------------------------------
class TestFacade:
    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_all_is_sorted_and_unique(self):
        import repro

        names = [n for n in repro.__all__ if n != "__version__"]
        assert names == sorted(names)
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_obs_entry_points_on_facade(self):
        import repro
        from repro.obs import trace as trace_mod

        assert repro.trace_query is trace_mod.trace_query
        assert repro.Trace is trace_mod.Trace
        assert repro.GLOBAL_METRICS is GLOBAL_METRICS

    def test_tuning_params_are_keyword_only(self):
        import inspect

        import repro

        for fn, positional in [
            (SegosIndex.range_query, {"self", "query"}),
            (SegosIndex.batch_range_query, {"self", "queries"}),
            (PipelinedSegos.range_query, {"self", "query"}),
            (knn_query, {"engine", "query"}),
            (repro.similarity_self_join, {"engine"}),
            (repro.similarity_join, {"engine", "probes"}),
            (repro.explain_range_query, {"engine", "query"}),
        ]:
            sig = inspect.signature(fn)
            for name, param in sig.parameters.items():
                if name in positional:
                    continue
                assert param.kind == inspect.Parameter.KEYWORD_ONLY, (
                    f"{fn.__qualname__} parameter {name} is not keyword-only"
                )
