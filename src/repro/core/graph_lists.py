"""Score-sorted graph list construction for the CA stage (Section V-B).

For each query star ``s_q`` the TA stage returns its top-k similar database
stars with their SEDs.  Fetching the upper-level posting list of each top-k
star — already sorted by graph size — and splitting it at ``|q|`` yields,
per query star, two *graph lists*:

* a **small side** (graphs with ``|g| ≤ |q|``), where segments whose SED
  exceeds ``λ(s_q, ε)`` are discarded (matching the query star to ε is
  cheaper than to such a star, so those entries can never lower a bound);
* a **large side** (``|g| > |q|``).

Concatenating a star's posting segments in top-k (SED-ascending) order makes
each side a SED-ascending list: exactly the monotone score lists the CA
round-robin scan and its halting threshold require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.star import Star, epsilon_distance
from .index import TwoLevelIndex
from .ta_search import TopKResult, top_k_stars


@dataclass(frozen=True)
class GraphListEntry:
    """One posting in a CA graph list."""

    gid: object
    order: int  # graph size
    sed: int  # SED between the owning query star and `sid`
    sid: int
    freq: int  # occurrences of `sid` in the graph


@dataclass
class QueryStarLists:
    """Both size sides of the graph lists for one query star.

    ``kth_sed`` and ``epsilon`` carry the two SED floors the CA bounds use
    for stars outside the top-k and for ε alignment respectively.
    """

    star: Star
    small: List[GraphListEntry]
    large: List[GraphListEntry]
    kth_sed: float
    epsilon: int

    def exhausted_small_bound(self) -> float:
        """SED floor for small-side graphs invisible in this list."""
        return min(self.kth_sed, float(self.epsilon))

    def exhausted_large_bound(self) -> float:
        """SED floor for large-side graphs invisible in this list."""
        return self.kth_sed


def build_query_star_lists(
    index: TwoLevelIndex,
    query_star: Star,
    query_order: int,
    topk: TopKResult,
) -> QueryStarLists:
    """Assemble the two graph lists for one query star from its top-k."""
    eps = epsilon_distance(query_star)
    small: List[GraphListEntry] = []
    large: List[GraphListEntry] = []
    for sid, sed in topk.entries:
        small_segment, large_segment = index.upper.split_by_order(sid, query_order)
        if sed <= eps:
            small.extend(
                GraphListEntry(e.gid, e.order, sed, sid, e.freq)
                for e in small_segment
            )
        large.extend(
            GraphListEntry(e.gid, e.order, sed, sid, e.freq) for e in large_segment
        )
    return QueryStarLists(
        star=query_star, small=small, large=large, kth_sed=topk.kth_sed, epsilon=eps
    )


def build_all_lists(
    index: TwoLevelIndex,
    query_stars: Sequence[Star],
    query_order: int,
    k: int,
    *,
    topk_cache: Optional[Dict[str, TopKResult]] = None,
    ta_accesses: Optional[List[int]] = None,
    ta_results: Optional[List[TopKResult]] = None,
    backend: Optional[str] = None,
) -> List[QueryStarLists]:
    """Run top-k for every query star (memoised by signature), build lists.

    Duplicate query stars (Figure 9 runs ``q: s5`` twice) share one top-k
    search but still get their own graph list, because the CA aggregation
    sums one term per query star *occurrence*.

    ``backend`` selects the top-k backend (see
    :func:`repro.core.ta_search.top_k_stars`); ``ta_results`` collects the
    per-search :class:`TopKResult` (one per *distinct* star actually
    searched here, cache hits excluded) so callers can report backend
    choices and access/scan-width counters.
    """
    cache: Dict[str, TopKResult] = topk_cache if topk_cache is not None else {}
    lists: List[QueryStarLists] = []
    for star in query_stars:
        result = cache.get(star.signature)
        if result is None:
            result = top_k_stars(index, star, k, backend=backend)
            cache[star.signature] = result
            if ta_accesses is not None:
                ta_accesses.append(result.accesses)
            if ta_results is not None:
                ta_results.append(result)
        lists.append(build_query_star_lists(index, star, query_order, result))
    return lists
