"""Figure 18: Linux-like scalability — time + candidates vs |D| (τ = 2 paper).

Paper: on the PDG dataset SEGOS needs somewhat more time than κ-AT but
filters out two orders of magnitude more candidates; C-Tree loses on both
axes.
"""

from __future__ import annotations

import pytest

from repro.baselines import CTree, KappaAT, SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.datasets import sample_queries


def test_fig18_scalability(benchmark, pdg_dataset, grid, report):
    tau = grid.scalability_tau_linux
    time_series = {
        name: Series(f"{name} time (s)") for name in ("SEGOS", "κ-AT", "C-Tree")
    }
    cand_series = {
        name: Series(f"{name} cand#") for name in ("SEGOS", "κ-AT", "C-Tree")
    }
    for size in grid.db_sizes:
        data = pdg_dataset.subset(size)
        queries = sample_queries(data, grid.query_count, seed=52)
        for method in (
            SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h),
            KappaAT(data.graphs, kappa=2),
            CTree(data.graphs),
        ):
            run = run_queries(method, queries, tau)
            time_series[method.name].add(size, run.avg_time)
            cand_series[method.name].add(size, run.avg_candidates)
    report(
        "fig18a_linux_scalability_time",
        format_table(
            f"Fig 18(a) (time vs |D|, pdg-like, τ={tau})",
            "|D|",
            list(grid.db_sizes),
            list(time_series.values()),
        ),
    )
    report(
        "fig18b_linux_scalability_candidates",
        format_table(
            f"Fig 18(b) (candidates vs |D|, pdg-like, τ={tau})",
            "|D|",
            list(grid.db_sizes),
            list(cand_series.values()),
            fmt="{:.1f}",
        ),
    )
    data = pdg_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=52)
    segos = SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h)
    benchmark.pedantic(lambda: run_queries(segos, queries, tau), rounds=1, iterations=1)
    for size in grid.db_sizes:
        assert cand_series["SEGOS"].points[size] <= cand_series["κ-AT"].points[size]
