"""Tests for process-parallel batch range queries (repro.perf.parallel)."""

from __future__ import annotations

import pytest

from repro.core.engine import SegosIndex
from repro.core.pipeline import PipelinedSegos
from repro.core.stats import QueryStats
from repro.datasets import aids_like, sample_queries
from repro.perf import parallel
from repro.perf.parallel import chunk_evenly, resolve_workers


@pytest.fixture(scope="module")
def corpus():
    data = aids_like(30, seed=7, mean_order=7, stddev=2)
    engine = SegosIndex(data.graphs, k=10, h=30)
    queries = sample_queries(data, 6, seed=11)
    return data, engine, queries


class TestHelpers:
    def test_chunk_evenly_covers_and_preserves_order(self):
        items = list(range(10))
        chunks = chunk_evenly(items, 4)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]
        assert [x for c in chunks for x in c] == items

    def test_chunk_evenly_more_parts_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]
        assert chunk_evenly([], 3) == []

    def test_resolve_workers_precedence(self, monkeypatch):
        monkeypatch.delenv(parallel.ENV_WORKERS, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv(parallel.ENV_WORKERS, "4")
        assert resolve_workers() == 4
        assert resolve_workers(2) == 2  # explicit argument wins
        monkeypatch.setenv(parallel.ENV_WORKERS, "garbage")
        assert resolve_workers() == 1

    def test_resolve_workers_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestParallelBatch:
    def test_same_answers_as_serial(self, corpus):
        _, engine, queries = corpus
        serial = engine.batch_range_query(queries, tau=2)
        parallel_results = engine.batch_range_query(queries, tau=2, workers=2)
        assert len(parallel_results) == len(queries)
        for s, p in zip(serial, parallel_results):
            assert set(s.candidates) == set(p.candidates)
            assert s.matches == p.matches

    def test_env_var_engages_parallel_path(self, corpus, monkeypatch):
        _, engine, queries = corpus
        monkeypatch.setenv(parallel.ENV_WORKERS, "2")
        results = engine.batch_range_query(queries[:3], tau=1)
        serial = engine._serial_batch_range_query(queries[:3], 1)
        for s, p in zip(serial, results):
            assert set(s.candidates) == set(p.candidates)

    def test_single_query_batch_stays_serial(self, corpus):
        _, engine, queries = corpus
        results = engine.batch_range_query(queries[:1], tau=1, workers=8)
        assert len(results) == 1

    def test_verify_exact_in_parallel(self, corpus):
        _, engine, queries = corpus
        serial = engine.batch_range_query(queries[:2], tau=1, verify="exact")
        para = engine.batch_range_query(queries[:2], tau=1, verify="exact", workers=2)
        for s, p in zip(serial, para):
            assert p.verified
            assert s.matches == p.matches

    def test_sqlite_backend_falls_back_to_serial(self):
        """An unpicklable engine must degrade gracefully, not crash."""
        data = aids_like(12, seed=3, mean_order=6, stddev=1)
        engine = SegosIndex(
            {str(gid): g for gid, g in data.graphs.items()}, backend="sqlite"
        )
        queries = sample_queries(data, 3, seed=4)
        results = engine.batch_range_query(queries, tau=1, workers=2)
        serial = engine._serial_batch_range_query(queries, 1)
        for s, p in zip(serial, results):
            assert set(s.candidates) == set(p.candidates)

    def test_validation_errors_propagate(self, corpus):
        from repro.graphs.model import Graph

        _, engine, _ = corpus
        with pytest.raises(ValueError):
            engine.batch_range_query([Graph(["a"]), Graph()], tau=1, workers=2)
        with pytest.raises(ValueError):
            engine.batch_range_query([Graph(["a"])] * 2, tau=1, verify="bogus", workers=2)

    def test_pipelined_batch_parallel(self, corpus):
        _, engine, queries = corpus
        pipe = PipelinedSegos(engine)
        serial = pipe.batch_range_query(queries[:4], tau=2)
        para = pipe.batch_range_query(queries[:4], tau=2, workers=2)
        for s, p in zip(serial, para):
            assert set(s.candidates) == set(p.candidates)


class TestStatsAggregation:
    def test_merged_folds_per_query_stats(self, corpus):
        _, engine, queries = corpus
        results = engine.batch_range_query(queries, tau=2, workers=2)
        merged = QueryStats.merged(r.stats for r in results)
        assert merged.candidates == sum(r.stats.candidates for r in results)
        assert merged.ta_searches == sum(r.stats.ta_searches for r in results)
        assert merged.sed_cache_misses == sum(
            r.stats.sed_cache_misses for r in results
        )

    def test_elapsed_reported_everywhere(self, corpus):
        _, engine, queries = corpus
        for result in engine.batch_range_query(queries[:3], tau=1, workers=2):
            assert result.elapsed >= 0.0

    def test_query_stats_expose_cache_hit_rate(self, corpus):
        _, engine, queries = corpus
        engine.sed_cache_clear()
        first = engine.range_query(queries[0], tau=1)
        again = engine.range_query(queries[0], tau=1)
        assert first.stats.sed_cache_misses > 0
        assert again.stats.sed_cache_hit_rate == 1.0
        info = engine.sed_cache_info()
        assert info.hits >= again.stats.sed_cache_hits
