"""Linear-scan oracle: exact GED over the whole database.

Not a paper baseline — the ground-truth reference the test suite measures
every filter against (no false negatives allowed).  Usable only on small
corpora, which is the paper's point about why filtering matters.
"""

from __future__ import annotations

from typing import List, Mapping, Set

from ..graphs.edit_distance import ged_within
from ..graphs.model import Graph
from .base import FilterResult, RangeQueryMethod


class LinearScan(RangeQueryMethod):
    """Exact answers by running threshold-pruned A* on every graph."""

    name = "Linear-Exact"

    def range_query(self, query: Graph, *, tau: float) -> FilterResult:
        if query.order == 0:
            raise ValueError("query graph must not be empty")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        matches: List[object] = []
        for gid, graph in self.graphs.items():
            if ged_within(query, graph, int(tau)):
                matches.append(gid)
        return FilterResult(
            candidates=matches,
            confirmed=set(matches),
            graphs_accessed=len(self.graphs),
        )

    def index_size(self) -> int:
        return 0
