"""SEGOS-Pipeline: the three-stage threaded query processor (Section V-E).

The paper pipelines query processing into TA → CA → DC:

* the **TA thread** streams, per query star, the graph score lists built
  from that star's top-k sub-units (``k`` is *fixed*, default 20 — the
  pipeline removes the k_s tuning knob);
* the **CA thread** integrates lists as they arrive, round-robin scans the
  available ones, applies only the constant-time aggregation bounds, and
  forwards graphs to the DC stage — eagerly once more than half of a
  graph's sub-units have been seen (the 50 % rule), and finally every graph
  still unresolved when scanning ends.  Once the CA threshold halts a size
  side there is no need for further TA results, so the CA thread signals the
  TA thread to stop early;
* **DC workers** (two, as in the paper's implementation) run the Hungarian
  work: the Theorem-1 partial check and, when forced, the finalised µ with
  the Lemma 2/3 bounds.  Graphs are partitioned across workers by id so
  each graph's checks stay ordered.

The ``h`` checkpoint parameter disappears: the CA thread checks its cheap
bounds every round, and the expensive work is entirely demand-driven.

CPython's GIL means the speed-up here comes from overlapping waiting and
from the early-halt signal rather than true parallelism; the architecture —
and the access-number behaviour of Figure 21 — is faithfully reproduced.

Execution-wise the pipeline is one *fused* plan stage: the three threads
overlap in time, so they are timed as a single ``"ta+ca"`` entry in
``QueryStats.stage_seconds``, followed by the same :class:`VerifyStage`
every other query mode uses.  Plans run through
:func:`repro.core.plan.execute_plan`, so wall-clock, per-stage timing and
SED-cache accounting are identical to the serial engine's.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.model import Graph, normalization_factor
from ..graphs.star import decompose
from ..obs.trace import Trace
from ..perf.parallel import effective_workers, parallel_batch_range_query
from .bounds import SeenGraph, settle_by_full_bounds
from .ca_search import _GraphResolver
from .engine import QueryResult, SegosIndex
from .graph_lists import build_query_star_lists
from .plan import (
    AnchorStage,
    EmbedStage,
    ExecutionContext,
    QueryPlan,
    Stage,
    VerifyStage,
    apply_call_aliases,
    traced_scope,
)
from .tiers import resolve_tier_chain
from .stats import QueryStats
from .ta_search import top_k_stars

#: The pipeline fixes the TA k to a small constant (Section V-E).
PIPELINE_K = 20

_SENTINEL = object()


@dataclass
class _DCItem:
    gid: object
    snapshot: SeenGraph
    side_bounds: List[float]
    forced: bool


class PipelinedFilterStage(Stage):
    """The fused threaded TA → CA → DC filter as one plan stage.

    The three threads overlap, so the paper's per-thread costs cannot be
    separated on a wall clock; the executor times the whole fused stage
    under the ``"ta+ca"`` key instead.
    """

    name = "ta+ca"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        run = _PipelineRun(ctx)
        candidates, confirmed, _stats = run.execute()
        ctx.candidates = candidates
        ctx.confirmed = set(confirmed)
        ctx.matches = set(confirmed)
        return ctx


class PipelinedSegos:
    """Pipelined three-stage range queries over an existing SEGOS index.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> engine = SegosIndex()
    >>> engine.add("g", Graph(["a", "b"], [(0, 1)]))
    >>> PipelinedSegos(engine).range_query(Graph(["a", "b"], [(0, 1)]), tau=0).candidates
    ['g']
    """

    def __init__(self, engine: SegosIndex, *, k: int = PIPELINE_K) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.engine = engine
        self.k = k

    def plan(self) -> QueryPlan:
        """The pipelined plan: fused threaded filter, then shared verify.

        The engine's tier chain composes around the fused stage: an
        enabled ``embed`` tier runs its vectorized pre-filter before the
        threads start (the fused CA loop skips excluded graphs), and an
        enabled ``anchor`` tier screens the surviving candidates before
        verification — same stage objects as the serial plan.
        """
        tiers = resolve_tier_chain(self.engine.config.filter_tiers)
        stages: List[Stage] = []
        names: List[str] = []
        if "embed" in tiers:
            stages.append(EmbedStage())
            names.append("embed")
        stages.append(PipelinedFilterStage())
        names.append("ta+ca (threaded)")
        if "anchor" in tiers:
            stages.append(AnchorStage())
            names.append("anchor")
        stages.append(VerifyStage())
        names.append("verify")
        return QueryPlan(
            stages=tuple(stages), description=" -> ".join(names)
        )

    # ------------------------------------------------------------------
    def range_query(
        self,
        query: Graph,
        *,
        tau: float,
        verify: str = "none",
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        verify_workers: Optional[int] = None,
        verify_budget: Optional[int] = None,
        verify_deadline: Optional[float] = None,
        trace: Optional[bool] = None,
    ) -> QueryResult:
        """Pipelined equivalent of :meth:`SegosIndex.range_query`.

        Everything but the query graph is keyword-only.  Exact
        verification runs through the scheduler of
        :mod:`repro.core.verify` — bounds-first, most-promising candidates
        first, each A* capped by ``verify_budget`` so one pathological pair
        cannot hang a pipelined query, and optionally fanned out over
        ``workers`` (= ``verify_workers``) processes.  A candidate left
        undecided stays in ``candidates`` but not ``matches``, and
        ``verified`` turns False.  All keywords are per-call
        :class:`~repro.config.EngineConfig` overrides on top of the
        wrapped engine's resolved config.
        """
        overrides = apply_call_aliases(
            {
                "workers": workers,
                "timeout": timeout,
                "verify_workers": verify_workers,
                "verify_budget": verify_budget,
                "verify_deadline": verify_deadline,
                "trace": trace,
            }
        )
        session = self.engine.session(k=self.k, **overrides)
        return self._run(session, query, tau, verify=verify)

    def _run(self, session, query: Graph, tau: float, *, verify: str) -> QueryResult:
        if session.config.shards > 1:
            # Scatter-gather: the fused threaded filter runs once per
            # surviving shard (the plan is engine-agnostic — stages read
            # ctx.engine), merged under the global bounds.
            return session.sharded_executor().execute(
                query,
                tau,
                verify=verify,
                mode="pipelined",
                plan_for_shard=lambda shard: self.plan(),
            )
        ctx = session.context(query, tau, verify=verify)
        return session.execute(self.plan(), ctx).to_result()

    def batch_range_query(
        self,
        queries: Sequence[Graph],
        *,
        tau: float,
        verify: str = "none",
        workers: Optional[int] = None,
        verify_workers: Optional[int] = None,
        trace: Optional[bool] = None,
    ) -> List[QueryResult]:
        """Pipelined equivalent of :meth:`SegosIndex.batch_range_query`.

        With ``workers > 1`` (default: the engine's resolved
        ``batch_workers`` knob) query chunks run in worker processes, each
        executing the full three-stage pipeline per query; otherwise the
        batch runs serially in-process through one session, so queries
        share their TA top-k searches.  Answers are identical either way.
        ``verify_workers`` parallelises exact verification per query on the
        serial path only (parallel chunks pin it to 1 — one pool, not pools
        of pools).  Traced runs collect the whole batch — worker spans
        included — into one span tree shared by every result.
        """
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        config = self.engine.config.override(batch_workers=workers, trace=trace)
        # Same 1-core gate as the engine's batch: defaulted worker counts
        # fall through to serial when the machine cannot parallelise.
        pool_workers = config.batch_workers
        if workers is None:
            pool_workers = effective_workers(pool_workers)
        with traced_scope(
            config, "batch", queries=len(queries), tau=tau
        ) as tracer:
            degradations: List = []
            results: Optional[List[QueryResult]] = None
            if pool_workers > 1 and len(queries) > 1:
                results, degradations = parallel_batch_range_query(
                    self,
                    queries,
                    tau,
                    workers=pool_workers,
                    verify=verify,
                    tracer=tracer,
                )
            if results is None:
                results = self._serial_batch_range_query(
                    queries, tau, verify=verify, verify_workers=verify_workers
                )
            if degradations and results:
                results[0].stats.degradations.extend(degradations)
        if tracer.enabled:
            shared = Trace(tracer.snapshot(), tracer.trace_id)
            for result in results:
                result.trace = shared
        return results

    def _serial_batch_range_query(
        self,
        queries: Sequence[Graph],
        tau: float,
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        verify_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """In-process batch execution (also the per-chunk parallel worker).

        ``k``/``h`` are accepted for signature compatibility with the
        engine's serial batch (the parallel chunk runner passes them); the
        pipeline fixes its own k and has no checkpoint period.
        """
        session = self.engine.session(k=self.k, verify_workers=verify_workers)
        return [
            self._run(session, query, tau, verify=verify) for query in queries
        ]


class _PipelineRun:
    """State of one pipelined query execution (one fused plan stage)."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self.engine = ctx.engine
        self.index = ctx.engine.index
        self.query = ctx.query
        self.tau = ctx.tau
        self.config = ctx.config
        self.k = ctx.config.k
        self.query_stars = decompose(ctx.query)
        self.m = len(self.query_stars)
        self.stats = ctx.stats
        #: spans opened on the TA/DC threads have no ambient stack of
        #: their own, so they attach under the fused stage span explicitly
        self.tracer = ctx.tracer
        self.span_parent = ctx.tracer.current_context()
        #: session-shared signature → TopKResult cache (only the TA thread
        #: writes during a run; batch queries run sequentially, so reuse
        #: across queries is race-free)
        self.topk_cache = ctx.topk_cache
        #: gids the embedding pre-filter tier proved non-answers; the CA
        #: loop never accumulates state for them
        self.excluded = ctx.embed_excluded
        self.ta_queue: "queue.Queue" = queue.Queue()
        self.dc_queues: List["queue.Queue"] = [queue.Queue(), queue.Queue()]
        self.result_queue: "queue.Queue" = queue.Queue()
        self.stop_ta = threading.Event()
        self.global_threshold = ctx.tau * normalization_factor(
            ctx.query, database_max=self.index.database_max_degree()
        )

    # ------------------------------------------------------------------
    # Stage 1: TA
    # ------------------------------------------------------------------
    def _ta_stage(self) -> None:
        try:
            with self.tracer.span(
                "pipeline.ta", parent=self.span_parent, stars=self.m
            ):
                for j, star in enumerate(self.query_stars):
                    if self.stop_ta.is_set():
                        break
                    result = self.topk_cache.get(star.signature)
                    if result is None:
                        result = top_k_stars(
                            self.index, star, self.k, backend=self.config.topk_backend
                        )
                        self.topk_cache[star.signature] = result
                        self.stats.ta_searches += 1
                        self.stats.ta_accesses += result.accesses
                        self.stats.count_topk_backend(
                            result.backend, result.scan_width
                        )
                    lists = build_query_star_lists(
                        self.index, star, self.query.order, result
                    )
                    self.ta_queue.put((j, lists))
        finally:
            self.ta_queue.put(_SENTINEL)

    # ------------------------------------------------------------------
    # Stage 3: DC workers
    # ------------------------------------------------------------------
    def _dc_stage(self, worker: int, resolver: _GraphResolver) -> None:
        dc_queue = self.dc_queues[worker]
        with self.tracer.span(
            "pipeline.dc", parent=self.span_parent, worker=worker
        ):
            while True:
                item = dc_queue.get()
                if item is _SENTINEL:
                    return
                assert isinstance(item, _DCItem)
                resolver.resolve(item.snapshot, item.side_bounds, item.forced)
                self.result_queue.put(
                    (item.gid, item.snapshot.resolution, item.forced)
                )

    # ------------------------------------------------------------------
    # Stage 2 + orchestration
    # ------------------------------------------------------------------
    def execute(self) -> Tuple[List[object], Set[object], QueryStats]:
        resolvers = [
            _GraphResolver(
                self.query,
                self.query_stars,
                self.engine._graphs,
                self.index,
                self.tau,
                partial_fraction=0.5,
                stats=QueryStats(),
                assignment_backend=self.config.assignment_backend,
            )
            for _ in range(2)
        ]
        ta_thread = threading.Thread(target=self._ta_stage, name="segos-ta")
        dc_threads = [
            threading.Thread(
                target=self._dc_stage, args=(i, resolvers[i]), name=f"segos-dc{i}"
            )
            for i in range(2)
        ]
        ta_thread.start()
        for t in dc_threads:
            t.start()

        with self.tracer.span("pipeline.ca"):
            seen, unresolved, sides = self._ca_stage()

        # Final forced pass: everything still unresolved goes to DC.
        pending = 0
        for gid in unresolved:
            sg = seen[gid]
            side = sides[0 if sg.small_side else 1]
            self._submit_dc(sg, side, forced=True)
            pending += 1
        for dc_queue in self.dc_queues:
            dc_queue.put(_SENTINEL)

        # Drain results (both the eager partial ones and the forced ones).
        resolutions: Dict[object, Optional[str]] = {}
        forced_done = 0
        while forced_done < pending:
            gid, resolution, forced = self.result_queue.get()
            if forced:
                forced_done += 1
                resolutions[gid] = resolution
            elif resolution == "pruned":
                resolutions.setdefault(gid, resolution)
        ta_thread.join()
        for t in dc_threads:
            t.join()
        while not self.result_queue.empty():
            gid, resolution, forced = self.result_queue.get_nowait()
            if forced or resolution == "pruned":
                resolutions[gid] = resolution

        candidates: List[object] = []
        confirmed: Set[object] = set()
        for gid, sg in seen.items():
            resolution = sg.resolution or resolutions.get(gid)
            if resolution == "candidate":
                candidates.append(gid)
            elif resolution == "match":
                candidates.append(gid)
                confirmed.add(gid)

        self._handle_unseen(seen, sides, candidates, confirmed)

        for resolver in resolvers:
            self.stats.merge(resolver.stats)
        self.stats.candidates = len(candidates)
        self.stats.confirmed_matches = len(confirmed)
        return candidates, confirmed, self.stats

    def _submit_dc(self, sg: SeenGraph, side: "_PipeSide", forced: bool) -> None:
        snapshot = SeenGraph(
            gid=sg.gid,
            order=sg.order,
            max_degree=sg.max_degree,
            small_side=sg.small_side,
            chi=dict(sg.chi),
            star_freq=dict(sg.star_freq),
            seen_pairs=list(sg.seen_pairs),
        )
        worker = hash(sg.gid) % 2
        self.dc_queues[worker].put(
            _DCItem(
                gid=sg.gid,
                snapshot=snapshot,
                side_bounds=[side.list_bound(j) for j in range(self.m)],
                forced=forced,
            )
        )

    def _ca_stage(
        self,
    ) -> Tuple[Dict[object, SeenGraph], Set[object], List["_PipeSide"]]:
        sides = [_PipeSide(self.m, small=True), _PipeSide(self.m, small=False)]
        seen: Dict[object, SeenGraph] = {}
        unresolved: Set[object] = set()
        sent_partial: Set[object] = set()
        aggregation_resolver = _GraphResolver(
            self.query,
            self.query_stars,
            self.engine._graphs,
            self.index,
            self.tau,
            partial_fraction=0.5,
            stats=self.stats,
            assignment_backend=self.config.assignment_backend,
        )
        ta_finished = False
        while True:
            # Integrate every TA result currently available.
            while True:
                try:
                    item = self.ta_queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SENTINEL:
                    ta_finished = True
                    break
                j, lists = item
                sides[0].attach(j, lists.small, lists.exhausted_small_bound())
                sides[1].attach(j, lists.large, lists.exhausted_large_bound())

            both_done = all(side.done(ta_finished) for side in sides)
            if both_done:
                if ta_finished:
                    break
                if all(side.halted for side in sides):
                    self.stop_ta.set()
                    # Drain the TA queue so the TA thread can exit cleanly.
                    while True:
                        item = self.ta_queue.get()
                        if item is _SENTINEL:
                            break
                    break
                time.sleep(0.0005)  # waiting for more lists
                continue

            progressed = False
            for side in sides:
                if side.done(ta_finished):
                    continue
                for j in range(self.m):
                    entry = side.next_entry(j)
                    if entry is None:
                        continue
                    progressed = True
                    self.stats.list_entries_scanned += 1
                    sg = seen.get(entry.gid)
                    if sg is None and entry.gid not in self.excluded:
                        meta = self.index.meta(entry.gid)
                        sg = SeenGraph(
                            gid=entry.gid,
                            order=meta.order,
                            max_degree=meta.max_degree,
                            small_side=side.small,
                        )
                        seen[entry.gid] = sg
                        unresolved.add(entry.gid)
                    if sg is not None:
                        sg.observe(j, entry.sid, entry.sed, entry.freq)
                if side.omega() > self.global_threshold:
                    side.halted = True
            if not progressed and not ta_finished:
                time.sleep(0.0005)
                continue

            # Cheap checkpoint every round: aggregation bounds only, plus
            # eager DC submission past the 50 % revealed mark.
            for gid in list(unresolved):
                sg = seen[gid]
                side = sides[0 if sg.small_side else 1]
                side_bounds = [side.list_bound(j) for j in range(self.m)]
                aggregation_resolver.resolve(
                    sg, side_bounds, forced=False, aggregation_only=True
                )
                if sg.resolution is not None:
                    unresolved.discard(gid)
                    continue
                revealed = sum(sg.star_freq.values()) / max(1, sg.order)
                if revealed > 0.5 and gid not in sent_partial:
                    sent_partial.add(gid)
                    self._submit_dc(sg, side, forced=False)
        # Integrate eager DC prunes that already came back.
        while not self.result_queue.empty():
            try:
                gid, resolution, forced = self.result_queue.get_nowait()
            except queue.Empty:
                break
            if resolution == "pruned" and gid in unresolved:
                seen[gid].resolution = "pruned"
                unresolved.discard(gid)
            elif forced:  # pragma: no cover - defensive; forced come later
                self.result_queue.put((gid, resolution, forced))
                break
        return seen, unresolved, sides

    def _handle_unseen(
        self,
        seen: Dict[object, SeenGraph],
        sides: List["_PipeSide"],
        candidates: List[object],
        confirmed: Set[object],
    ) -> None:
        """Appendix C treatment of graphs never surfaced by any list."""
        query_order = self.query.order
        for side_index, side in enumerate(sides):
            small = side_index == 0
            unseen = [
                gid
                for gid in self.index.gids()
                if gid not in seen
                and gid not in self.excluded
                and (self.index.meta(gid).order <= query_order) == small
            ]
            if not unseen:
                continue
            if side.halted or side.omega() > self.global_threshold:
                self.stats.filtered_unseen += len(unseen)
                self.stats.pruned_by["omega"] = (
                    self.stats.pruned_by.get("omega", 0) + len(unseen)
                )
                continue
            for gid in unseen:
                self.stats.linear_fallback += 1
                self.stats.graphs_accessed += 1
                verdict, _ = settle_by_full_bounds(
                    self.query,
                    self.engine.graph(gid),
                    self.tau,
                    backend=self.config.assignment_backend,
                    stats=self.stats,
                )
                if verdict == "pruned":
                    continue
                candidates.append(gid)
                if verdict == "match":
                    confirmed.add(gid)


class _PipeSide:
    """One size side of the CA scan with lists arriving over time."""

    def __init__(self, m: int, small: bool) -> None:
        self.small = small
        self.entries: List[Optional[List]] = [None] * m
        self.positions = [0] * m
        self.last_sed = [0.0] * m
        self.floors = [0.0] * m
        self.halted = False

    def attach(self, j: int, entries: List, floor: float) -> None:
        """Register list *j* once its TA result arrives.

        ``floor`` is the exhausted-list SED bound (kth/ε floor) used once
        every entry has been consumed.
        """
        self.entries[j] = entries
        self.floors[j] = floor

    def exhausted(self, j: int) -> bool:
        entries = self.entries[j]
        return entries is not None and self.positions[j] >= len(entries)

    def list_bound(self, j: int) -> float:
        if self.entries[j] is None:
            return 0.0  # nothing known yet: the only sound floor is zero
        if self.exhausted(j):
            return self.floors[j]
        return self.last_sed[j]

    def omega(self) -> float:
        return sum(self.list_bound(j) for j in range(len(self.entries)))

    def next_entry(self, j: int):
        entries = self.entries[j]
        if entries is None or self.positions[j] >= len(entries):
            return None
        entry = entries[self.positions[j]]
        self.positions[j] += 1
        self.last_sed[j] = float(entry.sed)
        return entry

    def done(self, ta_finished: bool) -> bool:
        if self.halted:
            return True
        if not ta_finished and any(e is None for e in self.entries):
            return False
        return all(
            self.entries[j] is None or self.exhausted(j)
            for j in range(len(self.entries))
        )
