"""CA-based range query (Algorithm 3, Sections V-C/V-D) plus the DC stage.

The scan walks the per-query-star graph score lists round-robin, keeping per
seen graph the accumulator of :mod:`repro.core.bounds`.  Every ``h``
accesses it runs the bound chain over the unresolved seen graphs:

1. ``ζ(q, g) > τ·δ_g``      → prune (constant time);
2. ``L_µ(q, g) > τ·δ_g``    → prune (constant time);
3. ``U_µ(q, g) ≤ τ·δ_g``    → candidate (constant time);
4. ``µ(S(q), S'(g)) > τ·δ_g`` → prune (dynamic Hungarian over the stars
   seen so far — Theorem 1);
5. finalize the full ``µ`` → prune on ``L_m > τ`` (Lemma 2), confirm on
   ``U_m ≤ τ`` (Lemma 3), otherwise keep as a candidate for verification.

The two size sides are scanned independently because their lists are only
SED-monotone within a side.  A side stops when its threshold
``ω = Σ_j χ̄_j`` exceeds ``τ·δ'`` (all still-unseen graphs of that side are
then safely filtered — Appendix C case 1) or when its lists are exhausted;
in the latter case, if the final ω does not clear the threshold, the
remaining unseen graphs are processed linearly, exactly the C-Star
degradation the paper describes (Appendix C case 2 and Section VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..graphs.model import Graph, normalization_factor
from ..graphs.star import Star, decompose, star_at
from ..matching.mapping import DynamicMappingDistance, edit_cost_under_mapping
from .bounds import SeenGraph, settle_by_full_bounds
from .graph_lists import QueryStarLists
from .index import TwoLevelIndex
from .stats import QueryStats

#: Default checkpoint period (the paper's default h; Table II).
DEFAULT_H = 1000
#: Run the Theorem-1 partial check only once this share of a graph's stars
#: has been revealed (Section V-E's 50 % rule).
DEFAULT_PARTIAL_FRACTION = 0.5


@dataclass
class CAResult:
    """Outcome of the CA + DC stages for one range query."""

    candidates: List[object]
    confirmed: Set[object] = field(default_factory=set)
    stats: QueryStats = field(default_factory=QueryStats)


class _SideScan:
    """Round-robin cursor over one size side of the graph score lists."""

    def __init__(self, lists: Sequence[QueryStarLists], small: bool) -> None:
        self.small = small
        self.entries = [ql.small if small else ql.large for ql in lists]
        self.positions = [0] * len(lists)
        self.last_sed = [0.0] * len(lists)
        self.halted = False  # stopped via the ω threshold
        self._floors = [
            ql.exhausted_small_bound() if small else ql.exhausted_large_bound()
            for ql in lists
        ]

    def exhausted(self, j: int) -> bool:
        return self.positions[j] >= len(self.entries[j])

    def done(self) -> bool:
        return self.halted or all(
            self.exhausted(j) for j in range(len(self.entries))
        )

    def list_bound(self, j: int) -> float:
        """Current SED floor of list j for graphs unseen in it."""
        if self.exhausted(j):
            return self._floors[j]
        return self.last_sed[j]

    def omega(self) -> float:
        """The halting threshold ``ω = Σ_j χ̄_j`` for this side."""
        return sum(self.list_bound(j) for j in range(len(self.entries)))


class _GraphResolver:
    """Runs the bound chain for seen graphs; owns the dynamic solvers (DC)."""

    def __init__(
        self,
        query: Graph,
        query_stars: Sequence[Star],
        graphs: Mapping[object, Graph],
        index: TwoLevelIndex,
        tau: float,
        partial_fraction: float,
        stats: QueryStats,
        disabled_bounds: frozenset = frozenset(),
        assignment_backend: Optional[str] = None,
    ) -> None:
        self.query = query
        self.query_stars = list(query_stars)
        self.graphs = graphs
        self.index = index
        self.tau = tau
        self.partial_fraction = partial_fraction
        self.stats = stats
        # One-shot solves (C-Star step, Lemma 2/3 finalisation) go through
        # the pluggable registry; incremental reveals stay on the stateful
        # pure solver, which is the only backend with column updates.
        self.assignment_backend = assignment_backend
        # Ablation switch (benchmarks only): names from
        # {"zeta", "l_mu", "u_mu", "partial_mu"} skip that bound.
        self.disabled_bounds = disabled_bounds
        self.query_max_degree = query.max_degree()
        self.epsilons = [1 + 2 * s.leaf_size for s in self.query_stars]
        self._dyn: Dict[object, DynamicMappingDistance] = {}
        self._revealed: Dict[object, Dict[int, int]] = {}

    def _threshold(self, sg: SeenGraph) -> float:
        delta = max(4, max(self.query_max_degree, sg.max_degree) + 1)
        return self.tau * delta

    def _solver_for(self, sg: SeenGraph) -> DynamicMappingDistance:
        dyn = self._dyn.get(sg.gid)
        if dyn is None:
            dyn = DynamicMappingDistance(self.query_stars, sg.order)
            self._dyn[sg.gid] = dyn
            self._revealed[sg.gid] = {}
            self.stats.graphs_accessed += 1
        return dyn

    def _reveal_seen(self, sg: SeenGraph, dyn: DynamicMappingDistance) -> None:
        revealed = self._revealed[sg.gid]
        catalog = self.index.catalog
        for sid, freq in sg.star_freq.items():
            have = revealed.get(sid, 0)
            if have < freq:
                star = catalog.star(sid)
                for _ in range(freq - have):
                    dyn.reveal(star)
                revealed[sid] = freq

    def resolve(
        self,
        sg: SeenGraph,
        side_bounds: Sequence[float],
        forced: bool,
        *,
        aggregation_only: bool = False,
    ) -> None:
        """Apply the bound chain; sets ``sg.resolution`` when decided.

        With ``aggregation_only`` the chain stops after the constant-time
        bounds (steps 1–3): the pipelined variant runs those in its CA stage
        and defers the Hungarian work (steps 4–5) to the DC stage.
        """
        threshold = self._threshold(sg)
        if "zeta" not in self.disabled_bounds and sg.zeta() > threshold:
            sg.resolution, sg.pruned_by = "pruned", "zeta"
            self.stats.count_prune("zeta")
            return
        if (
            "l_mu" not in self.disabled_bounds
            and sg.aggregation_lower_bound(side_bounds, self.epsilons) > threshold
        ):
            sg.resolution, sg.pruned_by = "pruned", "l_mu"
            self.stats.count_prune("l_mu")
            return
        if (
            "u_mu" not in self.disabled_bounds
            and sg.aggregation_upper_bound(self.query.order, self.query_max_degree)
            <= threshold
        ):
            sg.resolution = "candidate"
            self.stats.resolved_by_aggregation += 1
            return
        if aggregation_only:
            return
        revealed_fraction = sum(sg.star_freq.values()) / max(1, sg.order)
        if not forced and revealed_fraction < self.partial_fraction:
            return  # too little seen for a useful partial check; wait
        if "partial_mu" in self.disabled_bounds and not forced:
            return
        if (forced and sg.gid not in self._dyn) or (
            forced and "partial_mu" in self.disabled_bounds
        ):
            # No partial solver was ever warranted for this graph: a single
            # from-scratch Hungarian (the C-Star step) is cheaper than
            # pricing the matrix one column at a time.
            self._resolve_one_shot(sg)
            return
        dyn = self._solver_for(sg)
        self._reveal_seen(sg, dyn)
        if dyn.current() > threshold:
            sg.resolution, sg.pruned_by = "pruned", "partial_mu"
            self.stats.count_prune("partial_mu")
            return
        if not forced:
            return
        # DC stage: complete the matrix, finalize µ and apply Lemmas 2–3.
        graph = self.graphs[sg.gid]
        full_counts = self.index.graph_star_counts(sg.gid)
        revealed = self._revealed[sg.gid]
        catalog = self.index.catalog
        for sid, count in full_counts.items():
            have = revealed.get(sid, 0)
            if have < count:
                star = catalog.star(sid)
                for _ in range(count - have):
                    dyn.reveal(star)
                revealed[sid] = count
        mu = dyn.finalize()
        self.stats.full_mapping_computations += 1
        delta = max(4, max(self.query_max_degree, sg.max_degree) + 1)
        if mu / delta > self.tau:
            sg.resolution, sg.pruned_by = "pruned", "l_m"
            self.stats.count_prune("l_m")
            return
        upper = self._upper_bound_from_alignment(dyn, graph)
        sg.resolution = "match" if upper <= self.tau else "candidate"

    def _resolve_one_shot(self, sg: SeenGraph) -> None:
        """Terminal Lemma 2/3 filtering via a single assignment solve."""
        self.stats.graphs_accessed += 1
        sg.resolution, _ = settle_by_full_bounds(
            self.query,
            self.graphs[sg.gid],
            self.tau,
            backend=self.assignment_backend,
            stats=self.stats,
        )
        if sg.resolution == "pruned":
            sg.pruned_by = "l_m"

    def _upper_bound_from_alignment(
        self, dyn: DynamicMappingDistance, graph: Graph
    ) -> int:
        """Lemma 3's ``U_m`` from the solver's final star alignment.

        A star of the data graph may be shared by several vertices; any
        consistent choice of representative vertex yields a valid mapping
        ``P`` and hence a valid upper bound ``C(q, g, P)``.
        """
        query_vertices = list(self.query.vertices())
        vertex_pool: Dict[str, List[int]] = {}
        for v in graph.vertices():
            vertex_pool.setdefault(star_at(graph, v).signature, []).append(v)
        mapping: Dict[int, Optional[int]] = {}
        for row, (left, right) in enumerate(dyn.star_alignment()):
            if left is None:
                continue  # ε row: an insertion, handled by edit cost
            v1 = query_vertices[row]
            if right is None:
                mapping[v1] = None
                continue
            pool = vertex_pool.get(right.signature)
            mapping[v1] = pool.pop() if pool else None
        return edit_cost_under_mapping(self.query, graph, mapping)


def ca_range_query(
    index: TwoLevelIndex,
    graphs: Mapping[object, Graph],
    query: Graph,
    tau: float,
    lists: Sequence[QueryStarLists],
    *,
    h: int = DEFAULT_H,
    partial_fraction: float = DEFAULT_PARTIAL_FRACTION,
    stats: Optional[QueryStats] = None,
    disabled_bounds: frozenset = frozenset(),
    assignment_backend: Optional[str] = None,
    excluded: frozenset = frozenset(),
) -> CAResult:
    """Run the CA scan + DC resolution over pre-built graph score lists.

    ``graphs`` must cover every indexed gid (the engine guarantees this).
    Returns the candidate set — guaranteed to contain every graph with
    ``λ(q, g) ≤ τ`` — plus the subset already confirmed by upper bounds.

    ``disabled_bounds`` (ablation benches only) skips named checks of the
    bound chain; soundness is unaffected because only pruning/accepting
    shortcuts are removed, never the terminal Lemma 2/3 filtering.

    ``excluded`` gids were already proven non-answers by an earlier filter
    tier (the embedding pre-filter): the scan never accumulates state for
    them and the unseen partition skips them.  The cursor walk and the
    ``accesses % h`` checkpoint cadence are unchanged, so every other
    graph sees the exact same bound evaluations as an unfiltered run.
    """
    if tau < 0:
        raise ValueError("tau must be non-negative")
    if h < 1:
        raise ValueError("h must be >= 1")
    stats = stats if stats is not None else QueryStats()
    query_stars = [ql.star for ql in lists]
    resolver = _GraphResolver(
        query,
        query_stars,
        graphs,
        index,
        tau,
        partial_fraction,
        stats,
        disabled_bounds=disabled_bounds,
        assignment_backend=assignment_backend,
    )
    delta_prime = normalization_factor(
        query, database_max=index.database_max_degree()
    )
    global_threshold = tau * delta_prime

    sides = {
        "small": _SideScan(lists, small=True),
        "large": _SideScan(lists, small=False),
    }
    seen: Dict[object, SeenGraph] = {}
    unresolved: Set[object] = set()
    accesses = 0

    def checkpoint(forced: bool) -> None:
        for gid in list(unresolved):
            sg = seen[gid]
            side = sides["small" if sg.small_side else "large"]
            side_bounds = [side.list_bound(j) for j in range(len(lists))]
            resolver.resolve(sg, side_bounds, forced)
            if sg.resolution is not None:
                unresolved.discard(gid)

    while any(not side.done() for side in sides.values()):
        for side in sides.values():
            if side.done():
                continue
            for j in range(len(lists)):
                if side.exhausted(j):
                    continue
                entry = side.entries[j][side.positions[j]]
                side.positions[j] += 1
                side.last_sed[j] = float(entry.sed)
                stats.list_entries_scanned += 1
                accesses += 1
                sg = seen.get(entry.gid)
                if sg is None and entry.gid not in excluded:
                    meta = index.meta(entry.gid)
                    sg = SeenGraph(
                        gid=entry.gid,
                        order=meta.order,
                        max_degree=meta.max_degree,
                        small_side=side.small,
                    )
                    seen[entry.gid] = sg
                    unresolved.add(entry.gid)
                if sg is not None:
                    sg.observe(j, entry.sid, entry.sed, entry.freq)
                if accesses % h == 0:
                    checkpoint(forced=False)
            if side.omega() > global_threshold:
                side.halted = True

    checkpoint(forced=True)

    # Account for graphs never seen in any list (Appendix C).
    query_order = query.order
    unseen_small: List[object] = []
    unseen_large: List[object] = []
    for gid in index.gids():
        if gid in seen or gid in excluded:
            continue
        if index.meta(gid).order <= query_order:
            unseen_small.append(gid)
        else:
            unseen_large.append(gid)

    candidates: List[object] = []
    confirmed: Set[object] = set()
    for gid, sg in seen.items():
        if sg.resolution == "candidate":
            candidates.append(gid)
        elif sg.resolution == "match":
            candidates.append(gid)
            confirmed.add(gid)

    for side_name, unseen_gids in (("small", unseen_small), ("large", unseen_large)):
        side = sides[side_name]
        if not unseen_gids:
            continue
        if side.omega() > global_threshold:
            # Halting argument: every unseen graph on this side has
            # µ ≥ ω > τ·δ', hence L_m > τ.
            stats.filtered_unseen += len(unseen_gids)
            stats.pruned_by["omega"] = stats.pruned_by.get("omega", 0) + len(
                unseen_gids
            )
            continue
        # Lists exhausted without clearing the threshold: degrade to the
        # C-Star linear scan for the leftover graphs.
        for gid in unseen_gids:
            stats.linear_fallback += 1
            stats.graphs_accessed += 1
            verdict, _ = settle_by_full_bounds(
                query, graphs[gid], tau, backend=assignment_backend, stats=stats
            )
            if verdict == "pruned":
                continue
            candidates.append(gid)
            if verdict == "match":
                confirmed.add(gid)

    stats.candidates = len(candidates)
    stats.confirmed_matches = len(confirmed)
    return CAResult(candidates=candidates, confirmed=confirmed, stats=stats)
