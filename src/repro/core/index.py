"""The two-level inverted index of SEGOS (Section IV).

**Upper level** (Figure 5): one inverted list per *distinct star signature*;
each entry is ``(gid, freq)`` — frequency of that star in the graph — and
lists are sorted by increasing graph size (then gid, for determinism).

**Lower level** (Figure 6): one inverted list per *leaf label*; each entry
is ``(sid, freq)`` — frequency of the label among the star's leaves.
Entries are grouped by increasing leaf size and sorted by decreasing
frequency inside a group; a per-label boundary array (the paper's ``AL``)
marks where each size group starts.  An extra *size list* holds every star
sorted by increasing leaf size.

Both levels are plain inverted indexes, so the seven update kinds of
Section IV-C reduce to the four primitive operations Op1–Op4 (posting
insertion/removal, list creation/removal).  To keep updates O(1) the postings
are stored as dictionaries and the sorted views are materialised lazily:
every mutation flips a dirty flag and the next read rebuilds the affected
sorted list.  This gives the same asymptotics as the B-tree-backed engine
the paper assumes while staying honest about Python's strengths.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import GraphAlreadyIndexed, GraphNotIndexed, IndexCorruptionError
from ..graphs.model import Graph
from ..graphs.star import Star


@dataclass(frozen=True)
class GraphMeta:
    """Per-graph metadata kept alongside the postings."""

    order: int
    max_degree: int


@dataclass(frozen=True)
class UpperEntry:
    """Upper-level posting: graph id and star frequency within it."""

    gid: object
    freq: int
    order: int  # graph size, the sort key of upper-level lists


@dataclass(frozen=True)
class LowerEntry:
    """Lower-level posting: star id and label frequency among its leaves."""

    sid: int
    freq: int
    leaf_size: int


class StarCatalog:
    """Registry of the distinct stars seen across the database.

    Star ids are dense ints assigned on first sight and *retired* (pushed on
    a free list) when their last occurrence disappears, so long-lived indexes
    with churn do not leak ids.
    """

    def __init__(self) -> None:
        self._stars: List[Optional[Star]] = []
        self._sid_by_signature: Dict[str, int] = {}
        self._refcount: List[int] = []
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self._sid_by_signature)

    def star(self, sid: int) -> Star:
        """Return the star for *sid*."""
        star = self._stars[sid] if 0 <= sid < len(self._stars) else None
        if star is None:
            raise IndexCorruptionError(f"star id {sid} is not live")
        return star

    def sid(self, star: Star) -> Optional[int]:
        """Return the id of *star*, or None if it is not in the catalog."""
        return self._sid_by_signature.get(star.signature)

    def live_sids(self) -> List[int]:
        """All currently live star ids."""
        return list(self._sid_by_signature.values())

    def acquire(self, star: Star, count: int = 1) -> Tuple[int, bool]:
        """Add *count* references to *star*; return ``(sid, created)``."""
        sid = self._sid_by_signature.get(star.signature)
        if sid is not None:
            self._refcount[sid] += count
            return sid, False
        if self._free:
            sid = self._free.pop()
            self._stars[sid] = star
            self._refcount[sid] = count
        else:
            sid = len(self._stars)
            self._stars.append(star)
            self._refcount.append(count)
        self._sid_by_signature[star.signature] = sid
        return sid, True

    def release(self, sid: int, count: int = 1) -> bool:
        """Drop *count* references; return True when the star died."""
        if self._refcount[sid] < count:
            raise IndexCorruptionError(
                f"releasing {count} refs from star {sid} holding {self._refcount[sid]}"
            )
        self._refcount[sid] -= count
        if self._refcount[sid] == 0:
            star = self._stars[sid]
            assert star is not None
            del self._sid_by_signature[star.signature]
            self._stars[sid] = None
            self._free.append(sid)
            return True
        return False


# Sort keys are module-level functions (not lambdas) so indexes — and the
# engines holding them — stay picklable for the process-pool paths.
def _upper_sort_key(entry: UpperEntry) -> Tuple[int, str]:
    return (entry.order, str(entry.gid))


def _size_sort_key(entry: LowerEntry) -> Tuple[int, int]:
    return (entry.leaf_size, entry.sid)


def _lower_sort_key(entry: LowerEntry) -> Tuple[int, int, int]:
    # Group by leaf size asc; inside a group frequency desc, then sid asc
    # for determinism (Figure 6's order).
    return (entry.leaf_size, -entry.freq, entry.sid)


class _LazySortedList:
    """A dict of postings with a lazily rebuilt sorted materialisation."""

    __slots__ = ("data", "_view", "_key")

    def __init__(self, key) -> None:
        self.data: Dict[object, object] = {}
        self._view: Optional[List[object]] = None
        self._key = key

    def invalidate(self) -> None:
        self._view = None

    def view(self) -> List[object]:
        if self._view is None:
            self._view = sorted(self.data.values(), key=self._key)
        return self._view


class UpperLevelIndex:
    """Star signature → graph postings, sorted by increasing graph size."""

    def __init__(self) -> None:
        self._lists: Dict[int, _LazySortedList] = {}

    def __contains__(self, sid: int) -> bool:
        return sid in self._lists

    def sids(self) -> Iterable[int]:
        return self._lists.keys()

    def add(self, sid: int, gid: object, freq: int, order: int) -> None:
        """Op1/Op3: insert a posting, creating the list if needed."""
        postings = self._lists.get(sid)
        if postings is None:
            postings = self._lists[sid] = _LazySortedList(key=_upper_sort_key)
        if gid in postings.data:
            raise IndexCorruptionError(f"duplicate upper posting ({sid}, {gid})")
        postings.data[gid] = UpperEntry(gid, freq, order)
        postings.invalidate()

    def remove(self, sid: int, gid: object) -> None:
        """Op1/Op3: remove a posting, dropping the list when it empties."""
        postings = self._lists.get(sid)
        if postings is None or gid not in postings.data:
            raise IndexCorruptionError(f"missing upper posting ({sid}, {gid})")
        del postings.data[gid]
        if postings.data:
            postings.invalidate()
        else:
            del self._lists[sid]

    def postings(self, sid: int) -> List[UpperEntry]:
        """Sorted postings for *sid* (empty list if unknown)."""
        postings = self._lists.get(sid)
        return list(postings.view()) if postings is not None else []

    def split_by_order(
        self, sid: int, order: int
    ) -> Tuple[List[UpperEntry], List[UpperEntry]]:
        """Split the list for *sid* into (size ≤ order, size > order).

        Binary search over the size-sorted list, the O(log |GL|) step of
        Section V-B.
        """
        view = self._lists.get(sid)
        if view is None:
            return [], []
        entries = view.view()
        keys = [e.order for e in entries]
        cut = bisect_right(keys, order)
        return list(entries[:cut]), list(entries[cut:])

    def stats(self) -> Tuple[int, int]:
        """Return ``(number of lists, total postings)``."""
        total = sum(len(lst.data) for lst in self._lists.values())
        return len(self._lists), total


class LowerLevelIndex:
    """Leaf label → star postings grouped by leaf size, plus the size list."""

    def __init__(self, catalog: StarCatalog) -> None:
        self._catalog = catalog
        self._lists: Dict[str, _LazySortedList] = {}
        # Size list: every live star ordered by leaf size.
        self._size_list = _LazySortedList(key=_size_sort_key)

    def labels(self) -> Iterable[str]:
        return self._lists.keys()

    def add_star(self, sid: int, star: Star) -> None:
        """Op2/Op4: index a newly created star under each of its leaf labels."""
        for label, freq in sorted(Counter(star.leaves).items()):
            postings = self._lists.get(label)
            if postings is None:
                postings = self._lists[label] = _LazySortedList(key=_lower_sort_key)
            postings.data[sid] = LowerEntry(sid, freq, star.leaf_size)
            postings.invalidate()
        self._size_list.data[sid] = LowerEntry(sid, 0, star.leaf_size)
        self._size_list.invalidate()

    def remove_star(self, sid: int, star: Star) -> None:
        """Op2/Op4: un-index a dead star from each of its leaf labels."""
        for label in set(star.leaves):
            postings = self._lists.get(label)
            if postings is None or sid not in postings.data:
                raise IndexCorruptionError(f"missing lower posting ({label}, {sid})")
            del postings.data[sid]
            if postings.data:
                postings.invalidate()
            else:
                del self._lists[label]
        if sid not in self._size_list.data:
            raise IndexCorruptionError(f"star {sid} missing from the size list")
        del self._size_list.data[sid]
        self._size_list.invalidate()

    def label_list(self, label: str) -> List[LowerEntry]:
        """Full grouped list under *label* (empty if unknown)."""
        postings = self._lists.get(label)
        return list(postings.view()) if postings is not None else []

    def label_postings_count(self, label: str) -> int:
        """Number of postings under *label* without materialising the view.

        The adaptive top-k planner's selectivity estimate reads this on
        every search, so it must stay O(1).
        """
        postings = self._lists.get(label)
        return len(postings.data) if postings is not None else 0

    def split_label_list(
        self, label: str, leaf_size: int
    ) -> Tuple[List[List[LowerEntry]], List[List[LowerEntry]]]:
        """Size-split groups under *label*: (groups ≤ leaf_size, groups >).

        Each returned group is frequency-descending; the boundary lookup is
        the O(log |AL|) step of Section V-A.
        """
        postings = self._lists.get(label)
        if postings is None:
            return [], []
        entries = postings.view()
        groups: List[List[LowerEntry]] = []
        for entry in entries:
            if groups and groups[-1][0].leaf_size == entry.leaf_size:
                groups[-1].append(entry)
            else:
                groups.append([entry])
        boundary = bisect_right([g[0].leaf_size for g in groups], leaf_size)
        return groups[:boundary], groups[boundary:]

    def split_size_list(
        self, leaf_size: int
    ) -> Tuple[List[LowerEntry], List[LowerEntry]]:
        """Split the size list into (≤ leaf_size, > leaf_size).

        The low side is returned in *decreasing* size order — the access
        order Figure 8 prescribes (the closer |L_i| is to |L_q|, the lower
        the SED contribution, so the low side must be read backwards).
        """
        entries = self._size_list.view()
        cut = bisect_right([e.leaf_size for e in entries], leaf_size)
        low = list(entries[:cut])
        low.reverse()
        return low, list(entries[cut:])

    def stats(self) -> Tuple[int, int]:
        """Return ``(number of label lists, total postings incl. size list)``."""
        total = sum(len(lst.data) for lst in self._lists.values())
        return len(self._lists), total + len(self._size_list.data)


class TwoLevelIndex:
    """The complete SEGOS index: catalog + upper level + lower level.

    This class owns the *index* only; graph objects themselves are kept by
    :class:`repro.core.engine.SegosIndex`, which also translates the seven
    graph-update kinds into star deltas for :meth:`apply_star_delta`.
    """

    def __init__(self) -> None:
        self.catalog = StarCatalog()
        self.upper = UpperLevelIndex()
        self.lower = LowerLevelIndex(self.catalog)
        self._graph_stars: Dict[object, Counter] = {}  # gid -> Counter[sid]
        self._meta: Dict[object, GraphMeta] = {}
        self._max_degree_hist: Counter = Counter()
        #: Monotone mutation counter.  All seven §IV-C update kinds funnel
        #: through the three mutators below, each of which bumps this; the
        #: columnar snapshot (:mod:`repro.perf.columnar`) keys its cache on
        #: it so catalog mirrors are rebuilt lazily, only after a change.
        self.generation = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graph_stars)

    def __contains__(self, gid: object) -> bool:
        return gid in self._graph_stars

    def gids(self) -> Iterable[object]:
        return self._graph_stars.keys()

    def meta(self, gid: object) -> GraphMeta:
        try:
            return self._meta[gid]
        except KeyError:
            raise GraphNotIndexed(gid) from None

    def graph_star_counts(self, gid: object) -> Counter:
        """``S(g)`` as a Counter of star ids (a copy)."""
        try:
            return Counter(self._graph_stars[gid])
        except KeyError:
            raise GraphNotIndexed(gid) from None

    def database_max_degree(self) -> int:
        """δ(D) over the currently indexed graphs."""
        return max(self._max_degree_hist) if self._max_degree_hist else 0

    def size_estimate(self) -> int:
        """Rough index footprint: total postings across both levels.

        Used by the Figure 13 bench as a machine-independent "index size"
        metric (postings dominate any realistic on-disk encoding).
        """
        _, upper_postings = self.upper.stats()
        _, lower_postings = self.lower.stats()
        return upper_postings + lower_postings + len(self.catalog)

    # ------------------------------------------------------------------
    # Graph-level updates
    # ------------------------------------------------------------------
    def add_graph(self, gid: object, graph: Graph, stars: Sequence[Star]) -> None:
        """Index a decomposed graph (update kind 1 of Section IV-C)."""
        if gid in self._graph_stars:
            raise GraphAlreadyIndexed(gid)
        self.generation += 1
        self._graph_stars[gid] = Counter()
        self._meta[gid] = GraphMeta(graph.order, graph.max_degree())
        self._max_degree_hist[graph.max_degree()] += 1
        self._apply_additions(gid, stars)

    def remove_graph(self, gid: object) -> None:
        """Un-index a graph (update kind 2)."""
        counts = self._graph_stars.get(gid)
        if counts is None:
            raise GraphNotIndexed(gid)
        self.generation += 1
        for sid in list(counts):
            self.upper.remove(sid, gid)
            star = self.catalog.star(sid)
            if self.catalog.release(sid, counts[sid]):
                self.lower.remove_star(sid, star)
        meta = self._meta.pop(gid)
        self._max_degree_hist[meta.max_degree] -= 1
        if self._max_degree_hist[meta.max_degree] == 0:
            del self._max_degree_hist[meta.max_degree]
        del self._graph_stars[gid]

    def apply_star_delta(
        self,
        gid: object,
        removed: Sequence[Star],
        added: Sequence[Star],
        new_meta: GraphMeta,
    ) -> None:
        """Apply a local update (kinds 3–7): swap some of a graph's stars.

        The engine computes which stars an edge/vertex/label mutation
        invalidates (the mutated vertex's own star plus its neighbours')
        and calls this with the before/after stars.
        """
        counts = self._graph_stars.get(gid)
        if counts is None:
            raise GraphNotIndexed(gid)
        self.generation += 1
        old_meta = self._meta[gid]

        for star in removed:
            sid = self.catalog.sid(star)
            if sid is None or counts[sid] <= 0:
                raise IndexCorruptionError(
                    f"graph {gid!r} does not contain star {star.signature!r}"
                )
            counts[sid] -= 1
            self.upper.remove(sid, gid)
            if counts[sid] == 0:
                del counts[sid]
            else:
                self.upper.add(sid, gid, counts[sid], new_meta.order)
            if self.catalog.release(sid):
                self.lower.remove_star(sid, star)

        self._apply_additions(gid, added)

        # A size change re-keys *every* posting of this graph in the upper
        # level (lists are sorted by graph size).
        if new_meta.order != old_meta.order:
            for sid, freq in counts.items():
                self.upper.remove(sid, gid)
                self.upper.add(sid, gid, freq, new_meta.order)
        self._meta[gid] = new_meta
        self._max_degree_hist[old_meta.max_degree] -= 1
        if self._max_degree_hist[old_meta.max_degree] == 0:
            del self._max_degree_hist[old_meta.max_degree]
        self._max_degree_hist[new_meta.max_degree] += 1

    def _apply_additions(self, gid: object, added: Sequence[Star]) -> None:
        counts = self._graph_stars[gid]
        order = self._meta[gid].order
        for star in added:
            sid, created = self.catalog.acquire(star)
            if created:
                self.lower.add_star(sid, star)
            if counts[sid]:
                self.upper.remove(sid, gid)
            counts[sid] += 1
            self.upper.add(sid, gid, counts[sid], order)

    # ------------------------------------------------------------------
    # Consistency check (used by tests and assertions)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Raise :class:`IndexCorruptionError` on any violated invariant."""
        for gid, counts in self._graph_stars.items():
            for sid, freq in counts.items():
                postings = {e.gid: e for e in self.upper.postings(sid)}
                entry = postings.get(gid)
                if entry is None or entry.freq != freq:
                    raise IndexCorruptionError(
                        f"upper posting mismatch for graph {gid!r}, star {sid}"
                    )
                if entry.order != self._meta[gid].order:
                    raise IndexCorruptionError(
                        f"stale order for graph {gid!r} under star {sid}"
                    )
        for sid in self.catalog.live_sids():
            star = self.catalog.star(sid)
            for label, freq in Counter(star.leaves).items():
                entries = {e.sid: e for e in self.lower.label_list(label)}
                entry = entries.get(sid)
                if entry is None or entry.freq != freq:
                    raise IndexCorruptionError(
                        f"lower posting mismatch for star {sid}, label {label!r}"
                    )
