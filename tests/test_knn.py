"""Tests for the expanding-ring kNN query."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SegosIndex
from repro.core.knn import knn_query
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import corpus
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def knn_setup():
    rng = random.Random(88)
    graphs = {
        f"g{i}": g
        for i, g in enumerate(
            corpus(rng, 20, kind="chemical", mean_order=6, stddev=1)
        )
    }
    return rng, graphs, SegosIndex(graphs)


def exact_distances(graphs, query):
    return sorted(
        ((gid, graph_edit_distance(query, g)) for gid, g in graphs.items()),
        key=lambda item: (item[1], item[0]),
    )


class TestKnn:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_exhaustive(self, knn_setup, k):
        rng, graphs, engine = knn_setup
        query = graphs["g0"].copy()
        result = knn_query(engine, query, k=k)
        expected = exact_distances(graphs, query)
        kth = expected[k - 1][1]
        # All returned distances correct and ≤ k-th exact distance.
        got = dict(result.neighbours)
        for gid, dist in result.neighbours:
            assert graph_edit_distance(query, graphs[gid]) == dist
        assert sorted(d for _, d in result.neighbours)[:k] == [
            d for _, d in expected[:k]
        ]
        assert all(d <= kth for d in got.values())

    def test_includes_ties_at_cutoff(self, knn_setup):
        rng, graphs, engine = knn_setup
        query = graphs["g1"].copy()
        result = knn_query(engine, query, k=3)
        expected = exact_distances(graphs, query)
        cutoff = expected[2][1]
        tied = {gid for gid, d in expected if d <= cutoff}
        assert set(dict(result.neighbours)) == tied

    def test_self_is_first(self, knn_setup):
        _, graphs, engine = knn_setup
        result = knn_query(engine, graphs["g2"].copy(), k=1)
        assert result.neighbours[0] == ("g2", 0)

    def test_rings_counted(self, knn_setup):
        _, graphs, engine = knn_setup
        result = knn_query(engine, graphs["g3"].copy(), k=5)
        assert result.rings >= 1

    def test_validation(self, knn_setup):
        _, graphs, engine = knn_setup
        query = graphs["g0"]
        with pytest.raises(ValueError):
            knn_query(engine, query, k=0)
        with pytest.raises(ValueError):
            knn_query(engine, query, k=len(graphs) + 1)
        with pytest.raises(ValueError):
            knn_query(engine, Graph(), k=1)
        with pytest.raises(ValueError):
            knn_query(engine, query, k=1, tau_step=0)

    def test_tau_limit_caps_expansion(self, knn_setup):
        _, graphs, engine = knn_setup
        # A query unlike anything, with a tiny limit: may return < k.
        query = Graph(["Z1", "Z2"], [(0, 1)])
        result = knn_query(engine, query, k=3, tau_limit=0)
        assert result.rings == 1
        assert len(result.neighbours) <= 3


class TestRingCacheReuse:
    """τ expansion reuses the first ring's TA searches via the session."""

    def test_ta_searches_do_not_regress_across_radii(self, knn_setup):
        _, graphs, engine = knn_setup
        query = graphs["g0"].copy()
        result = knn_query(engine, query, k=5, tau_start=0, tau_step=1)
        assert result.rings > 1  # τ really expanded
        one_ring = engine.range_query(query, tau=0).stats.ta_searches
        # Merged stats over all rings: TA searches paid exactly once.
        assert result.stats.ta_searches == one_ring

    def test_ta_accesses_equal_single_ring(self, knn_setup):
        _, graphs, engine = knn_setup
        query = graphs["g1"].copy()
        result = knn_query(engine, query, k=5, tau_start=0, tau_step=1)
        single = engine.range_query(query, tau=0).stats.ta_accesses
        assert result.stats.ta_accesses == single
