"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.bench.charts import render_chart
from repro.bench.harness import Series


def make_series(label, points):
    s = Series(label)
    for x, y in points.items():
        s.add(x, y)
    return s


class TestRenderChart:
    def test_contains_every_series_and_value(self):
        a = make_series("alpha", {1: 2.0, 2: 4.0})
        b = make_series("beta", {1: 1.0, 2: 8.0})
        out = render_chart("demo", [1, 2], [a, b])
        assert "demo" in out
        assert "alpha" in out and "beta" in out
        assert "8" in out

    def test_bar_lengths_are_monotone(self):
        s = make_series("m", {1: 1.0, 2: 2.0, 3: 4.0})
        out = render_chart("t", [1, 2, 3], [s])
        bars = [line.split("|")[1] for line in out.splitlines() if "|" in line]
        lengths = [bar.count("█") for bar in bars]
        assert lengths == sorted(lengths)

    def test_log_scale_engages_on_wide_ranges(self):
        s = make_series("wide", {1: 1.0, 2: 100000.0})
        out = render_chart("t", [1, 2], [s])
        assert "log scale" in out

    def test_linear_scale_for_narrow_ranges(self):
        s = make_series("narrow", {1: 1.0, 2: 3.0})
        out = render_chart("t", [1, 2], [s])
        assert "log scale" not in out

    def test_missing_points_skipped(self):
        s = make_series("gappy", {1: 1.0})
        out = render_chart("t", [1, 2], [s])
        assert out.count("gappy") == 1

    def test_no_data(self):
        out = render_chart("t", [1], [Series("empty")])
        assert "(no data)" in out

    def test_zero_values_render(self):
        s = make_series("z", {1: 0.0, 2: 5.0})
        out = render_chart("t", [1, 2], [s])
        assert "0" in out
