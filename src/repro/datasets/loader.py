"""Loading external graph corpora into the :class:`Dataset` abstraction.

Users with a real corpus (e.g. the actual NCI AIDS dump in gSpan/transaction
format) can load it here and run every benchmark and example unchanged —
the synthetic generators are stand-ins, not requirements.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..graphs import io as gio
from .corpora import Dataset

PathLike = Union[str, Path]


def load_dataset(path: PathLike, *, name: str = "", strict: bool = True) -> Dataset:
    """Read a transaction-format file into a :class:`Dataset`.

    The label alphabet is inferred from the file (sorted for the total
    order the lower-level index assumes).  ``strict=False`` tolerates
    trailing edge labels and unknown record types, which covers the common
    public dumps.
    """
    path = Path(path)
    pairs = gio.load(path, strict=strict)
    graphs = {str(gid): graph for gid, graph in pairs}
    labels = sorted({lbl for g in graphs.values() for lbl in g.labels().values()})
    return Dataset(
        name=name or path.stem,
        graphs=graphs,
        labels=labels,
        seed=0,
    )
