"""Unit tests for the Hungarian algorithm and its dynamic updates."""

from __future__ import annotations

import random

import pytest

# These tests grade our solver against scipy's; the no-numpy CI leg skips
# them (the solver itself is pure Python and covered elsewhere).
np = pytest.importorskip("numpy")
linear_sum_assignment = pytest.importorskip("scipy.optimize").linear_sum_assignment

from repro.matching.hungarian import HungarianSolver, hungarian


def reference_cost(matrix) -> float:
    arr = np.array(matrix, dtype=float)
    rows, cols = linear_sum_assignment(arr)
    return float(arr[rows, cols].sum())


class TestHungarian:
    def test_trivial_1x1(self):
        total, assignment = hungarian([[7]])
        assert total == 7
        assert assignment == [0]

    def test_empty(self):
        assert hungarian([]) == (0.0, [])

    def test_zero_columns_rejected(self):
        with pytest.raises(ValueError):
            hungarian([[]])

    def test_known_square(self):
        total, assignment = hungarian([[4, 1, 3], [2, 0, 5], [3, 2, 2]])
        assert total == 5
        assert sorted(assignment) == [0, 1, 2]

    def test_rectangular_wide(self):
        total, assignment = hungarian([[9, 1, 9], [1, 9, 9]])
        assert total == 2
        assert assignment == [1, 0]

    def test_rectangular_tall_leaves_rows_unmatched(self):
        total, assignment = hungarian([[1], [2], [3]])
        assert total == 1
        assert assignment.count(-1) == 2
        assert assignment[0] == 0

    def test_negative_costs(self):
        total, _ = hungarian([[-5, 0], [0, -5]])
        assert total == -10

    def test_float_costs(self):
        total, _ = hungarian([[0.5, 1.5], [1.5, 0.25]])
        assert total == pytest.approx(0.75)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_vs_scipy(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 12)
        m = rng.randint(n, 14)
        if seed % 3 == 0:
            n, m = m, n  # exercise the transpose path
        matrix = [[rng.randint(0, 30) for _ in range(m)] for _ in range(n)]
        total, assignment = hungarian(matrix)
        assert total == pytest.approx(reference_cost(matrix))
        chosen = [c for c in assignment if c != -1]
        assert len(set(chosen)) == len(chosen)
        assert sum(
            matrix[i][c] for i, c in enumerate(assignment) if c != -1
        ) == pytest.approx(total)


class TestSolverValidation:
    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            HungarianSolver([[1, 2], [3]])

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(ValueError):
            HungarianSolver([[1], [2]])

    def test_cost_before_solve_raises(self):
        solver = HungarianSolver([[1, 2], [3, 4]])
        with pytest.raises(RuntimeError):
            solver.cost()

    def test_update_column_bad_index(self):
        solver = HungarianSolver([[1, 2]])
        with pytest.raises(IndexError):
            solver.update_column(5, [0])

    def test_update_column_bad_length(self):
        solver = HungarianSolver([[1, 2]])
        with pytest.raises(ValueError):
            solver.update_column(0, [0, 0])

    def test_update_row_bad_index(self):
        solver = HungarianSolver([[1, 2]])
        with pytest.raises(IndexError):
            solver.update_row(3, [0, 0])

    def test_update_row_bad_length(self):
        solver = HungarianSolver([[1, 2]])
        with pytest.raises(ValueError):
            solver.update_row(0, [0])


class TestDynamicUpdates:
    def test_column_update_reoptimises(self):
        solver = HungarianSolver([[0, 10], [10, 0]])
        assert solver.solve() == 0
        solver.update_column(0, [10, 0])
        # Now both rows prefer opposite columns: optimum is 10+10? No —
        # col0=[10,0], col1=[10,0]: rows pick (0,col?) best total = 10+0.
        assert solver.cost() == pytest.approx(reference_cost([[10, 10], [0, 0]]))

    def test_update_before_solve_is_plain_write(self):
        solver = HungarianSolver([[5, 5], [5, 5]])
        solver.update_column(0, [1, 1])
        assert solver.solve() == pytest.approx(6)

    def test_current_cost_of(self):
        solver = HungarianSolver([[1, 9], [9, 1]])
        solver.solve()
        assert solver.current_cost_of(0) == 1
        assert solver.current_cost_of(1) == 1

    def test_assignment_excludes_padding_rows(self):
        solver = HungarianSolver([[3, 1, 2]])
        solver.solve()
        assert len(solver.assignment()) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_random_update_sequences_vs_scipy(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(2, 7)
        m = rng.randint(n, 8)
        matrix = [[rng.randint(0, 20) for _ in range(m)] for _ in range(n)]
        solver = HungarianSolver(matrix)
        solver.solve()
        current = [row[:] for row in matrix]
        for _ in range(10):
            if rng.random() < 0.5:
                col = rng.randrange(m)
                new = [rng.randint(0, 20) for _ in range(n)]
                for i in range(n):
                    current[i][col] = new[i]
                solver.update_column(col, new)
            else:
                row = rng.randrange(n)
                new = [rng.randint(0, 20) for _ in range(m)]
                current[row][:] = new
                solver.update_row(row, new)
            assert solver.cost() == pytest.approx(reference_cost(current))

    def test_monotone_column_reveal(self):
        """Zero columns priced up one at a time never decrease the optimum."""
        rng = random.Random(42)
        n = 6
        solver = HungarianSolver([[0.0] * n for _ in range(n)])
        solver.solve()
        previous = solver.cost()
        assert previous == 0
        for col in range(n):
            solver.update_column(col, [rng.randint(0, 9) for _ in range(n)])
            assert solver.cost() >= previous
            previous = solver.cost()
