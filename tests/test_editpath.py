"""Tests for edit-script extraction and replay."""

from __future__ import annotations

import random

import pytest

from repro.graphs.editpath import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    RelabelVertex,
    apply_edit_script,
    edit_script_from_mapping,
    extract_edit_script,
    render_edit_script,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.model import Graph
from repro.matching.mapping import edit_cost_under_mapping, mapping_result


class TestScriptExtraction:
    def test_identity_script_is_empty(self, paper_g1):
        assert extract_edit_script(paper_g1, paper_g1) == []

    def test_single_relabel(self):
        a = Graph(["a", "b"], [(0, 1)])
        b = Graph(["a", "c"], [(0, 1)])
        script = edit_script_from_mapping(a, b, {0: 0, 1: 1})
        assert script == [RelabelVertex(1, "b", "c")]

    def test_vertex_deletion_includes_edges(self):
        a = Graph(["a", "b"], [(0, 1)])
        b = Graph(["a"])
        script = edit_script_from_mapping(a, b, {0: 0, 1: None})
        assert DeleteEdge(0, 1) in script
        assert DeleteVertex(1) in script
        assert len(script) == 2

    def test_insertion_gets_fresh_ids(self):
        a = Graph(["a"])
        b = Graph(["a", "b"], [(0, 1)])
        script = edit_script_from_mapping(a, b, {0: 0})
        inserts = [op for op in script if isinstance(op, InsertVertex)]
        assert len(inserts) == 1
        assert inserts[0].vertex not in a
        assert any(isinstance(op, InsertEdge) for op in script)

    def test_length_equals_lemma3_cost(self, rng):
        for _ in range(15):
            g1 = erdos_renyi(rng, "abc", rng.randint(1, 6), 0.4)
            g2 = erdos_renyi(rng, "abc", rng.randint(1, 6), 0.4)
            result = mapping_result(g1, g2)
            script = extract_edit_script(g1, g2, result)
            assert len(script) == edit_cost_under_mapping(
                g1, g2, result.vertex_mapping
            )


class TestReplay:
    def test_replay_reaches_target(self, rng):
        for _ in range(15):
            g1 = erdos_renyi(rng, "ab", rng.randint(1, 6), 0.4)
            g2 = erdos_renyi(rng, "ab", rng.randint(1, 6), 0.4)
            script = extract_edit_script(g1, g2)
            rebuilt = apply_edit_script(g1, script)
            assert are_isomorphic(rebuilt, g2), render_edit_script(script)

    def test_replay_does_not_mutate_source(self, paper_g1, paper_g2):
        snapshot = paper_g1.copy()
        apply_edit_script(paper_g1, extract_edit_script(paper_g1, paper_g2))
        assert paper_g1 == snapshot

    def test_paper_graphs_round_trip(self, paper_g1, paper_g2):
        script = extract_edit_script(paper_g1, paper_g2)
        assert are_isomorphic(apply_edit_script(paper_g1, script), paper_g2)
        back = extract_edit_script(paper_g2, paper_g1)
        assert are_isomorphic(apply_edit_script(paper_g2, back), paper_g1)


class TestRender:
    def test_render_mentions_each_op_kind(self):
        a = Graph(["a", "b"], [(0, 1)])
        b = Graph(["c", "c", "c"], [(0, 1), (1, 2)])
        text = render_edit_script(extract_edit_script(a, b))
        assert "relabel" in text or "insert vertex" in text
        assert text.count("\n") + 1 == len(extract_edit_script(a, b))
