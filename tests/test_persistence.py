"""Tests for saving/loading SEGOS databases."""

from __future__ import annotations

import pytest

from repro.core.engine import SegosIndex
from repro.core.persistence import load_index, save_index
from repro.errors import ParseError
from repro.graphs import io as gio
from repro.graphs.model import Graph


@pytest.fixture
def engine(paper_g1, paper_g2):
    engine = SegosIndex(k=33, h=77, partial_fraction=0.25)
    engine.add("g1", paper_g1)
    engine.add("g2", paper_g2)
    return engine


class TestRoundTrip:
    def test_graphs_survive(self, engine, tmp_path):
        path = tmp_path / "db.segos"
        save_index(engine, path)
        loaded = load_index(path)
        assert set(loaded.gids()) == {"g1", "g2"}
        for gid in loaded.gids():
            original = engine.graph(gid)
            restored = loaded.graph(gid)
            assert restored.order == original.order
            assert restored.size == original.size
            assert restored.label_multiset() == original.label_multiset()

    def test_parameters_survive(self, engine, tmp_path):
        path = tmp_path / "db.segos"
        save_index(engine, path)
        loaded = load_index(path)
        assert loaded.k == 33
        assert loaded.h == 77
        assert loaded.partial_fraction == 0.25

    def test_queries_equivalent_after_reload(self, engine, tmp_path):
        path = tmp_path / "db.segos"
        save_index(engine, path)
        loaded = load_index(path)
        query = engine.graph("g1").copy()
        # Vertex ids are renumbered on save; compare by verified answers.
        a = engine.range_query(query, tau=3, verify="exact").matches
        b = loaded.range_query(query, tau=3, verify="exact").matches
        assert a == b == {"g1", "g2"}

    def test_index_consistent_after_reload(self, engine, tmp_path):
        path = tmp_path / "db.segos"
        save_index(engine, path)
        load_index(path).check_consistency()


class TestHeaderHandling:
    def test_plain_file_without_header(self, tmp_path, paper_g1):
        path = tmp_path / "plain.txt"
        gio.save(path, [("only", paper_g1)])
        loaded = load_index(path)
        assert set(loaded.gids()) == {"only"}
        assert loaded.k == 100  # engine defaults

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.segos"
        path.write_text("#segos {not json\n")
        with pytest.raises(ParseError):
            load_index(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.segos"
        path.write_text(
            '#segos {"version": 99, "k": 1, "h": 1, "partial_fraction": 0.5}\n'
        )
        with pytest.raises(ParseError):
            load_index(path)

    def test_header_is_a_comment_for_plain_io(self, engine, tmp_path):
        """The #segos line must not break the plain transaction reader."""
        path = tmp_path / "db.segos"
        save_index(engine, path)
        pairs = gio.load(path)
        assert {gid for gid, _ in pairs} == {"g1", "g2"}

    def test_empty_engine_round_trip(self, tmp_path):
        path = tmp_path / "empty.segos"
        save_index(SegosIndex(), path)
        assert len(load_index(path)) == 0

    def test_full_config_round_trips(self, tmp_path, paper_g1):
        """The v2 header persists the whole resolved EngineConfig, not just
        the paper's three structural knobs."""
        engine = SegosIndex(
            k=12,
            h=34,
            partial_fraction=0.75,
            verify_budget=4321,
            batch_workers=2,
            topk_backend="ta",
            delta_compact=0.5,
        )
        engine.add("g", paper_g1)
        path = tmp_path / "db.segos"
        save_index(engine, path)
        loaded = load_index(path)
        assert loaded.config == engine.config

    def test_v1_header_still_loads(self, tmp_path, paper_g1):
        """Databases written before the sidecar era carry only k/h/fraction."""
        path = tmp_path / "old.segos"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#segos {"version": 1, "k": 7, "h": 9, "partial_fraction": 0.25}\n')
            gio.write_graphs(fh, [("g", paper_g1)])
        loaded = load_index(path)
        assert (loaded.k, loaded.h, loaded.partial_fraction) == (7, 9, 0.25)
        assert set(loaded.gids()) == {"g"}
