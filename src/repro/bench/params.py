"""Benchmark parameter grids (the paper's Table II, scaled down).

The paper's defaults (k_s = 100, h = 1000, |D| = 20K, |q| ≈ dataset average,
τ = 10) target 40K-graph corpora of ~46-vertex graphs on a C++ engine.  Our
pure-Python runs keep the same *sweep structure* at roughly 1/20 scale; the
scale mapping is recorded here once so every bench file reads from a single
source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ParamGrid:
    """One experiment family's sweep values."""

    #: TA-stage k values (paper: 10..1000, default 100).  The default sits
    #: at the Figure-12 knee, which at this corpus scale is ~50 (the paper's
    #: guidance — about 1 % of the sub-unit count — targets 40K graphs).
    k_values: Tuple[int, ...] = (2, 5, 10, 20, 50, 100)
    default_k: int = 50
    #: CA-stage checkpoint periods (paper: 10..1000, default 1000)
    h_values: Tuple[int, ...] = (5, 10, 25, 50, 100, 250)
    default_h: int = 100
    #: database sizes (paper: 5K..40K)
    db_sizes: Tuple[int, ...] = (100, 200, 400, 800)
    default_db_size: int = 400
    #: GED thresholds (paper: 0..20, default 10)
    tau_values: Tuple[int, ...] = (0, 1, 2, 3, 4, 5)
    default_tau: int = 3
    #: queries averaged per configuration (paper: 20)
    query_count: int = 5
    #: scaled counterpart of the paper's τ=10 (AIDS) / τ=2 (Linux)
    scalability_tau_aids: int = 3
    scalability_tau_linux: int = 1
    #: mean graph order for generated corpora (paper: ~46)
    mean_order: float = 12.0


#: The single grid every bench file imports.
SCALED_DEFAULTS = ParamGrid()
