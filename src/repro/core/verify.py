"""Verification scheduling for filter-and-verify pipelines.

GED verification is NP-hard, so *order matters*: verifying the most
promising candidates first produces answers early, and per-candidate
budgets stop one pathological pair from starving the rest.  The paper
leaves verification implicit ("candidates verification using the GED is an
extremely expensive process"); this module makes it a first-class,
schedulable step:

* candidates are verified in increasing ``L_m`` order (most similar first);
* candidates whose ``U_m ≤ τ`` are admitted without any A* at all;
* candidates whose ``L_m > τ`` (possible when the filter admitted them via
  an aggregation shortcut) are rejected without A*;
* each A* run gets a state budget; blown budgets are reported as
  ``undecided`` rather than crashing the batch;
* with ``workers > 1`` (or ``REPRO_VERIFY_WORKERS``) the A* runs fan out
  over the **supervised** process pool (:mod:`repro.resilience.pool`).
  The bounds stage stays in-process (it is cheap and prunes most of the
  batch); the surviving runs are dispatched in the same ``L_m``-ascending
  priority order, each with its budget intact.  Hung workers are killed
  after ``task_timeout``, broken pools are re-spawned with completed runs
  salvaged, and a blown ``deadline`` terminates the worker processes
  outright so it actually bounds wall-clock.  Engines or graphs that
  cannot be pickled degrade to the serial path with identical answers,
  and every degradation lands in :attr:`VerificationReport.degradations`.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import SearchBudgetExceeded
from ..graphs.edit_distance import PreparedQuery, graph_edit_distance, prepare_query
from ..graphs.model import Graph
from ..config import ENV_VERIFY_WORKERS, env_int
from .bounds import settle_by_full_bounds
from ..obs.trace import NULL_TRACER, current_tracer
from ..resilience.faults import FaultPlan, resolve_fault_plan
from ..resilience.pool import PoolTask, ResiliencePolicy, run_supervised
from ..resilience.telemetry import DegradationEvent

#: Default per-candidate A* state budget for *direct* verify_candidates
#: calls; engine-driven verification uses ``EngineConfig.verify_budget``.
DEFAULT_VERIFY_BUDGET = 200_000

#: Exceptions that mean "this payload cannot travel to a worker process".
PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError, NotImplementedError)


def resolve_verify_workers(workers: Optional[int] = None) -> int:
    """Resolve the verify worker count from argument / environment / serial."""
    if workers is None:
        workers = env_int(ENV_VERIFY_WORKERS, 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


@dataclass
class VerificationReport:
    """Outcome of verifying a candidate set."""

    matches: Set[object] = field(default_factory=set)
    rejected: Set[object] = field(default_factory=set)
    undecided: Set[object] = field(default_factory=set)
    #: how many candidates were settled by bounds alone (no A* run)
    settled_by_bounds: int = 0
    astar_runs: int = 0
    #: A* states expanded across every run (serial and worker-side alike)
    astar_expansions: int = 0
    elapsed: float = 0.0
    #: worker processes the A* stage actually ran on (1 = in-process)
    workers_used: int = 1
    #: degradation telemetry from the supervised pool (empty = clean run)
    degradations: List[DegradationEvent] = field(default_factory=list)

    def decided(self) -> bool:
        """True when no candidate was left undecided."""
        return not self.undecided


def _astar_outcome(
    query: Graph,
    graph: Graph,
    tau: int,
    budget: int,
    prepared: Optional[PreparedQuery] = None,
) -> Tuple[str, int]:
    """One A* run folded to ``(scheduling outcome, states expanded)``.

    *prepared* is the hoisted query-side search state
    (:func:`~repro.graphs.edit_distance.prepare_query`) — candidates of one
    query share it instead of each A* run recomputing it cold.
    """
    counters: dict = {}
    try:
        distance = graph_edit_distance(
            query,
            graph,
            threshold=tau,
            budget=budget,
            counters=counters,
            prepared=prepared,
        )
    except SearchBudgetExceeded:
        return "undecided", counters.get("expanded", 0)
    verdict = "match" if distance is not None else "rejected"
    return verdict, counters.get("expanded", 0)


# The query/τ/budget triple travels to each worker exactly once through the
# executor initializer (plus the worker's own prepared query state, built
# once there); tasks then carry only (gid, graph).
_WORKER_CTX: Optional[Tuple[Graph, int, int, PreparedQuery]] = None

# Disk-transport alternative: the worker holds a lazily-parsing graph store
# over the mapped database text, and tasks carry only the gid.
_WORKER_GRAPHS: Optional[Mapping[object, Graph]] = None


def _init_verify_worker(blob: bytes) -> None:
    global _WORKER_CTX
    query, tau, budget = pickle.loads(blob)
    _WORKER_CTX = (query, tau, budget, prepare_query(query))


def _init_verify_worker_disk(handle, ctx_blob: bytes) -> None:
    """Attach candidate graphs from the on-disk database text.

    Only the query/τ/budget context is pickled; candidate graphs parse on
    demand, worker-side, from the same text file the parent's engine is
    synced with (the handle's source hash proves it is still that file).
    """
    global _WORKER_CTX, _WORKER_GRAPHS
    from ..perf.diskcat import LazyGraphStore  # lazy: keeps core import-light

    query, tau, budget = pickle.loads(ctx_blob)
    _WORKER_CTX = (query, tau, budget, prepare_query(query))
    _WORKER_GRAPHS = LazyGraphStore(
        handle.graph_path, expected_sha=bytes.fromhex(handle.source_sha)
    )


def _run_verify_task_disk(gid: object) -> Tuple[object, str, int]:
    assert _WORKER_GRAPHS is not None, "verify worker initializer did not run"
    return _run_verify_task(gid, _WORKER_GRAPHS[gid])


def _run_verify_task(gid: object, graph: Graph) -> Tuple[object, str, int]:
    assert _WORKER_CTX is not None, "verify worker initializer did not run"
    query, tau, budget, prepared = _WORKER_CTX
    tracer = current_tracer()  # the worker-side tracer installed by the pool
    if tracer is not None:
        with tracer.span("verify.astar", gid=str(gid)) as span:
            verdict, expanded = _astar_outcome(
                query, graph, tau, budget, prepared
            )
            span.attrs["verdict"] = verdict
            span.attrs["expanded"] = expanded
    else:
        verdict, expanded = _astar_outcome(query, graph, tau, budget, prepared)
    return gid, verdict, expanded


def _parallel_astar(
    graphs: Mapping[object, Graph],
    query: Graph,
    scheduled: Sequence[Tuple[float, object]],
    tau: int,
    budget: int,
    deadline: Optional[float],
    started: float,
    workers: int,
    report: VerificationReport,
    policy: ResiliencePolicy,
    faults: FaultPlan,
    tracer=NULL_TRACER,
    disk_handle=None,
) -> List[Tuple[float, object]]:
    """Fan the scheduled A* runs out over the supervised worker pool.

    Folds every completed run into *report* and returns the scheduled
    items still unsettled — the unpicklable-payload fallback (everything),
    the circuit-breaker remainder, or deadline-abandoned stragglers — for
    the caller's serial loop, which preserves today's semantics for each
    (serial execution, or ``undecided`` once the deadline has passed).
    Priority is preserved by submitting in ``L_m`` order: the pool pops
    tasks FIFO, so the most promising candidates still run first.

    With a current *disk_handle* (the engine's on-disk index twin), the
    candidate graphs are not pickled at all: workers lazily parse them
    from the mapped database text, and each task ships only its gid.
    """
    if disk_handle is not None:
        try:
            ctx_blob = pickle.dumps(
                (query, tau, budget), protocol=pickle.HIGHEST_PROTOCOL
            )
        except PICKLE_ERRORS as exc:
            report.degradations.append(
                DegradationEvent(
                    point="pickle.engine",
                    stage="verify",
                    cause=repr(exc),
                    lost=len(scheduled),
                    fallback="serial",
                )
            )
            return list(scheduled)
        transport = "disk"
        initializer = _init_verify_worker_disk
        initargs: Tuple = (disk_handle, ctx_blob)
        tasks = [
            PoolTask(index, _run_verify_task_disk, (gid,))
            for index, (_, gid) in enumerate(scheduled)
        ]
    else:
        injected = faults.fire("pickle.engine", stage="verify")
        if injected is not None:
            report.degradations.append(
                DegradationEvent(
                    point="pickle.engine",
                    stage="verify",
                    cause="injected fault: pickle.engine",
                    injected=True,
                    lost=len(scheduled),
                    fallback="serial",
                )
            )
            return list(scheduled)
        try:
            ctx_blob = pickle.dumps(
                (query, tau, budget), protocol=pickle.HIGHEST_PROTOCOL
            )
            task_args = [(gid, graphs[gid]) for _, gid in scheduled]
            pickle.dumps(task_args[0], protocol=pickle.HIGHEST_PROTOCOL)
        except PICKLE_ERRORS as exc:
            report.degradations.append(
                DegradationEvent(
                    point="pickle.engine",
                    stage="verify",
                    cause=repr(exc),
                    lost=len(scheduled),
                    fallback="serial",
                )
            )
            return list(scheduled)
        transport = "pickle"
        initializer = _init_verify_worker
        initargs = (ctx_blob,)
        tasks = [
            PoolTask(index, _run_verify_task, (gid, graph))
            for index, (gid, graph) in enumerate(task_args)
        ]

    outcome = run_supervised(
        tasks,
        workers=min(workers, len(scheduled)),
        policy=policy,
        initializer=initializer,
        initargs=initargs,
        faults=faults,
        stage="verify",
        deadline=deadline,
        started=started,
        tracer=tracer,
        transport=transport,
    )
    report.degradations.extend(outcome.events)
    report.workers_used = max(outcome.workers_used, 1)

    remaining: List[Tuple[float, object]] = []
    for index, (l_m, gid) in enumerate(scheduled):
        if index in outcome.results:
            _, verdict, expanded = outcome.results[index]
            report.astar_runs += 1
            report.astar_expansions += expanded
            if verdict == "match":
                report.matches.add(gid)
            elif verdict == "rejected":
                report.rejected.add(gid)
            else:
                report.undecided.add(gid)
        else:
            remaining.append((l_m, gid))
    return remaining


def verify_candidates(
    graphs: Mapping[object, Graph],
    query: Graph,
    candidates: Sequence[object],
    tau: int,
    *,
    already_confirmed: Sequence[object] = (),
    budget_per_candidate: int = DEFAULT_VERIFY_BUDGET,
    deadline: Optional[float] = None,
    workers: Optional[int] = None,
    assignment_backend: Optional[str] = None,
    resilience: Optional[ResiliencePolicy] = None,
    fault_plan=None,
    tracer=NULL_TRACER,
    disk_handle=None,
) -> VerificationReport:
    """Verify *candidates* against ``λ(query, ·) ≤ tau``.

    ``already_confirmed`` entries (e.g. upper-bound hits from the filter)
    are admitted directly.  ``deadline`` (seconds) stops scheduling new A*
    runs once exceeded; unprocessed candidates end up ``undecided``.
    ``workers`` (default: the ``REPRO_VERIFY_WORKERS`` environment
    variable) above 1 dispatches the A* runs to the supervised process
    pool, governed by *resilience* (default: the ``REPRO_TASK_TIMEOUT`` /
    ``REPRO_MAX_POOL_RETRIES`` / ``REPRO_RETRY_BACKOFF`` environment
    knobs) and *fault_plan* (a spec string, a parsed
    :class:`~repro.resilience.faults.FaultPlan`, or ``None`` for the
    ``REPRO_FAULT_PLAN`` environment default).

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> g = Graph(["a", "b"], [(0, 1)])
    >>> report = verify_candidates({"g": g}, g, ["g"], 0)
    >>> report.matches
    {'g'}
    """
    if tau < 0:
        raise ValueError("tau must be non-negative")
    started = time.perf_counter()
    report = VerificationReport()
    report.matches.update(already_confirmed)

    # Compute bounds once per candidate; schedule by increasing L_m.
    scheduled: List[Tuple[float, object]] = []
    for gid in candidates:
        if gid in report.matches:
            continue
        verdict, l_m = settle_by_full_bounds(
            query, graphs[gid], tau, backend=assignment_backend
        )
        if verdict == "match":
            report.matches.add(gid)
            report.settled_by_bounds += 1
        elif verdict == "pruned":
            report.rejected.add(gid)
            report.settled_by_bounds += 1
        else:
            scheduled.append((l_m, gid))
    scheduled.sort(key=lambda item: (item[0], str(item[1])))

    workers = resolve_verify_workers(workers)
    remaining: Sequence[Tuple[float, object]] = scheduled
    if workers > 1 and len(scheduled) > 1:
        policy = resilience if resilience is not None else ResiliencePolicy.from_env()
        faults = resolve_fault_plan(fault_plan)
        remaining = _parallel_astar(
            graphs,
            query,
            scheduled,
            tau,
            budget_per_candidate,
            deadline,
            started,
            workers,
            report,
            policy,
            faults,
            tracer,
            disk_handle,
        )

    prepared = prepare_query(query) if remaining else None
    for l_m, gid in remaining:
        if deadline is not None and time.perf_counter() - started > deadline:
            report.undecided.add(gid)
            continue
        report.astar_runs += 1
        if tracer.enabled:
            with tracer.span("verify.astar", gid=str(gid)) as span:
                outcome, expanded = _astar_outcome(
                    query, graphs[gid], tau, budget_per_candidate, prepared
                )
                span.attrs["verdict"] = outcome
                span.attrs["expanded"] = expanded
        else:
            outcome, expanded = _astar_outcome(
                query, graphs[gid], tau, budget_per_candidate, prepared
            )
        report.astar_expansions += expanded
        if outcome == "match":
            report.matches.add(gid)
        elif outcome == "rejected":
            report.rejected.add(gid)
        else:
            report.undecided.add(gid)
    report.elapsed = time.perf_counter() - started
    return report
