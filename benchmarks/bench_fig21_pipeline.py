"""Figure 21: SEGOS-Pipeline vs SEGOS across τ (both datasets).

Paper: the pipelined three-stage processor is at least as fast as the plain
algorithm, with a growing advantage as τ (and hence the access number)
increases.  CPython's GIL shrinks the wall-clock gap here, so the reported
series are the interesting artefact; the shape assertion is on soundness
(same confirmed answers) rather than strict time ordering.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, format_table
from repro.core.engine import SegosIndex
from repro.core.pipeline import PipelinedSegos
from repro.datasets import sample_queries


@pytest.mark.parametrize("which", ["aids", "pdg"])
def test_fig21_pipeline(benchmark, which, aids_dataset, pdg_dataset, grid, report):
    dataset = aids_dataset if which == "aids" else pdg_dataset
    data = dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=81)
    engine = SegosIndex(data.graphs, k=grid.default_k, h=grid.default_h)
    pipeline = PipelinedSegos(engine)

    plain_series = Series("SEGOS time (s)")
    piped_series = Series("SEGOS-Pipeline time (s)")
    access_series = Series("SEGOS-Pipeline access#")
    for tau in grid.tau_values:
        plain_time = piped_time = 0.0
        accesses = 0
        for query in queries:
            plain = engine.range_query(query, tau=tau)
            piped = pipeline.range_query(query, tau=tau)
            plain_time += plain.elapsed
            piped_time += piped.elapsed
            accesses += piped.stats.graphs_accessed
            # Both must agree on every upper-bound-confirmed answer.
            assert plain.matches <= set(piped.candidates)
            assert piped.matches <= set(plain.candidates)
        plain_series.add(tau, plain_time / len(queries))
        piped_series.add(tau, piped_time / len(queries))
        access_series.add(tau, accesses / len(queries))
    report(
        f"fig21_pipeline_{which}",
        format_table(
            f"Fig 21 (pipeline vs plain, {data.name})",
            "τ",
            list(grid.tau_values),
            [plain_series, piped_series, access_series],
        ),
    )
    benchmark.pedantic(
        lambda: pipeline.range_query(queries[0], tau=grid.default_tau),
        rounds=1,
        iterations=1,
    )
