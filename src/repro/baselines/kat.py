"""κ-AT: κ-adjacent-tree filter (Wang et al. [14], TKDE 2010).

Each vertex contributes its **κ-adjacent tree** — the BFS tree of depth κ
rooted at it — canonicalised into a string pattern; a graph of order n thus
owns a multiset of n patterns, stored in an inverted index
``pattern → [(gid, freq)]``.

Filtering uses a count bound: a single edit operation can invalidate at most

    D_κ(δ) = max(Σ_{i=0..κ} δ^i,  2·Σ_{i=0..κ-1} δ^i)

patterns (a vertex edit touches every root within distance κ; an edge edit
every root within distance κ−1 of either endpoint), so ``λ(q, g) ≤ τ``
implies

    |T_κ(q) ∩ T_κ(g)|  ≥  max(|q|, |g|) − τ·D_κ .

Graphs failing the inequality are pruned; everything else is a candidate.
The bound needs only counter intersections — which is why κ-AT answers
queries fastest in the paper's Figure 16(a) — but it degrades quickly as τ
grows, giving the orders-of-magnitude candidate gap of Figures 15–18.

The paper tunes κ=2 as the best setting on both datasets; that is the
default here.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Tuple

from ..graphs.model import Graph, database_max_degree
from .base import FilterResult, RangeQueryMethod


def adjacent_tree_signature(graph: Graph, root: int, kappa: int) -> str:
    """Canonical string of the κ-adjacent tree rooted at *root*.

    Children are expanded recursively (excluding the vertex we arrived
    from, the usual adjacent-tree convention) and sorted at every level so
    isomorphic trees share one signature.
    """

    def canon(vertex: int, parent: int, depth: int) -> str:
        label = graph.label(vertex)
        if depth == 0:
            return label
        children = sorted(
            canon(n, vertex, depth - 1)
            for n in graph.neighbors(vertex)
            if n != parent
        )
        return f"{label}({','.join(children)})"

    return canon(root, -1, kappa)


def pattern_multiset(graph: Graph, kappa: int) -> Counter:
    """All κ-adjacent-tree patterns of *graph* as a Counter."""
    return Counter(
        adjacent_tree_signature(graph, v, kappa) for v in graph.vertices()
    )


def edits_affect_at_most(delta: int, kappa: int) -> int:
    """``D_κ(δ)``: patterns one edit operation can invalidate."""
    delta = max(delta, 1)
    vertex_touch = sum(delta**i for i in range(kappa + 1))
    edge_touch = 2 * sum(delta**i for i in range(kappa))
    return max(vertex_touch, edge_touch)


class KappaAT(RangeQueryMethod):
    """Inverted index over κ-adjacent-tree patterns with the count filter."""

    name = "κ-AT"

    def __init__(self, graphs: Mapping[object, Graph], *, kappa: int = 2) -> None:
        super().__init__(graphs)
        if kappa < 1:
            raise ValueError("kappa must be >= 1")
        self.kappa = kappa
        self._postings: Dict[str, List[Tuple[object, int]]] = {}
        self._orders: Dict[object, int] = {}
        for gid, graph in self.graphs.items():
            self._orders[gid] = graph.order
            for pattern, freq in pattern_multiset(graph, kappa).items():
                self._postings.setdefault(pattern, []).append((gid, freq))
        self._db_max_degree = database_max_degree(self.graphs.values())

    def range_query(self, query: Graph, *, tau: float) -> FilterResult:
        if query.order == 0:
            raise ValueError("query graph must not be empty")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        query_patterns = pattern_multiset(query, self.kappa)
        common: Dict[object, int] = {}
        for pattern, q_count in query_patterns.items():
            for gid, freq in self._postings.get(pattern, ()):
                common[gid] = common.get(gid, 0) + min(q_count, freq)
        delta = max(query.max_degree(), self._db_max_degree)
        budget = tau * edits_affect_at_most(delta, self.kappa)
        candidates = [
            gid
            for gid, order in self._orders.items()
            if common.get(gid, 0) >= max(query.order, order) - budget
        ]
        # κ-AT computes no mapping distances at all: accessed stays 0, which
        # is exactly why it is fast and why its candidates are loose.
        return FilterResult(candidates=candidates, graphs_accessed=0)

    def index_size(self) -> int:
        """Total postings across all pattern lists."""
        return sum(len(postings) for postings in self._postings.values())

    def distinct_pattern_count(self) -> int:
        return len(self._postings)
