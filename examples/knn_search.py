#!/usr/bin/env python3
"""k-nearest-neighbour graph search with expanding-ring range queries.

Given a noisy probe molecule, retrieve its 5 closest database compounds by
exact graph edit distance, letting the SEGOS filter keep the expensive A*
verification off most of the corpus.

Run with::

    python examples/knn_search.py
"""

import random

from repro import SegosIndex
from repro.core.knn import knn_query
from repro.datasets import aids_like
from repro.graphs.generators import mutate


def main() -> None:
    data = aids_like(150, seed=23, mean_order=9.0, stddev=2.0)
    engine = SegosIndex(data.graphs, k=25, h=100)
    rng = random.Random(5)

    source_gid = rng.choice(list(data.graphs))
    probe = mutate(rng, data.graphs[source_gid], 2, data.labels)
    print(f"probe: a 2-edit mutation of {source_gid}")

    result = knn_query(engine, probe, k=5)
    print(f"\n5 nearest neighbours (found in {result.rings} rings):")
    for gid, distance in result.neighbours:
        marker = "  <- source" if gid == source_gid else ""
        print(f"  {gid}  ged={distance}{marker}")

    accessed = result.stats.graphs_accessed
    print(
        f"\nfilter work: {accessed} mapping-distance computations across all "
        f"rings (database: {len(engine)} graphs)"
    )


if __name__ == "__main__":
    main()
