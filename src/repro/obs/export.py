"""Exporters: JSONL span dumps, Chrome trace_event, Prometheus text.

Three consumers, three formats:

* **JSONL** — one span per line; the durable, append-friendly form the
  ``trace_path`` knob writes and :func:`read_spans_jsonl` round-trips
  (the golden tests diff traces through this path);
* **Chrome trace_event** — load the file in ``about://tracing`` (or
  Perfetto) to see stages, threads and worker processes on one timeline;
  spans map to complete events (``ph: "X"``) with microsecond
  timestamps, instant events to ``ph: "i"``;
* **Prometheus text exposition** — a scrapeable snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Union

from .metrics import MetricsRegistry
from .trace import Span, Trace

Spans = Union[Trace, Iterable[Span]]


def _span_list(spans: Spans) -> List[Span]:
    return list(spans.spans) if isinstance(spans, Trace) else list(spans)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def span_to_dict(span: Span) -> Dict:
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "pid": span.pid,
        "tid": span.tid,
        "status": span.status,
        "attrs": span.attrs,
    }


def span_from_dict(payload: Dict) -> Span:
    return Span(
        name=payload["name"],
        trace_id=payload["trace_id"],
        span_id=payload["span_id"],
        parent_id=payload.get("parent_id", ""),
        start=payload.get("start", 0.0),
        end=payload.get("end", 0.0),
        pid=payload.get("pid", 0),
        tid=payload.get("tid", 0),
        status=payload.get("status", "ok"),
        attrs=payload.get("attrs", {}),
    )


def write_spans_jsonl(spans: Spans, path: str, *, append: bool = True) -> int:
    """Append (default) or overwrite *path* with one JSON span per line.

    Returns the number of spans written.  Append mode is what lets every
    traced query share one ``trace_path`` file across a whole run.
    """
    items = _span_list(spans)
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as fh:
        for span in items:
            fh.write(json.dumps(span_to_dict(span), sort_keys=True))
            fh.write("\n")
    return len(items)


def read_spans_jsonl(path: str) -> List[Span]:
    """Load every span from a JSONL dump (blank lines ignored)."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def chrome_trace_events(spans: Spans) -> List[Dict]:
    """Spans as Chrome ``trace_event`` dicts (``ts``/``dur`` in µs)."""
    events: List[Dict] = []
    for span in _span_list(spans):
        event: Dict = {
            "name": span.name,
            "cat": "repro",
            "ph": "X" if span.end > span.start else "i",
            "ts": span.start * 1e6,
            "pid": span.pid,
            "tid": span.tid,
            "args": dict(
                span.attrs,
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
                status=span.status,
            ),
        }
        if event["ph"] == "X":
            event["dur"] = span.duration * 1e6
        else:
            event["s"] = "p"  # instant event, process-scoped
        events.append(event)
    return events


def write_chrome_trace(spans: Spans, path_or_file: Union[str, IO]) -> int:
    """Write a ``traceEvents`` JSON file loadable by about://tracing."""
    events = chrome_trace_events(spans)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
    return len(events)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _fmt_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind, help, series in registry.collect():
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in series:
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(metric.buckets, metric.counts):
                    cumulative = count
                    bucket_labels = tuple(labels) + (("le", _fmt_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_fmt_labels(bucket_labels)} {cumulative}"
                    )
                inf_labels = tuple(labels) + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_fmt_labels(inf_labels)} {metric.count}")
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(metric.sum)}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write a text-format metrics snapshot to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))
