"""EngineConfig: precedence (env < constructor < per-call), validation, and
the structural guard that only the config layer touches ``os.environ``."""

from __future__ import annotations

import dataclasses
import pathlib
import subprocess
import sys

import pytest

from repro.config import (
    DEFAULT_VERIFY_BUDGET,
    ENV_ASSIGNMENT_BACKEND,
    ENV_BATCH_WORKERS,
    ENV_KNOBS,
    ENV_SED_CACHE_SIZE,
    ENV_TOPK_BACKEND,
    ENV_VERIFY_BUDGET,
    ENV_VERIFY_DEADLINE,
    ENV_VERIFY_WORKERS,
    EngineConfig,
)
from repro.core.engine import SegosIndex
from repro.graphs.model import Graph

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def build_engine(items, **kwargs):
    engine = SegosIndex(**kwargs)
    for gid, graph in items:
        engine.add(gid, graph)
    return engine


class TestPrecedence:
    """env < constructor kwarg < per-call override, for every knob."""

    def test_builtin_defaults(self, monkeypatch):
        for _, env in ENV_KNOBS:
            monkeypatch.delenv(env, raising=False)
        config = EngineConfig.from_env()
        assert config.k == 100
        assert config.h == 1000
        assert config.partial_fraction == 0.5
        assert config.sed_cache_size == 1 << 18
        assert config.assignment_backend is None
        assert config.topk_backend is None
        assert config.batch_workers == 1
        assert config.verify_workers == 1
        assert config.verify_budget == DEFAULT_VERIFY_BUDGET
        assert config.verify_deadline is None
        assert config.trace is False
        assert config.trace_path is None
        assert config.metrics is False
        assert config.index_path is None
        assert config.mmap is True
        assert config.delta_compact == 0.25

    def test_env_provides_defaults(self, monkeypatch):
        monkeypatch.setenv(ENV_SED_CACHE_SIZE, "1024")
        monkeypatch.setenv(ENV_ASSIGNMENT_BACKEND, "pure")
        monkeypatch.setenv(ENV_TOPK_BACKEND, "scan")
        monkeypatch.setenv(ENV_BATCH_WORKERS, "3")
        monkeypatch.setenv(ENV_VERIFY_WORKERS, "2")
        monkeypatch.setenv(ENV_VERIFY_BUDGET, "12345")
        monkeypatch.setenv(ENV_VERIFY_DEADLINE, "1.5")
        config = EngineConfig.from_env()
        assert config.sed_cache_size == 1024
        assert config.assignment_backend == "pure"
        assert config.topk_backend == "scan"
        assert config.batch_workers == 3
        assert config.verify_workers == 2
        assert config.verify_budget == 12345
        assert config.verify_deadline == 1.5

    def test_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TOPK_BACKEND, "scan")
        monkeypatch.setenv(ENV_VERIFY_WORKERS, "4")
        monkeypatch.setenv(ENV_VERIFY_BUDGET, "77")
        config = EngineConfig.from_env(
            topk_backend="ta", verify_workers=2, verify_budget=99, k=7
        )
        assert config.topk_backend == "ta"
        assert config.verify_workers == 2
        assert config.verify_budget == 99
        assert config.k == 7

    def test_none_override_means_unspecified(self, monkeypatch):
        monkeypatch.setenv(ENV_BATCH_WORKERS, "5")
        config = EngineConfig.from_env(batch_workers=None)
        assert config.batch_workers == 5

    def test_per_call_beats_constructor(self):
        config = EngineConfig.from_env(k=50, h=200)
        derived = config.override(k=5, verify_budget=10)
        assert (derived.k, derived.h, derived.verify_budget) == (5, 200, 10)
        # the base config is untouched (frozen, replace-based)
        assert (config.k, config.verify_budget) == (50, DEFAULT_VERIFY_BUDGET)

    def test_engine_resolves_env_once_at_construction(self, monkeypatch):
        monkeypatch.setenv(ENV_VERIFY_BUDGET, "4242")
        engine = SegosIndex()
        assert engine.config.verify_budget == 4242
        # later environment changes do not affect a constructed engine
        monkeypatch.setenv(ENV_VERIFY_BUDGET, "1")
        assert engine.config.verify_budget == 4242

    def test_engine_kwargs_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TOPK_BACKEND, "scan")
        engine = SegosIndex(topk_backend="ta", k=9)
        assert engine.topk_backend == "ta"
        assert engine.k == 9

    def test_per_call_override_through_real_query(self, small_aids):
        items = list(small_aids.graphs.items())
        engine = build_engine(items[:20], k=100)
        query = items[0][1]
        wide = engine.range_query(query, tau=2)
        narrow = engine.range_query(query, tau=2, k=1)
        # k=1 must actually reach the TA stage: fewer/equal sorted accesses
        assert narrow.stats.ta_accesses <= wide.stats.ta_accesses
        assert engine.config.k == 100  # engine config untouched

    def test_explicit_engine_config_object(self):
        config = EngineConfig.from_env(k=11, h=22)
        engine = SegosIndex(config=config, h=33)
        assert engine.k == 11
        assert engine.h == 33  # kwargs still override an explicit config


class TestValidation:
    def test_frozen(self):
        config = EngineConfig.from_env()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.k = 1

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="unknown EngineConfig field"):
            EngineConfig.from_env(kk=3)
        with pytest.raises(TypeError, match="unknown EngineConfig field"):
            EngineConfig.from_env().override(verify="exact")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"h": 0},
            {"partial_fraction": -0.1},
            {"sed_cache_size": -1},
            {"batch_workers": 0},
            {"verify_workers": 0},
            {"verify_budget": 0},
            {"verify_deadline": 0.0},
            {"delta_compact": -0.1},
        ],
    )
    def test_bounds(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig.from_env(**kwargs)

    def test_unknown_assignment_backend_fails_fast(self, monkeypatch):
        with pytest.raises(ValueError):
            EngineConfig.from_env(assignment_backend="nope")
        monkeypatch.setenv(ENV_ASSIGNMENT_BACKEND, "nope")
        with pytest.raises(ValueError):
            EngineConfig.from_env()

    def test_unknown_topk_env_degrades_to_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_TOPK_BACKEND, "warp-drive")
        assert EngineConfig.from_env().topk_backend is None
        with pytest.raises(ValueError):
            EngineConfig.from_env(topk_backend="warp-drive")

    def test_knobs_mapping_covers_every_field(self):
        config = EngineConfig.from_env()
        assert set(config.knobs()) == {
            f.name for f in dataclasses.fields(EngineConfig)
        }


class TestEnvIsolation:
    """No module outside the config layer may read os.environ."""

    def test_only_config_layer_touches_environ(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "config.py" and path.parent == SRC:
                continue
            text = path.read_text()
            if "os.environ" in text or "getenv" in text:
                offenders.append(str(path.relative_to(SRC)))
        assert offenders == []

    def test_env_var_names_are_reexported(self):
        from repro.core import ta_search, verify
        from repro.perf import assignment, parallel, sed_cache

        assert assignment.ENV_BACKEND == ENV_ASSIGNMENT_BACKEND
        assert parallel.ENV_WORKERS == ENV_BATCH_WORKERS
        assert sed_cache.ENV_CAPACITY == ENV_SED_CACHE_SIZE
        assert verify.ENV_VERIFY_WORKERS == ENV_VERIFY_WORKERS
        assert ta_search.ENV_TOPK_BACKEND == ENV_TOPK_BACKEND

    def test_config_travels_to_subprocess(self):
        # A resolved config must be self-contained: pickling it into a
        # fresh interpreter with a clean environment keeps its values.
        code = (
            "import pickle, sys; "
            "c = pickle.loads(sys.stdin.buffer.read()); "
            "print(c.k, c.verify_budget, c.topk_backend)"
        )
        import pickle

        config = EngineConfig.from_env(k=17, verify_budget=55, topk_backend="ta")
        out = subprocess.run(
            [sys.executable, "-c", code],
            input=pickle.dumps(config),
            capture_output=True,
            env={"PYTHONPATH": str(SRC.parent)},
            check=True,
        )
        assert out.stdout.decode().split() == ["17", "55", "ta"]


class TestSedCacheKnob:
    def test_engine_resizes_global_cache(self):
        from repro.perf.sed_cache import GLOBAL_SED_CACHE

        before = GLOBAL_SED_CACHE.maxsize
        try:
            SegosIndex(sed_cache_size=2048)
            assert GLOBAL_SED_CACHE.maxsize == 2048
        finally:
            GLOBAL_SED_CACHE.resize(before)

    def test_engine_leaves_cache_alone_when_size_matches(self):
        from repro.perf.sed_cache import GLOBAL_SED_CACHE

        g = Graph(["a", "b"], [(0, 1)])
        engine = SegosIndex()
        engine.add("g", g)
        engine.range_query(g, tau=0)
        hits_before = GLOBAL_SED_CACHE.info().hits
        SegosIndex(sed_cache_size=GLOBAL_SED_CACHE.maxsize)
        assert GLOBAL_SED_CACHE.info().hits == hits_before
