"""Relational (SQLite) backend for the two-level inverted index.

Section IV-C: "such inverted indexes can be implemented either with a
special purpose inverted list engine or in commercial relational database
systems … building on various query optimization, concurrency control
techniques".  :class:`SqliteTwoLevelIndex` is that second option, over the
standard library's ``sqlite3``: both index levels live in B-tree-backed
tables, every Op1–Op4 primitive is one or two indexed statements (the
O(log N) page-access cost the paper quotes), and sorted-list reads are
``ORDER BY`` scans over covering indexes.

The class exposes the same surface as the in-memory
:class:`repro.core.index.TwoLevelIndex` — including the ``catalog`` /
``upper`` / ``lower`` sub-objects the TA/CA algorithms touch — so
:class:`repro.core.engine.SegosIndex` can run unmodified on either backend
(``SegosIndex(backend="sqlite")``); an equivalence test drives both with
the same workload.

Schema::

    stars(sid PK, root, leaves, leaf_size, refcount)   -- the star catalog
    star_leaves(sid, label, freq)                      -- lower-level postings
    graphs(gid PK, ord, max_degree)                    -- graph metadata
    upper(sid, gid, freq, ord)                         -- upper-level postings
    graph_stars(gid, sid, cnt)                         -- S(g) multisets

Labels must not contain the ``,`` separator (validated on insert); the
generated corpora and the transaction file format both satisfy this.
"""

from __future__ import annotations

import sqlite3
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import (
    GraphAlreadyIndexed,
    GraphNotIndexed,
    IndexCorruptionError,
)
from ..graphs.model import Graph
from ..graphs.star import Star
from .index import GraphMeta, LowerEntry, UpperEntry

_SCHEMA = """
CREATE TABLE IF NOT EXISTS stars (
    sid INTEGER PRIMARY KEY,
    root TEXT NOT NULL,
    leaves TEXT NOT NULL,
    leaf_size INTEGER NOT NULL,
    refcount INTEGER NOT NULL,
    UNIQUE (root, leaves)
);
CREATE TABLE IF NOT EXISTS star_leaves (
    sid INTEGER NOT NULL,
    label TEXT NOT NULL,
    freq INTEGER NOT NULL,
    PRIMARY KEY (label, sid)
);
CREATE INDEX IF NOT EXISTS star_leaves_by_sid ON star_leaves (sid);
CREATE TABLE IF NOT EXISTS graphs (
    gid TEXT PRIMARY KEY,
    ord INTEGER NOT NULL,
    max_degree INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS upper_postings (
    sid INTEGER NOT NULL,
    gid TEXT NOT NULL,
    freq INTEGER NOT NULL,
    ord INTEGER NOT NULL,
    PRIMARY KEY (sid, gid)
);
CREATE INDEX IF NOT EXISTS upper_by_sid_order ON upper_postings (sid, ord, gid);
CREATE TABLE IF NOT EXISTS graph_stars (
    gid TEXT NOT NULL,
    sid INTEGER NOT NULL,
    cnt INTEGER NOT NULL,
    PRIMARY KEY (gid, sid)
);
"""


def _encode_leaves(star: Star) -> str:
    for label in (star.root, *star.leaves):
        if "," in label:
            raise ValueError(
                f"label {label!r} contains ',' — unsupported by the sqlite backend"
            )
    return ",".join(star.leaves)


def _decode_star(root: str, leaves: str) -> Star:
    return Star(root, leaves.split(",") if leaves else ())


class _SqliteCatalog:
    """Star-catalog facade over the ``stars`` table."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM stars WHERE refcount > 0"
        ).fetchone()
        return count

    def star(self, sid: int) -> Star:
        row = self._conn.execute(
            "SELECT root, leaves FROM stars WHERE sid = ? AND refcount > 0", (sid,)
        ).fetchone()
        if row is None:
            raise IndexCorruptionError(f"star id {sid} is not live")
        return _decode_star(*row)

    def sid(self, star: Star) -> Optional[int]:
        row = self._conn.execute(
            "SELECT sid FROM stars WHERE root = ? AND leaves = ? AND refcount > 0",
            (star.root, _encode_leaves(star)),
        ).fetchone()
        return row[0] if row else None

    def live_sids(self) -> List[int]:
        return [
            sid
            for (sid,) in self._conn.execute(
                "SELECT sid FROM stars WHERE refcount > 0 ORDER BY sid"
            )
        ]


class _SqliteUpper:
    """Upper-level facade over ``upper_postings``."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def postings(self, sid: int) -> List[UpperEntry]:
        return [
            UpperEntry(gid, freq, order)
            for gid, freq, order in self._conn.execute(
                "SELECT gid, freq, ord FROM upper_postings WHERE sid = ? "
                "ORDER BY ord, gid",
                (sid,),
            )
        ]

    def split_by_order(
        self, sid: int, order: int
    ) -> Tuple[List[UpperEntry], List[UpperEntry]]:
        small = [
            UpperEntry(gid, freq, o)
            for gid, freq, o in self._conn.execute(
                "SELECT gid, freq, ord FROM upper_postings "
                "WHERE sid = ? AND ord <= ? ORDER BY ord, gid",
                (sid, order),
            )
        ]
        large = [
            UpperEntry(gid, freq, o)
            for gid, freq, o in self._conn.execute(
                "SELECT gid, freq, ord FROM upper_postings "
                "WHERE sid = ? AND ord > ? ORDER BY ord, gid",
                (sid, order),
            )
        ]
        return small, large

    def stats(self) -> Tuple[int, int]:
        (lists,) = self._conn.execute(
            "SELECT COUNT(DISTINCT sid) FROM upper_postings"
        ).fetchone()
        (total,) = self._conn.execute("SELECT COUNT(*) FROM upper_postings").fetchone()
        return lists, total


class _SqliteLower:
    """Lower-level facade over ``star_leaves`` joined with ``stars``."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def label_list(self, label: str) -> List[LowerEntry]:
        return [
            LowerEntry(sid, freq, leaf_size)
            for sid, freq, leaf_size in self._conn.execute(
                "SELECT sl.sid, sl.freq, s.leaf_size FROM star_leaves sl "
                "JOIN stars s ON s.sid = sl.sid "
                "WHERE sl.label = ? AND s.refcount > 0 "
                "ORDER BY s.leaf_size, sl.freq DESC, sl.sid",
                (label,),
            )
        ]

    def split_label_list(
        self, label: str, leaf_size: int
    ) -> Tuple[List[List[LowerEntry]], List[List[LowerEntry]]]:
        def group(rows: Iterable[Tuple[int, int, int]]) -> List[List[LowerEntry]]:
            groups: List[List[LowerEntry]] = []
            for sid, freq, size in rows:
                entry = LowerEntry(sid, freq, size)
                if groups and groups[-1][0].leaf_size == size:
                    groups[-1].append(entry)
                else:
                    groups.append([entry])
            return groups

        low = group(
            self._conn.execute(
                "SELECT sl.sid, sl.freq, s.leaf_size FROM star_leaves sl "
                "JOIN stars s ON s.sid = sl.sid "
                "WHERE sl.label = ? AND s.refcount > 0 AND s.leaf_size <= ? "
                "ORDER BY s.leaf_size, sl.freq DESC, sl.sid",
                (label, leaf_size),
            )
        )
        high = group(
            self._conn.execute(
                "SELECT sl.sid, sl.freq, s.leaf_size FROM star_leaves sl "
                "JOIN stars s ON s.sid = sl.sid "
                "WHERE sl.label = ? AND s.refcount > 0 AND s.leaf_size > ? "
                "ORDER BY s.leaf_size, sl.freq DESC, sl.sid",
                (label, leaf_size),
            )
        )
        return low, high

    def split_size_list(
        self, leaf_size: int
    ) -> Tuple[List[LowerEntry], List[LowerEntry]]:
        low = [
            LowerEntry(sid, 0, size)
            for sid, size in self._conn.execute(
                "SELECT sid, leaf_size FROM stars "
                "WHERE refcount > 0 AND leaf_size <= ? "
                "ORDER BY leaf_size DESC, sid DESC",
                (leaf_size,),
            )
        ]
        high = [
            LowerEntry(sid, 0, size)
            for sid, size in self._conn.execute(
                "SELECT sid, leaf_size FROM stars "
                "WHERE refcount > 0 AND leaf_size > ? "
                "ORDER BY leaf_size, sid",
                (leaf_size,),
            )
        ]
        return low, high

    def label_postings_count(self, label: str) -> int:
        """Posting count under *label* (the planner's selectivity probe)."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM star_leaves sl "
            "JOIN stars s ON s.sid = sl.sid "
            "WHERE sl.label = ? AND s.refcount > 0",
            (label,),
        ).fetchone()
        return count

    def stats(self) -> Tuple[int, int]:
        (labels,) = self._conn.execute(
            "SELECT COUNT(DISTINCT sl.label) FROM star_leaves sl "
            "JOIN stars s ON s.sid = sl.sid WHERE s.refcount > 0"
        ).fetchone()
        (postings,) = self._conn.execute(
            "SELECT COUNT(*) FROM star_leaves sl "
            "JOIN stars s ON s.sid = sl.sid WHERE s.refcount > 0"
        ).fetchone()
        (size_entries,) = self._conn.execute(
            "SELECT COUNT(*) FROM stars WHERE refcount > 0"
        ).fetchone()
        return labels, postings + size_entries


class SqliteTwoLevelIndex:
    """Drop-in relational implementation of the two-level index.

    Parameters
    ----------
    path:
        SQLite database path, or ``":memory:"`` (the default) for an
        in-process database.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self.catalog = _SqliteCatalog(self._conn)
        self.upper = _SqliteUpper(self._conn)
        self.lower = _SqliteLower(self._conn)
        #: Mutation counter mirroring :attr:`TwoLevelIndex.generation`; the
        #: columnar snapshot cache keys on it (see repro.perf.columnar).
        self.generation = 0

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    # Introspection (mirrors TwoLevelIndex)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM graphs").fetchone()
        return count

    def __contains__(self, gid: object) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM graphs WHERE gid = ?", (str(gid),)
            ).fetchone()
            is not None
        )

    def gids(self) -> List[str]:
        return [
            gid for (gid,) in self._conn.execute("SELECT gid FROM graphs ORDER BY gid")
        ]

    def meta(self, gid: object) -> GraphMeta:
        row = self._conn.execute(
            "SELECT ord, max_degree FROM graphs WHERE gid = ?", (str(gid),)
        ).fetchone()
        if row is None:
            raise GraphNotIndexed(gid)
        return GraphMeta(*row)

    def graph_star_counts(self, gid: object) -> Counter:
        if str(gid) not in self:
            raise GraphNotIndexed(gid)
        return Counter(
            {
                sid: cnt
                for sid, cnt in self._conn.execute(
                    "SELECT sid, cnt FROM graph_stars WHERE gid = ?", (str(gid),)
                )
            }
        )

    def database_max_degree(self) -> int:
        (value,) = self._conn.execute(
            "SELECT COALESCE(MAX(max_degree), 0) FROM graphs"
        ).fetchone()
        return value

    def size_estimate(self) -> int:
        _, upper_total = self.upper.stats()
        _, lower_total = self.lower.stats()
        return upper_total + lower_total + len(self.catalog)

    # ------------------------------------------------------------------
    # Star bookkeeping
    # ------------------------------------------------------------------
    def _acquire_star(self, star: Star, count: int = 1) -> int:
        leaves = _encode_leaves(star)
        row = self._conn.execute(
            "SELECT sid, refcount FROM stars WHERE root = ? AND leaves = ?",
            (star.root, leaves),
        ).fetchone()
        if row is not None:
            sid, refcount = row
            if refcount == 0:
                # Op4: the star is resurrected — re-add its label postings.
                self._insert_leaves(sid, star)
            self._conn.execute(
                "UPDATE stars SET refcount = refcount + ? WHERE sid = ?", (count, sid)
            )
            return sid
        cursor = self._conn.execute(
            "INSERT INTO stars (root, leaves, leaf_size, refcount) VALUES (?, ?, ?, ?)",
            (star.root, leaves, star.leaf_size, count),
        )
        sid = cursor.lastrowid
        self._insert_leaves(sid, star)
        return sid

    def _insert_leaves(self, sid: int, star: Star) -> None:
        self._conn.executemany(
            "INSERT INTO star_leaves (sid, label, freq) VALUES (?, ?, ?)",
            [(sid, label, freq) for label, freq in Counter(star.leaves).items()],
        )

    def _release_star(self, sid: int, count: int = 1) -> None:
        row = self._conn.execute(
            "SELECT refcount FROM stars WHERE sid = ?", (sid,)
        ).fetchone()
        if row is None or row[0] < count:
            raise IndexCorruptionError(f"over-release of star {sid}")
        self._conn.execute(
            "UPDATE stars SET refcount = refcount - ? WHERE sid = ?", (count, sid)
        )
        if row[0] == count:
            # Op4: dead star — drop its lower-level postings.
            self._conn.execute("DELETE FROM star_leaves WHERE sid = ?", (sid,))

    # ------------------------------------------------------------------
    # Graph updates (mirrors TwoLevelIndex)
    # ------------------------------------------------------------------
    def add_graph(self, gid: object, graph: Graph, stars: Sequence[Star]) -> None:
        gid = str(gid)
        if gid in self:
            raise GraphAlreadyIndexed(gid)
        self.generation += 1
        with self._conn:
            self._conn.execute(
                "INSERT INTO graphs (gid, ord, max_degree) VALUES (?, ?, ?)",
                (gid, graph.order, graph.max_degree()),
            )
            counts: Counter = Counter()
            for star in stars:
                counts[self._acquire_star(star)] += 1
            self._conn.executemany(
                "INSERT INTO graph_stars (gid, sid, cnt) VALUES (?, ?, ?)",
                [(gid, sid, cnt) for sid, cnt in counts.items()],
            )
            self._conn.executemany(
                "INSERT INTO upper_postings (sid, gid, freq, ord) VALUES (?, ?, ?, ?)",
                [(sid, gid, cnt, graph.order) for sid, cnt in counts.items()],
            )

    def remove_graph(self, gid: object) -> None:
        gid = str(gid)
        if gid not in self:
            raise GraphNotIndexed(gid)
        self.generation += 1
        with self._conn:
            for sid, cnt in self._conn.execute(
                "SELECT sid, cnt FROM graph_stars WHERE gid = ?", (gid,)
            ).fetchall():
                self._release_star(sid, cnt)
            self._conn.execute("DELETE FROM upper_postings WHERE gid = ?", (gid,))
            self._conn.execute("DELETE FROM graph_stars WHERE gid = ?", (gid,))
            self._conn.execute("DELETE FROM graphs WHERE gid = ?", (gid,))

    def apply_star_delta(
        self,
        gid: object,
        removed: Sequence[Star],
        added: Sequence[Star],
        new_meta: GraphMeta,
    ) -> None:
        gid = str(gid)
        if gid not in self:
            raise GraphNotIndexed(gid)
        self.generation += 1
        with self._conn:
            for star in removed:
                sid = self.catalog.sid(star)
                row = (
                    self._conn.execute(
                        "SELECT cnt FROM graph_stars WHERE gid = ? AND sid = ?",
                        (gid, sid),
                    ).fetchone()
                    if sid is not None
                    else None
                )
                if sid is None or row is None or row[0] <= 0:
                    raise IndexCorruptionError(
                        f"graph {gid!r} does not contain star {star.signature!r}"
                    )
                if row[0] == 1:
                    self._conn.execute(
                        "DELETE FROM graph_stars WHERE gid = ? AND sid = ?", (gid, sid)
                    )
                    self._conn.execute(
                        "DELETE FROM upper_postings WHERE gid = ? AND sid = ?",
                        (gid, sid),
                    )
                else:
                    self._conn.execute(
                        "UPDATE graph_stars SET cnt = cnt - 1 WHERE gid = ? AND sid = ?",
                        (gid, sid),
                    )
                    self._conn.execute(
                        "UPDATE upper_postings SET freq = freq - 1 "
                        "WHERE gid = ? AND sid = ?",
                        (gid, sid),
                    )
                self._release_star(sid)
            for star in added:
                sid = self._acquire_star(star)
                existing = self._conn.execute(
                    "SELECT cnt FROM graph_stars WHERE gid = ? AND sid = ?",
                    (gid, sid),
                ).fetchone()
                if existing is None:
                    self._conn.execute(
                        "INSERT INTO graph_stars (gid, sid, cnt) VALUES (?, ?, 1)",
                        (gid, sid),
                    )
                    self._conn.execute(
                        "INSERT INTO upper_postings (sid, gid, freq, ord) "
                        "VALUES (?, ?, 1, ?)",
                        (sid, gid, new_meta.order),
                    )
                else:
                    self._conn.execute(
                        "UPDATE graph_stars SET cnt = cnt + 1 WHERE gid = ? AND sid = ?",
                        (gid, sid),
                    )
                    self._conn.execute(
                        "UPDATE upper_postings SET freq = freq + 1 "
                        "WHERE gid = ? AND sid = ?",
                        (gid, sid),
                    )
            self._conn.execute(
                "UPDATE upper_postings SET ord = ? WHERE gid = ?",
                (new_meta.order, gid),
            )
            self._conn.execute(
                "UPDATE graphs SET ord = ?, max_degree = ? WHERE gid = ?",
                (new_meta.order, new_meta.max_degree, gid),
            )

    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Cross-check postings against the graph-star multisets."""
        for gid in self.gids():
            meta = self.meta(gid)
            for sid, cnt in self.graph_star_counts(gid).items():
                row = self._conn.execute(
                    "SELECT freq, ord FROM upper_postings WHERE sid = ? AND gid = ?",
                    (sid, gid),
                ).fetchone()
                if row is None or row[0] != cnt or row[1] != meta.order:
                    raise IndexCorruptionError(
                        f"upper posting mismatch for graph {gid!r}, star {sid}"
                    )
        for sid in self.catalog.live_sids():
            star = self.catalog.star(sid)
            stored = {
                label: freq
                for label, freq in self._conn.execute(
                    "SELECT label, freq FROM star_leaves WHERE sid = ?", (sid,)
                )
            }
            if stored != dict(Counter(star.leaves)):
                raise IndexCorruptionError(f"lower postings mismatch for star {sid}")
