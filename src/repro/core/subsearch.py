"""Subgraph similarity search — the conclusion's "bounds adaption" extension.

The paper closes by observing that SEGOS "with bounds adaption … also can
support the sub-graph matching problems" by "providing appropriate
aggregation functions for the TA or CA search".  This module carries that
out for range queries under the **subgraph edit distance**
``λ_sub(q, g) = min_{s ⊆ g} λ(q, s)``
(see :mod:`repro.graphs.subgraph_distance`).

Adapted star distance.  Editing the star of a kept query vertex into the
corresponding sub-star of ``g`` costs at least

    sub_sed(s_q, s_g) = T(r_q, r_g) + max(0, |L_q| − ψ)

(unmatched query leaves must be deleted or relabelled; g-side surplus
leaves are free).  It under-estimates the plain SED against any sub-star
of ``s_g`` because a subgraph's leaf multiset is contained in ``s_g``'s.

Adapted mapping distance.  With rows ``S(q)`` and columns ``S(g)``
(ε-padded at ``λ(s_q, ε)`` only when ``|g| < |q|``), the Hungarian optimum
``µ_sub(q, g)`` satisfies

    µ_sub(q, g) ≤ µ(q, s) ≤ δ' · λ(q, s)        for every s ⊆ g,

the first step because each entry of the sub-matrix under-prices the
corresponding entry of ``M(S(q), S(s))`` and unused columns absorb ε
assignments at ``sub_sed ≤ 1 + |L_q| ≤ λ(s_q, ε)``; the second step is
Zeng et al.'s Lemma 2 amortisation.  Hence

    L_sub(q, g) = µ_sub(q, g) / δ'  ≤  λ_sub(q, g),

a sound filter, property-tested against the exact A* in the test suite.

Adapted TA aggregation.  ``sub_sed`` ignores g-side size, so the top-k
sub-star search needs only the label lists (no size split): with last-seen
frequencies ``χ̄`` the threshold is ``ω = max(0, |L_q| − t(χ̄))``.

The graph stage mirrors the CA idea with the aggregation function
``ζ_sub(q, g) = Σ_j min-sub_sed seen`` and the same δ'-normalised halting
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import heapq

from ..graphs.model import Graph, normalization_factor
from ..graphs.star import Star, decompose, multiset_intersection_size
from ..graphs.subgraph_distance import subgraph_within
from ..matching.hungarian import hungarian
from .engine import SegosIndex
from .merge import merge_groups
from .plan import (
    ExecutionContext,
    QueryPlan,
    QueryResult,
    Stage,
    execute_plan,
    make_context,
)


def sub_star_distance(query: Star, other: Star) -> int:
    """``sub_sed``: cost of editing *query* into a sub-star of *other*."""
    t = 0 if query.root == other.root else 1
    psi = multiset_intersection_size(query.leaves, other.leaves)
    return t + max(0, query.leaf_size - psi)


def sub_mapping_distance(query: Graph, target: Graph) -> float:
    """``µ_sub(q, g)``: Hungarian over the sub-star cost matrix."""
    q_stars = decompose(query)
    g_stars = decompose(target)
    size = max(len(q_stars), len(g_stars))
    matrix: List[List[float]] = []
    for i in range(size):
        row: List[float] = []
        for j in range(size):
            if i < len(q_stars) and j < len(g_stars):
                row.append(float(sub_star_distance(q_stars[i], g_stars[j])))
            elif i < len(q_stars):  # ε column: delete the query star
                row.append(float(1 + 2 * q_stars[i].leaf_size))
            else:  # ε row: surplus g stars are free in subgraph semantics
                row.append(0.0)
        matrix.append(row)
    total, _ = hungarian(matrix)
    return total


def sub_lower_bound(query: Graph, target: Graph, *, database_max: int = 0) -> float:
    """``L_sub = µ_sub / δ' ≤ λ_sub`` (the adapted Lemma 2)."""
    delta = normalization_factor(query, target, database_max=database_max)
    return sub_mapping_distance(query, target) / delta


@dataclass
class SubgraphQueryResult(QueryResult):
    """Result of a subgraph-similarity range query.

    Identical shape to every other :class:`~repro.core.plan.QueryResult`
    (candidates, matches, stats, elapsed, verified, trace) — the subgraph
    mode differs only in the distance it filters under.
    """


class SubgraphSearch:
    """Index-assisted range queries under the subgraph edit distance.

    Wraps an existing :class:`~repro.core.engine.SegosIndex` — the same
    two-level index serves both distance functions; only the aggregation
    functions change, exactly as the paper's conclusion suggests.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> engine = SegosIndex()
    >>> engine.add("tri", Graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)]))
    >>> SubgraphSearch(engine).range_query(
    ...     Graph(["a", "b"], [(0, 1)]), tau=0, verify="exact").matches
    {'tri'}
    """

    def __init__(self, engine: SegosIndex, *, k: int = 50) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.engine = engine
        self.k = k

    # ------------------------------------------------------------------
    def top_k_sub_stars(self, query: Star, k: Optional[int] = None) -> List[Tuple[int, int]]:
        """TA search under ``sub_sed`` using only the label lists.

        Returns ``(sid, sub_sed)`` ascending.  Sorted access runs over the
        full (un-split) frequency-descending label lists; the halting
        threshold is ``ω = max(0, |L_q| − t(χ̄))`` — with the root term
        dropped, a floor for every unseen star.
        """
        k = k or self.k
        index = self.engine.index
        catalog = index.catalog
        leaf_counts = sorted(query.leaf_counter().items())
        heap: List[Tuple[int, int]] = []  # max-heap via negation

        def offer(sid: int) -> None:
            sed = sub_star_distance(query, catalog.star(sid))
            item = (-sed, -sid)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)

        seen: Set[int] = set()
        if not leaf_counts:
            # A leafless query star matches any star at cost T ∈ {0, 1}:
            # scan the catalog for a root match, else take anything.
            for sid in index.catalog.live_sids():
                if sid not in seen:
                    seen.add(sid)
                    offer(sid)
                    if len(heap) == k and -heap[0][0] == 0:
                        break
        else:
            streams = []
            for label, _count in leaf_counts:
                low, high = index.lower.split_label_list(label, 10**9)
                streams.append(merge_groups(low + high))
            last_freq = [0.0] * len(streams)
            exhausted = [False] * len(streams)
            while not all(exhausted):
                for j, stream in enumerate(streams):
                    if exhausted[j]:
                        continue
                    entry = next(stream, None)
                    if entry is None:
                        exhausted[j] = True
                        last_freq[j] = 0.0
                        continue
                    last_freq[j] = float(entry.freq)
                    if entry.sid not in seen:
                        seen.add(entry.sid)
                        offer(entry.sid)
                t_chi = sum(
                    min(float(count), last_freq[j])
                    for j, (_, count) in enumerate(leaf_counts)
                )
                omega = max(0.0, query.leaf_size - t_chi)
                if len(heap) == k and omega >= -heap[0][0]:
                    break
            else:
                # Lists exhausted: stars sharing no query leaf label are
                # still viable at sub_sed = T + |L_q|; include the best
                # root-matching ones if the heap is not full or could improve.
                bound = query.leaf_size  # with matching root
                if len(heap) < k or bound < -heap[0][0]:
                    for sid in index.catalog.live_sids():
                        if sid not in seen:
                            seen.add(sid)
                            offer(sid)
        return sorted(((-s, -d) for d, s in heap), key=lambda p: (p[1], p[0]))

    # ------------------------------------------------------------------
    def plan(self) -> QueryPlan:
        """The adapted-bounds plan, executed by the shared staged executor.

        Same three-stage shape as every other query mode — only the
        aggregation functions differ, exactly as the paper's conclusion
        suggests.  The TA stage hands its ζ_sub accumulators to the CA
        stage through the stage objects (a plan is built per query).
        """
        ta = _SubTAStage(self)
        return QueryPlan(
            stages=(ta, _SubCAStage(self, ta), _SubVerifyStage()),
            description="sub-ta -> sub-ca -> verify",
        )

    def range_query(
        self, query: Graph, *, tau: float, verify: str = "none"
    ) -> SubgraphQueryResult:
        """All graphs ``g`` with ``λ_sub(query, g) ≤ tau`` (sound filter).

        ``verify="exact"`` confirms candidates with the A* subgraph edit
        distance so ``matches`` is the exact answer set.
        """
        config = self.engine.config
        if config.shards > 1:
            # Scatter-gather over the catalog shards.  Pivot pruning is
            # deliberately OFF here: the subgraph edit distance is not a
            # metric (it is asymmetric and violates the triangle
            # inequality), so the pivot floors would be unsound — every
            # live shard runs.  Each shard gets its own SubgraphSearch:
            # the sub-TA stage streams that shard's label lists.
            from .plan import ShardedExecutor

            result = ShardedExecutor(self.engine, config).execute(
                query,
                tau,
                verify=verify,
                mode="subsearch",
                plan_for_shard=lambda shard: SubgraphSearch(
                    shard.engine, k=self.k
                ).plan(),
                use_pivots=False,
            )
            return SubgraphQueryResult(
                candidates=result.candidates,
                matches=result.matches,
                stats=result.stats,
                elapsed=result.elapsed,
                verified=result.verified,
                trace=result.trace,
            )
        ctx = make_context(
            self.engine,
            query,
            tau,
            config=self.engine.config,
            verify=verify,
            mode="subsearch",
        )
        ctx = execute_plan(self.plan(), ctx)
        return SubgraphQueryResult(
            candidates=ctx.candidates,
            matches=ctx.matches,
            stats=ctx.stats,
            elapsed=ctx.elapsed,
            verified=ctx.verified,
            trace=ctx.trace,
        )


class _SubTAStage(Stage):
    """Adapted TA: top-k sub-star searches + ζ_sub accumulator construction.

    ζ_sub(q, g) ≤ µ_sub(q, g) by the same argument as Theorem 2's ζ bound
    (list floors stand in for stars beyond the top-k).
    """

    name = "ta"

    def __init__(self, search: "SubgraphSearch") -> None:
        self.search = search
        self.zeta: Dict[object, Dict[int, float]] = {}
        self.floors: List[float] = []

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        ctx.query_stars = decompose(ctx.query)
        index = ctx.engine.index
        topk_cache: Dict[str, List[Tuple[int, int]]] = ctx.topk_cache
        for j, star in enumerate(ctx.query_stars):
            entries = topk_cache.get(star.signature)
            if entries is None:
                entries = self.search.top_k_sub_stars(star)
                topk_cache[star.signature] = entries
                ctx.stats.ta_searches += 1
            kth = (
                float(entries[-1][1])
                if len(entries) >= self.search.k
                else float("inf")
            )
            self.floors.append(min(kth, float(1 + 2 * star.leaf_size)))
            for sid, sed in entries:
                for posting in index.upper.postings(sid):
                    per_graph = self.zeta.setdefault(posting.gid, {})
                    best = per_graph.get(j)
                    if best is None or sed < best:
                        per_graph[j] = float(sed)
        return ctx


class _SubCAStage(Stage):
    """Adapted CA: ζ_sub screening plus the full-µ_sub tightening pass."""

    name = "ca"

    def __init__(self, search: "SubgraphSearch", ta: _SubTAStage) -> None:
        self.search = search
        self.ta = ta

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        index = ctx.engine.index
        delta_prime = normalization_factor(
            ctx.query, database_max=index.database_max_degree()
        )
        threshold = ctx.tau * delta_prime
        m = len(ctx.query_stars)
        floors = self.ta.floors
        unseen_floor = sum(floors)
        candidates: List[object] = []
        for gid in index.gids():
            per_graph = self.ta.zeta.get(gid)
            if per_graph is None:
                score = unseen_floor
            else:
                # Row j of the optimal µ_sub alignment may use a non-top-k
                # star (≥ kth) or an ε column (= λ(s_j, ε)), so each seen
                # value is additionally capped by the list floor.
                score = sum(
                    min(per_graph.get(j, float("inf")), floors[j])
                    for j in range(m)
                )
            if score > threshold:
                ctx.stats.count_prune("zeta_sub")
                continue
            # Tighten with the full µ_sub (one Hungarian, C-Star style).
            ctx.stats.graphs_accessed += 1
            ctx.stats.full_mapping_computations += 1
            graph = ctx.engine.graph(gid)
            if sub_mapping_distance(ctx.query, graph) / normalization_factor(
                ctx.query, graph
            ) > ctx.tau:
                ctx.stats.count_prune("l_sub")
                continue
            candidates.append(gid)
        ctx.candidates = candidates
        ctx.stats.candidates = len(candidates)
        return ctx


class _SubVerifyStage(Stage):
    """Exact confirmation via the A* subgraph edit distance."""

    name = "verify"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        matches: Set[object] = set()
        ctx.verified = ctx.verify == "exact"
        if ctx.verified:
            for gid in ctx.candidates:
                if subgraph_within(ctx.query, ctx.engine.graph(gid), int(ctx.tau)):
                    matches.add(gid)
        ctx.matches = matches
        ctx.stats.confirmed_matches = len(matches)
        return ctx
