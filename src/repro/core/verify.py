"""Verification scheduling for filter-and-verify pipelines.

GED verification is NP-hard, so *order matters*: verifying the most
promising candidates first produces answers early, and per-candidate
budgets stop one pathological pair from starving the rest.  The paper
leaves verification implicit ("candidates verification using the GED is an
extremely expensive process"); this module makes it a first-class,
schedulable step:

* candidates are verified in increasing ``L_m`` order (most similar first);
* candidates whose ``U_m ≤ τ`` are admitted without any A* at all;
* candidates whose ``L_m > τ`` (possible when the filter admitted them via
  an aggregation shortcut) are rejected without A*;
* each A* run gets a state budget; blown budgets are reported as
  ``undecided`` rather than crashing the batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import SearchBudgetExceeded
from ..graphs.edit_distance import graph_edit_distance
from ..graphs.model import Graph
from ..matching.mapping import bounds as mapping_bounds


@dataclass
class VerificationReport:
    """Outcome of verifying a candidate set."""

    matches: Set[object] = field(default_factory=set)
    rejected: Set[object] = field(default_factory=set)
    undecided: Set[object] = field(default_factory=set)
    #: how many candidates were settled by bounds alone (no A* run)
    settled_by_bounds: int = 0
    astar_runs: int = 0
    elapsed: float = 0.0

    def decided(self) -> bool:
        """True when no candidate was left undecided."""
        return not self.undecided


def verify_candidates(
    graphs: Mapping[object, Graph],
    query: Graph,
    candidates: Sequence[object],
    tau: int,
    *,
    already_confirmed: Sequence[object] = (),
    budget_per_candidate: int = 200_000,
    deadline: Optional[float] = None,
) -> VerificationReport:
    """Verify *candidates* against ``λ(query, ·) ≤ tau``.

    ``already_confirmed`` entries (e.g. upper-bound hits from the filter)
    are admitted directly.  ``deadline`` (seconds) stops scheduling new A*
    runs once exceeded; unprocessed candidates end up ``undecided``.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> g = Graph(["a", "b"], [(0, 1)])
    >>> report = verify_candidates({"g": g}, g, ["g"], 0)
    >>> report.matches
    {'g'}
    """
    if tau < 0:
        raise ValueError("tau must be non-negative")
    started = time.perf_counter()
    report = VerificationReport()
    report.matches.update(already_confirmed)

    # Compute bounds once per candidate; schedule by increasing L_m.
    scheduled: List[Tuple[float, object]] = []
    for gid in candidates:
        if gid in report.matches:
            continue
        l_m, u_m, _ = mapping_bounds(query, graphs[gid])
        if u_m <= tau:
            report.matches.add(gid)
            report.settled_by_bounds += 1
        elif l_m > tau:
            report.rejected.add(gid)
            report.settled_by_bounds += 1
        else:
            scheduled.append((l_m, gid))
    scheduled.sort(key=lambda item: (item[0], str(item[1])))

    for l_m, gid in scheduled:
        if deadline is not None and time.perf_counter() - started > deadline:
            report.undecided.add(gid)
            continue
        report.astar_runs += 1
        try:
            distance = graph_edit_distance(
                query, graphs[gid], threshold=tau, budget=budget_per_candidate
            )
        except SearchBudgetExceeded:
            report.undecided.add(gid)
            continue
        if distance is not None:
            report.matches.add(gid)
        else:
            report.rejected.add(gid)
    report.elapsed = time.perf_counter() - started
    return report
