"""Aggregation bounds for seen graphs (Section V-C, Theorem 2).

While the CA scan walks the graph score lists it accumulates, per seen data
graph ``g``, everything needed to evaluate the bound chain

    ζ(q, g)  ≤  L_µ(q, g)  ≤  µ(q, g)  ≤  U_µ(q, g)

in constant-ish time per checkpoint:

* ``ζ`` — sum over lists of the minimum SED of g's entries seen under each
  list (missing lists contribute 0);
* ``L_µ`` — ζ with every missing list's term replaced by
  ``min(χ̄_j, λ(s_j, ε))``, where ``χ̄_j`` is that list's last-seen SED (or
  its exhausted floor);
* ``U_µ`` — the cost of a greedy *valid* partial alignment built from the
  seen entries, plus ``χ̄ = max_{s ∈ S(q) ∪ S(g)} λ(s, ε)`` for every
  remaining pair.  Any completion of a valid partial alignment costs at most
  χ̄ per pair because ``λ(s_i, s_j) ≤ 1 + 2·max(|L_i|, |L_j|) ≤ χ̄``, so the
  result upper-bounds µ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..matching.mapping import bounds as full_bounds


def settle_by_full_bounds(
    query, graph, tau, *, backend=None, stats=None
) -> Tuple[str, float]:
    """Terminal Lemma 2/3 filtering from a single assignment solve.

    The one place the ``L_m ≤ λ ≤ U_m`` decision is spelled out — the CA
    scan's C-Star linear fallback, the forced one-shot resolution, the
    pipelined variant's unseen handling, and the verifier's pre-A* settle
    all call this (a grep guard pins it).  Returns ``(decision, L_m)``
    where the decision is ``"pruned"`` (``L_m > τ``), ``"match"``
    (``U_m ≤ τ``) or ``"candidate"``; callers use ``L_m`` to schedule the
    surviving candidates cheapest-first.  *stats*, when given, gets the
    mapping-computation and prune counters the callers previously kept by
    hand.
    """
    l_m, u_m, _mu = full_bounds(query, graph, backend=backend)
    if stats is not None:
        stats.full_mapping_computations += 1
    if l_m > tau:
        if stats is not None:
            stats.count_prune("l_m")
        return "pruned", l_m
    return ("match" if u_m <= tau else "candidate"), l_m


@dataclass
class SeenGraph:
    """Accumulator for one data graph encountered during the CA scan."""

    gid: object
    order: int
    max_degree: int
    small_side: bool
    #: list index -> minimum SED of this graph's entries seen under it
    chi: Dict[int, int] = field(default_factory=dict)
    #: sid -> occurrences of that star in the graph (from posting freq)
    star_freq: Dict[int, int] = field(default_factory=dict)
    #: (list index, sid, sed) for every distinct (list, sid) pair seen
    seen_pairs: List[Tuple[int, int, int]] = field(default_factory=list)
    _pair_keys: set = field(default_factory=set)
    #: filtering outcome once decided: "pruned", "candidate" or "match"
    resolution: Optional[str] = None
    pruned_by: Optional[str] = None

    def observe(self, list_index: int, sid: int, sed: int, freq: int) -> None:
        """Fold one scanned entry into the accumulator."""
        best = self.chi.get(list_index)
        if best is None or sed < best:
            self.chi[list_index] = sed
        if sid not in self.star_freq:
            self.star_freq[sid] = freq
        key = (list_index, sid)
        if key not in self._pair_keys:
            self._pair_keys.add(key)
            self.seen_pairs.append((list_index, sid, sed))

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def zeta(self) -> float:
        """``ζ(q, g)``: overall score from the seen lists only."""
        return float(sum(self.chi.values()))

    def aggregation_lower_bound(
        self,
        list_bounds: Sequence[float],
        epsilons: Sequence[int],
        *,
        use_epsilon_cap: Optional[bool] = None,
    ) -> float:
        """``L_µ(q, g)``: ζ plus floors for the lists g has not shown up in.

        ``list_bounds[j]`` must be the current SED floor of list j on this
        graph's size side (last seen SED, or the exhausted floor);
        ``epsilons[j]`` is ``λ(s_j, ε)``.

        The ε cap on missing-list floors exists because a *smaller* graph
        may align some query stars with ε; when ``|g| > |q|`` every query
        star maps to a real star of g, so the cap would only weaken the
        bound and is skipped (Appendix B's case split).  Defaults to the
        graph's own size side.
        """
        if use_epsilon_cap is None:
            use_epsilon_cap = self.small_side
        total = float(sum(self.chi.values()))
        for j, floor in enumerate(list_bounds):
            if j not in self.chi:
                if use_epsilon_cap:
                    total += min(floor, float(epsilons[j]))
                else:
                    total += floor
        return total

    def aggregation_upper_bound(self, query_order: int, query_max_degree: int) -> float:
        """``U_µ(q, g)`` from a greedy valid partial alignment.

        Validity: each query star occurrence (list index) used at most once
        and each seen star of g used at most its multiplicity, so the
        partial alignment extends to a real bijection.
        """
        chi_bar = 1 + 2 * max(query_max_degree, self.max_degree)
        pairs = sorted(self.seen_pairs, key=lambda p: p[2])
        remaining = dict(self.star_freq)
        used_lists: set = set()
        matched_cost = 0
        matched = 0
        for list_index, sid, sed in pairs:
            if list_index in used_lists or remaining.get(sid, 0) <= 0:
                continue
            used_lists.add(list_index)
            remaining[sid] -= 1
            matched_cost += sed
            matched += 1
        return matched_cost + chi_bar * (max(query_order, self.order) - matched)

    def seen_star_multiset(self) -> Dict[int, int]:
        """``S'(g)``: the star occurrences revealed so far (sid → count)."""
        return dict(self.star_freq)
