#!/usr/bin/env python3
"""Index maintenance: the seven update kinds of Section IV-C, live.

Shows that the two-level index follows in-place graph mutations (edge and
vertex insertions/deletions, relabels) without rebuilds, and that queries
reflect the updates immediately.

Run with::

    python examples/dynamic_maintenance.py
"""

from repro import Graph, SegosIndex
from repro.datasets import aids_like


def main() -> None:
    data = aids_like(100, seed=21, mean_order=10.0)
    db = SegosIndex(data.graphs, k=20, h=100)
    print(f"built index over {len(db)} graphs; {db.index_size()} index entries")

    # 1) insert a brand-new graph
    probe = Graph(["C00", "C01", "C00"], [(0, 1), (1, 2)])
    db.add("probe", probe)
    hit = db.range_query(probe, tau=0, verify="exact")
    print(f"inserted 'probe'; self-query matches: {sorted(hit.matches)}")

    # 3-7) mutate it in place, step by step
    db.add_vertex("probe", 3, "C02")
    db.add_edge("probe", 2, 3)
    db.relabel_vertex("probe", 0, "C05")
    db.remove_edge("probe", 0, 1)
    print("applied vertex insert, edge insert, relabel, edge delete")

    # The index must equal what a from-scratch rebuild would produce.
    db.check_consistency()
    print("index consistency check passed after updates")

    # Query with the *current* shape of the probe graph.
    current = db.graph("probe").copy()
    hit = db.range_query(current, tau=0, verify="exact")
    assert "probe" in hit.matches
    print(f"self-query after mutations still matches: {sorted(hit.matches)}")

    # 2) delete it again
    db.remove("probe")
    hit = db.range_query(current, tau=0, verify="exact")
    print(f"after removal, matches: {sorted(hit.matches)} (probe gone)")
    print(f"final index size: {db.index_size()} entries")


if __name__ == "__main__":
    main()
