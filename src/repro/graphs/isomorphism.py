"""Labelled-graph isomorphism testing (VF2-style backtracking).

Graph isomorphism search (Section II-B) is the exact-matching cousin of
this paper's similarity search; the library exposes a direct test both as a
user utility (dedup, result post-processing) and because ``λ(g1, g2) = 0``
iff the graphs are isomorphic — which gives the test suite a second,
independently implemented oracle for the GED = 0 case.

The matcher is a classic VF2-style backtracking search with the standard
feasibility cuts (label equality, degree equality, consistency of edges to
already-mapped vertices) plus cheap whole-graph invariant pre-checks.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from .model import Graph


def _invariants_differ(g1: Graph, g2: Graph) -> bool:
    if g1.order != g2.order or g1.size != g2.size:
        return True
    if g1.label_multiset() != g2.label_multiset():
        return True
    degrees1 = sorted(g1.degree(v) for v in g1.vertices())
    degrees2 = sorted(g2.degree(v) for v in g2.vertices())
    if degrees1 != degrees2:
        return True
    # (label, degree) profile — finer than the two separately.
    profile1 = Counter((g1.label(v), g1.degree(v)) for v in g1.vertices())
    profile2 = Counter((g2.label(v), g2.degree(v)) for v in g2.vertices())
    return profile1 != profile2


def find_isomorphism(g1: Graph, g2: Graph) -> Optional[Dict[int, int]]:
    """Return a label- and edge-preserving bijection, or None.

    Examples
    --------
    >>> a = Graph(["x", "y"], [(0, 1)])
    >>> b = Graph({5: "y", 9: "x"}, [(5, 9)])
    >>> sorted(find_isomorphism(a, b).items())
    [(0, 9), (1, 5)]
    """
    if _invariants_differ(g1, g2):
        return None
    if g1.order == 0:
        return {}

    # Order g1's vertices connectivity-first: each vertex after the first
    # should touch the already-mapped prefix when possible, maximising the
    # power of the edge-consistency cut.
    order: List[int] = []
    placed = set()
    remaining = sorted(g1.vertices(), key=lambda v: -g1.degree(v))
    while remaining:
        pick = None
        for v in remaining:
            if any(n in placed for n in g1.neighbors(v)):
                pick = v
                break
        if pick is None:
            pick = remaining[0]
        order.append(pick)
        placed.add(pick)
        remaining.remove(pick)

    g2_by_profile: Dict[tuple, List[int]] = {}
    for v in g2.vertices():
        g2_by_profile.setdefault((g2.label(v), g2.degree(v)), []).append(v)

    mapping: Dict[int, int] = {}
    used = set()

    def backtrack(depth: int) -> bool:
        if depth == len(order):
            return True
        v1 = order[depth]
        profile = (g1.label(v1), g1.degree(v1))
        for v2 in g2_by_profile.get(profile, ()):
            if v2 in used:
                continue
            consistent = True
            for n1 in g1.neighbors(v1):
                if n1 in mapping and not g2.has_edge(v2, mapping[n1]):
                    consistent = False
                    break
            if consistent:
                # Reverse direction: mapped neighbours of v2 must be
                # neighbours of v1 in g1 (edge counts already match, but
                # this prunes earlier).
                for n2 in g2.neighbors(v2):
                    for key, val in mapping.items():
                        if val == n2 and not g1.has_edge(v1, key):
                            consistent = False
                            break
                    if not consistent:
                        break
            if not consistent:
                continue
            mapping[v1] = v2
            used.add(v2)
            if backtrack(depth + 1):
                return True
            del mapping[v1]
            used.discard(v2)
        return False

    return dict(mapping) if backtrack(0) else None


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """True iff the graphs are isomorphic (labels and edges preserved)."""
    return find_isomorphism(g1, g2) is not None
