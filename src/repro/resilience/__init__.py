"""Resilience layer: fault injection, supervised pools, degradation telemetry.

Production filter-and-verify engines must degrade *loudly* and salvage
partial work.  This package provides the three pieces every parallel path
in :mod:`repro` is wired through:

* :mod:`repro.resilience.faults` — a deterministic fault-injection
  registry (``REPRO_FAULT_PLAN`` / ``EngineConfig.fault_plan``) so every
  degradation branch is reachable from a test;
* :mod:`repro.resilience.pool` — the supervised process-pool executor
  (per-task timeout, bounded retry with backoff, circuit breaker,
  per-task salvage) that owns the package's only ``ProcessPoolExecutor``;
* :mod:`repro.resilience.telemetry` — :class:`DegradationEvent` records
  appended to :attr:`~repro.core.stats.QueryStats.degradations`.
"""

from .faults import (
    DEFAULT_HANG_SECONDS,
    EMPTY_PLAN,
    INJECTION_POINTS,
    FaultInjected,
    FaultPlan,
    FaultRule,
    random_spec,
    resolve_fault_plan,
)
from .pool import PoolOutcome, PoolTask, ResiliencePolicy, run_supervised
from .telemetry import DegradationEvent

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DegradationEvent",
    "EMPTY_PLAN",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "INJECTION_POINTS",
    "PoolOutcome",
    "PoolTask",
    "ResiliencePolicy",
    "random_spec",
    "resolve_fault_plan",
    "run_supervised",
]
