"""Tests for the SQLite relational index backend (Section IV-C's option)."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    GraphAlreadyIndexed,
    GraphNotIndexed,
    IndexCorruptionError,
)
from repro.core.engine import SegosIndex
from repro.core.index import GraphMeta, TwoLevelIndex
from repro.core.sqlite_index import SqliteTwoLevelIndex
from repro.core.ta_search import brute_force_top_k, top_k_stars
from repro.datasets import aids_like, sample_queries
from repro.graphs.model import Graph
from repro.graphs.star import Star, decompose, star_at


def build_both(graphs):
    mem = TwoLevelIndex()
    sql = SqliteTwoLevelIndex()
    for gid, g in graphs.items():
        mem.add_graph(gid, g, decompose(g))
        sql.add_graph(gid, g, decompose(g))
    return mem, sql


@pytest.fixture(scope="module")
def corpus():
    data = aids_like(25, seed=123, mean_order=7, stddev=2)
    return {str(gid): g for gid, g in data.graphs.items()}


class TestStructuralEquivalence:
    def test_sizes_and_counts(self, corpus):
        mem, sql = build_both(corpus)
        assert len(mem) == len(sql)
        assert len(mem.catalog) == len(sql.catalog)
        assert mem.size_estimate() == sql.size_estimate()
        assert mem.database_max_degree() == sql.database_max_degree()

    def test_upper_postings_match(self, paper_g1, paper_g2):
        mem, sql = build_both({"g1": paper_g1, "g2": paper_g2})
        for star in decompose(paper_g1) + decompose(paper_g2):
            mem_sid = mem.catalog.sid(star)
            sql_sid = sql.catalog.sid(star)
            mem_postings = [(e.gid, e.freq, e.order) for e in mem.upper.postings(mem_sid)]
            sql_postings = [(e.gid, e.freq, e.order) for e in sql.upper.postings(sql_sid)]
            assert mem_postings == sql_postings

    def test_lower_lists_match(self, paper_g1, paper_g2):
        mem, sql = build_both({"g1": paper_g1, "g2": paper_g2})
        sid_map = {
            mem.catalog.sid(mem.catalog.star(s)): s for s in mem.catalog.live_sids()
        }
        for label in ("a", "b", "c", "d"):
            mem_list = [
                (mem.catalog.star(e.sid).signature, e.freq, e.leaf_size)
                for e in mem.lower.label_list(label)
            ]
            sql_list = [
                (sql.catalog.star(e.sid).signature, e.freq, e.leaf_size)
                for e in sql.lower.label_list(label)
            ]
            assert mem_list == sql_list

    def test_size_list_split_matches(self, paper_g1, paper_g2):
        mem, sql = build_both({"g1": paper_g1, "g2": paper_g2})
        for boundary in (0, 2, 4, 99):
            mem_low, mem_high = mem.lower.split_size_list(boundary)
            sql_low, sql_high = sql.lower.split_size_list(boundary)
            assert [e.leaf_size for e in mem_low] == [e.leaf_size for e in sql_low]
            assert [e.leaf_size for e in mem_high] == [e.leaf_size for e in sql_high]

    def test_ta_search_identical_results(self, corpus):
        mem, sql = build_both(corpus)
        query = Star("C00", ["C00", "C01"])
        mem_result = top_k_stars(mem, query, 5)
        sql_result = top_k_stars(sql, query, 5)
        assert [d for _, d in mem_result.entries] == [
            d for _, d in sql_result.entries
        ]


class TestUpdates:
    def test_duplicate_graph_rejected(self, paper_g1):
        sql = SqliteTwoLevelIndex()
        sql.add_graph("g", paper_g1, decompose(paper_g1))
        with pytest.raises(GraphAlreadyIndexed):
            sql.add_graph("g", paper_g1, decompose(paper_g1))

    def test_remove_unknown_rejected(self):
        with pytest.raises(GraphNotIndexed):
            SqliteTwoLevelIndex().remove_graph("nope")

    def test_meta_unknown_rejected(self):
        with pytest.raises(GraphNotIndexed):
            SqliteTwoLevelIndex().meta("nope")

    def test_remove_graph_clears_postings(self, paper_g1, paper_g2):
        sql = SqliteTwoLevelIndex()
        sql.add_graph("g1", paper_g1, decompose(paper_g1))
        sql.add_graph("g2", paper_g2, decompose(paper_g2))
        sql.remove_graph("g1")
        sql.check_consistency()
        assert sql.catalog.sid(Star("a", "bbcc")) is None  # g1-only star died
        assert sql.catalog.sid(Star("c", "ab")) is not None  # shared survives
        sql.remove_graph("g2")
        assert sql.size_estimate() == 0

    def test_star_delta_matches_memory_backend(self, paper_g1):
        mem, sql = build_both({"g": paper_g1})
        mutated = paper_g1.copy()
        touched = (1, 3)
        removed = [star_at(mutated, v) for v in touched]
        mutated.add_edge(1, 3)
        added = [star_at(mutated, v) for v in touched]
        meta = GraphMeta(mutated.order, mutated.max_degree())
        mem.apply_star_delta("g", removed, added, meta)
        sql.apply_star_delta("g", removed, added, meta)
        sql.check_consistency()
        mem_sig = sorted(
            mem.catalog.star(sid).signature
            for sid, cnt in mem.graph_star_counts("g").items()
            for _ in range(cnt)
        )
        sql_sig = sorted(
            sql.catalog.star(sid).signature
            for sid, cnt in sql.graph_star_counts("g").items()
            for _ in range(cnt)
        )
        assert mem_sig == sql_sig

    def test_delta_with_unknown_star_raises(self, paper_g1):
        sql = SqliteTwoLevelIndex()
        sql.add_graph("g", paper_g1, decompose(paper_g1))
        with pytest.raises(IndexCorruptionError):
            sql.apply_star_delta("g", [Star("zz", "zz")], [], GraphMeta(5, 4))

    def test_comma_label_rejected(self):
        sql = SqliteTwoLevelIndex()
        graph = Graph(["a,b"])
        with pytest.raises(ValueError):
            sql.add_graph("g", graph, decompose(graph))


class TestEngineOnSqlite:
    def test_equivalent_query_answers(self, corpus):
        mem = SegosIndex(corpus, k=10, h=30)
        sql = SegosIndex(corpus, k=10, h=30, backend="sqlite")
        rng = random.Random(3)
        query = rng.choice(list(corpus.values())).copy()
        for tau in (0, 1, 2):
            a = mem.range_query(query, tau=tau, verify="exact")
            b = sql.range_query(query, tau=tau, verify="exact")
            assert a.matches == b.matches

    def test_updates_via_engine(self, corpus):
        sql = SegosIndex(corpus, backend="sqlite")
        gid = next(iter(corpus))
        vertex = next(iter(sql.graph(gid).vertices()))
        sql.relabel_vertex(gid, vertex, "C62")
        sql.check_consistency()
        probe = sql.graph(gid).copy()
        assert gid in sql.range_query(probe, tau=0, verify="exact").matches

    def test_non_string_gid_rejected(self, paper_g1):
        sql = SegosIndex(backend="sqlite")
        with pytest.raises(TypeError):
            sql.add(42, paper_g1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SegosIndex(backend="csv")

    def test_on_disk_database(self, corpus, tmp_path):
        path = tmp_path / "index.db"
        sql = SegosIndex(corpus, backend="sqlite", sqlite_path=str(path))
        assert path.exists()
        assert len(sql) == len(corpus)
