"""Stateful property test: random update storms keep the index rebuild-equal.

A hypothesis RuleBasedStateMachine drives the seven update kinds of
Section IV-C in arbitrary interleavings; after every step the live index
must match one rebuilt from scratch (star multisets, postings, size
metadata) and must answer a fixed probe query identically.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core.engine import SegosIndex
from repro.core.index import TwoLevelIndex
from repro.graphs.model import Graph
from repro.graphs.star import decompose

LABELS = ["a", "b", "c"]


class IndexMaintenanceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.engine = SegosIndex()
        self.engine.add("seed", Graph(["a", "b"], [(0, 1)]))
        self.next_gid = 0

    # ------------------------------------------------------------------
    # Update rules (all guarded to stay within the model's validity rules)
    # ------------------------------------------------------------------
    @rule(data=st.data())
    def insert_graph(self, data):
        if len(self.engine) >= 6:
            return
        order = data.draw(st.integers(min_value=1, max_value=4), label="order")
        labels = [
            data.draw(st.sampled_from(LABELS), label=f"lbl{i}") for i in range(order)
        ]
        g = Graph(labels)
        for u in range(order):
            for v in range(u + 1, order):
                if data.draw(st.booleans(), label=f"e{u},{v}"):
                    g.add_edge(u, v)
        self.engine.add(f"g{self.next_gid}", g)
        self.next_gid += 1

    @rule(data=st.data())
    def delete_graph(self, data):
        gids = [g for g in self.engine.gids() if g != "seed"]
        if not gids:
            return
        self.engine.remove(data.draw(st.sampled_from(gids), label="victim"))

    def _mutable_gids(self):
        # The probe invariant relies on the seed graph staying intact.
        return sorted(str(g) for g in self.engine.gids() if g != "seed")

    @rule(data=st.data())
    def toggle_edge(self, data):
        gids = self._mutable_gids()
        if not gids:
            return
        gid = data.draw(st.sampled_from(gids), label="gid")
        graph = self.engine.graph(gid)
        vertices = sorted(graph.vertices())
        if len(vertices) < 2:
            return
        u = data.draw(st.sampled_from(vertices), label="u")
        v = data.draw(st.sampled_from([x for x in vertices if x != u]), label="v")
        if graph.has_edge(u, v):
            self.engine.remove_edge(gid, u, v)
        else:
            self.engine.add_edge(gid, u, v)

    @rule(data=st.data())
    def add_vertex(self, data):
        gids = self._mutable_gids()
        if not gids:
            return
        gid = data.draw(st.sampled_from(gids), label="gid")
        graph = self.engine.graph(gid)
        if graph.order >= 6:
            return
        new_id = max(graph.vertices()) + 1
        self.engine.add_vertex(gid, new_id, data.draw(st.sampled_from(LABELS)))

    @rule(data=st.data())
    def remove_isolated_vertex(self, data):
        gids = self._mutable_gids()
        if not gids:
            return
        gid = data.draw(st.sampled_from(gids), label="gid")
        graph = self.engine.graph(gid)
        isolated = sorted(v for v in graph.vertices() if graph.degree(v) == 0)
        if not isolated or graph.order <= 1:
            return
        self.engine.remove_vertex(gid, data.draw(st.sampled_from(isolated)))

    @rule(data=st.data())
    def relabel(self, data):
        gids = self._mutable_gids()
        if not gids:
            return
        gid = data.draw(st.sampled_from(gids), label="gid")
        graph = self.engine.graph(gid)
        vertex = data.draw(st.sampled_from(sorted(graph.vertices())), label="v")
        self.engine.relabel_vertex(gid, vertex, data.draw(st.sampled_from(LABELS)))

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def index_matches_rebuild(self):
        self.engine.check_consistency()
        fresh = TwoLevelIndex()
        for gid in self.engine.gids():
            g = self.engine.graph(gid)
            fresh.add_graph(gid, g, decompose(g))
        for gid in self.engine.gids():
            live = Counter(
                self.engine.index.catalog.star(sid).signature
                for sid, cnt in self.engine.index.graph_star_counts(gid).items()
                for _ in range(cnt)
            )
            expected = Counter(
                fresh.catalog.star(sid).signature
                for sid, cnt in fresh.graph_star_counts(gid).items()
                for _ in range(cnt)
            )
            assert live == expected
        assert (
            self.engine.index.database_max_degree() == fresh.database_max_degree()
        )
        assert self.engine.index.size_estimate() == fresh.size_estimate()

    @invariant()
    def probe_query_sound(self):
        probe = Graph(["a", "b"], [(0, 1)])
        result = self.engine.range_query(probe, tau=0, verify="exact")
        # The seed graph is identical to the probe and must always match.
        assert "seed" in result.matches


IndexMaintenanceMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestIndexMaintenance = IndexMaintenanceMachine.TestCase
