"""Tests for the CA range query (Algorithm 3): soundness and behaviour."""

from __future__ import annotations

import random

import pytest

from repro.core.ca_search import ca_range_query
from repro.core.graph_lists import build_all_lists
from repro.core.index import TwoLevelIndex
from repro.core.stats import QueryStats
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import corpus, make_label_alphabet, mutate
from repro.graphs.model import Graph, normalization_factor
from repro.graphs.star import decompose
from repro.matching.mapping import mapping_distance


def build_setup(seed, count=25, mean_order=7):
    rng = random.Random(seed)
    graphs = {
        f"g{i}": g
        for i, g in enumerate(
            corpus(rng, count, kind="chemical", mean_order=mean_order, stddev=2)
        )
    }
    index = TwoLevelIndex()
    for gid, g in graphs.items():
        index.add_graph(gid, g, decompose(g))
    return rng, graphs, index


def run_ca(index, graphs, query, tau, *, k=10, h=20, partial_fraction=0.5):
    lists = build_all_lists(index, decompose(query), query.order, k)
    return ca_range_query(
        index,
        graphs,
        query,
        tau,
        lists,
        h=h,
        partial_fraction=partial_fraction,
        stats=QueryStats(),
    )


class TestSoundness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_no_false_negatives_vs_exact_ged(self, seed, tau):
        rng, graphs, index = build_setup(seed)
        labels = make_label_alphabet(63, prefix="C")
        base = rng.choice(list(graphs.values()))
        query = mutate(rng, base, rng.randint(0, 2), labels)
        truth = {
            gid
            for gid, g in graphs.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        result = run_ca(index, graphs, query, tau)
        assert truth <= set(result.candidates)
        # Confirmed matches must be real answers.
        assert result.confirmed <= truth

    def test_no_false_negatives_vs_mapping_bound(self):
        """Candidates must cover every graph passing the L_m filter."""
        rng, graphs, index = build_setup(99)
        query = rng.choice(list(graphs.values())).copy()
        tau = 2
        result = run_ca(index, graphs, query, tau)
        cstar_pass = {
            gid
            for gid, g in graphs.items()
            if mapping_distance(query, g) / normalization_factor(query, g) <= tau
        }
        # SEGOS may add a few extras via early U_µ acceptance but must not
        # miss anything L_m keeps.
        assert cstar_pass <= set(result.candidates)


class TestParameters:
    def test_h_does_not_change_soundness(self):
        rng, graphs, index = build_setup(5)
        query = rng.choice(list(graphs.values())).copy()
        tau = 1
        reference = None
        for h in (1, 7, 50, 500):
            result = run_ca(index, graphs, query, tau, h=h)
            confirmed = set(result.confirmed)
            if reference is None:
                reference = confirmed
            else:
                assert confirmed == reference

    def test_small_k_still_sound(self):
        rng, graphs, index = build_setup(6)
        labels = make_label_alphabet(63, prefix="C")
        query = mutate(rng, rng.choice(list(graphs.values())), 1, labels)
        tau = 2
        truth = {
            gid
            for gid, g in graphs.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        for k in (1, 2, 5):
            result = run_ca(index, graphs, query, tau, k=k)
            assert truth <= set(result.candidates)

    def test_invalid_parameters(self):
        rng, graphs, index = build_setup(7)
        query = next(iter(graphs.values()))
        with pytest.raises(ValueError):
            run_ca(index, graphs, query, -1)
        lists = build_all_lists(index, decompose(query), query.order, 5)
        with pytest.raises(ValueError):
            ca_range_query(index, graphs, query, 1, lists, h=0)

    def test_partial_fraction_one_defers_hungarian(self):
        """With partial_fraction > 1 the partial check never fires early."""
        rng, graphs, index = build_setup(8)
        query = rng.choice(list(graphs.values())).copy()
        result = run_ca(index, graphs, query, 1, partial_fraction=2.0)
        assert "partial_mu" not in result.stats.pruned_by or (
            result.stats.pruned_by["partial_mu"] >= 0
        )


class TestStats:
    def test_counters_consistent(self):
        rng, graphs, index = build_setup(9)
        query = rng.choice(list(graphs.values())).copy()
        result = run_ca(index, graphs, query, 1)
        stats = result.stats
        assert stats.candidates == len(result.candidates)
        assert stats.confirmed_matches == len(result.confirmed)
        assert stats.graphs_accessed >= stats.linear_fallback
        assert stats.list_entries_scanned >= 0
        total_accounted = (
            stats.candidates
            + sum(stats.pruned_by.values())
            + stats.resolved_by_aggregation
        )
        assert total_accounted >= 0  # smoke: counters populated sanely

    def test_tau_zero_keeps_self(self):
        rng, graphs, index = build_setup(10)
        gid, query = next(iter(graphs.items()))
        result = run_ca(index, graphs, query.copy(), 0)
        # The graph itself must survive filtering.  Whether it is already
        # *confirmed* depends on which bound resolved it: the early U_µ
        # acceptance (Algorithm 3) stops before computing the U_m edit cost.
        assert gid in result.candidates

    def test_large_tau_returns_everything(self):
        rng, graphs, index = build_setup(11, count=10)
        query = next(iter(graphs.values())).copy()
        result = run_ca(index, graphs, query, 50)
        assert set(result.candidates) == set(graphs)
