"""Ablation: what does the two-level index buy over a one-level design?

SEGOS's lower level exists so the TA stage can find similar sub-units
without scanning the whole star catalog.  This bench compares, per query
star, the TA search's sorted accesses against the catalog size (what a
one-level index would scan), and the end-to-end effect of replacing the
TA result with an exhaustive catalog scan (k = |catalog|).
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Series, format_table
from repro.core.engine import SegosIndex
from repro.core.ta_search import brute_force_top_k, top_k_stars
from repro.datasets import sample_queries
from repro.graphs.star import decompose


def test_ablation_two_level_index(benchmark, aids_dataset, grid, report):
    data = aids_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=93)
    engine = SegosIndex(data.graphs, k=grid.default_k, h=grid.default_h)
    catalog_size = engine.distinct_star_count()

    ta_access = Series("TA sorted accesses")
    ta_time = Series("TA time (ms)")
    brute_time = Series("catalog scan time (ms)")
    for k in grid.k_values:
        accesses = 0
        elapsed = brute = 0.0
        stars = 0
        for query in queries:
            for star in decompose(query):
                stars += 1
                started = time.perf_counter()
                result = top_k_stars(engine.index, star, k)
                elapsed += time.perf_counter() - started
                accesses += result.accesses
                started = time.perf_counter()
                brute_force_top_k(engine.index, star, k)
                brute += time.perf_counter() - started
        ta_access.add(k, accesses / stars)
        ta_time.add(k, 1000 * elapsed / stars)
        brute_time.add(k, 1000 * brute / stars)

    report(
        "ablation_two_level_index",
        format_table(
            f"Ablation: TA over the lower level vs full catalog scan "
            f"({catalog_size} stars)",
            "k",
            list(grid.k_values),
            [ta_access, ta_time, brute_time],
        ),
    )
    benchmark.pedantic(
        lambda: top_k_stars(
            engine.index, decompose(queries[0])[0], grid.default_k
        ),
        rounds=1,
        iterations=1,
    )
    # The TA search at small k must access far fewer entries than the
    # catalog holds.
    assert ta_access.points[grid.k_values[0]] < catalog_size
