"""Unit tests for the pipeline's internal machinery (_PipeSide etc.)."""

from __future__ import annotations

import pytest

from repro.core.graph_lists import GraphListEntry
from repro.core.pipeline import _PipeSide


def entry(gid, sed, order=3, sid=0, freq=1):
    return GraphListEntry(gid=gid, order=order, sed=sed, sid=sid, freq=freq)


class TestPipeSide:
    def test_unattached_list_bound_is_zero(self):
        side = _PipeSide(2, small=True)
        assert side.list_bound(0) == 0.0
        assert side.omega() == 0.0

    def test_not_done_until_ta_finished(self):
        side = _PipeSide(2, small=True)
        side.attach(0, [], 5.0)
        assert not side.done(ta_finished=False)
        assert side.done(ta_finished=True)

    def test_next_entry_advances_and_tracks_sed(self):
        side = _PipeSide(1, small=True)
        side.attach(0, [entry("g1", 1), entry("g2", 4)], 9.0)
        first = side.next_entry(0)
        assert first.gid == "g1"
        assert side.list_bound(0) == 1.0
        second = side.next_entry(0)
        assert second.gid == "g2"
        # Consuming the final entry exhausts the list: the bound becomes
        # the kth/ε floor, which is what unseen graphs are measured by.
        assert side.list_bound(0) == 9.0
        assert side.next_entry(0) is None

    def test_exhausted_uses_floor(self):
        side = _PipeSide(1, small=True)
        side.attach(0, [entry("g1", 1)], 7.5)
        side.next_entry(0)
        assert side.exhausted(0)
        assert side.list_bound(0) == 7.5
        assert side.omega() == 7.5

    def test_halted_side_is_done(self):
        side = _PipeSide(3, small=False)
        side.halted = True
        assert side.done(ta_finished=False)

    def test_omega_sums_mixed_states(self):
        side = _PipeSide(3, small=True)
        side.attach(0, [entry("g", 2), entry("h", 5)], 6.0)
        side.attach(1, [], 4.0)
        side.next_entry(0)
        # list 0: last seen 2 (one entry left); list 1: exhausted floor 4;
        # list 2: unattached contributes the only sound value, 0.
        assert side.omega() == 2.0 + 4.0 + 0.0

    def test_empty_attached_list_is_exhausted(self):
        side = _PipeSide(1, small=True)
        side.attach(0, [], 3.0)
        assert side.exhausted(0)
        assert side.next_entry(0) is None
