"""Deterministic fault injection: named points, scriptable plans.

A production filter-and-verify engine degrades through a handful of
branches — an unpicklable engine, a pool that will not spawn, a worker
that crashes or hangs, a chunk whose result never arrives.  Before this
module, those branches were reachable only by monkeypatching internals or
by getting unlucky in production.  Now every one of them is a **named
injection point** that a test (or a chaos CI leg) can trigger on demand:

========================  ====================================================
point                     what firing it simulates
========================  ====================================================
``pickle.engine``         the engine/payload fails to pickle for shipping
``pool.spawn``            the process pool cannot be created (``OSError``)
``worker.crash``          the worker process dies mid-task (``os._exit``)
``worker.hang``           the worker stops responding (sleeps ``seconds``)
``chunk.result``          the task computes but its result delivery fails
``io.write``              the process dies mid-write (``offset=`` bytes land)
``io.fsync``              the process dies just before an fsync barrier
``io.replace``            the process dies just before an ``os.replace``
``io.truncate``           the process dies just before an ``ftruncate``
========================  ====================================================

The four ``io.*`` points are the crash-consistency half of the registry:
they fire inside :mod:`repro.perf.durability`'s guarded I/O primitives and
kill the process with ``SIGKILL`` at exactly that syscall boundary —
``io.write`` first persists the leading ``offset=`` bytes of the pending
buffer, simulating a torn write.  Each persistence call site carries a
distinct ``stage=`` label (``delta.record``, ``delta.header``,
``text.tmp``, ``text.replace``, ``sidecar.tmp``, ``sidecar.replace``,
``sidecar.dir``, ``text.dir``, ``scrub.header``, ``scrub.truncate``), so a
plan can stop a writer between any two durability steps deterministically.
The kill-torture harness (``tests/test_crash_torture.py``) SIGKILLs a
writer subprocess at every one of these points and asserts the recovery
invariant: reopening always yields the old or the new consistent state.

Plans are written as a spec string — ``EngineConfig.fault_plan`` or the
``REPRO_FAULT_PLAN`` environment variable — of ``;``-separated rules::

    worker.crash:chunk=1:times=2
    pool.spawn:times=1;chunk.result:stage=verify

Rule keys: ``chunk=``/``task=`` (only fire for that task index), ``times=``
(how many firings before the rule burns out; default 1, ``inf`` = always),
``stage=`` (only fire for that pool stage, e.g. ``batch`` or ``verify``),
``seconds=`` (hang duration for ``worker.hang``).  Unknown points or keys
raise ``ValueError`` — a typo in a fault plan fails fast at
:class:`~repro.config.EngineConfig` construction, not silently never-fires.

Countdowns are **per operation**: each top-level batch or verification call
parses its own plan, so a ``times=1`` rule fires exactly once per call and
every run of the same call is identical — deterministic by construction.
An empty plan is falsy and its :meth:`FaultPlan.fire` returns immediately,
so the registry costs nothing when no faults are scripted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import ENV_FAULT_PLAN, env_str
from ..errors import ReproError

#: Injection points of the supervised-pool paths (the original registry).
POOL_POINTS = (
    "pickle.engine",
    "pool.spawn",
    "worker.crash",
    "worker.hang",
    "chunk.result",
)

#: Injection points of the durable-persistence write paths: firing one
#: SIGKILLs the process at that syscall boundary (see repro.perf.durability).
IO_POINTS = (
    "io.write",
    "io.fsync",
    "io.replace",
    "io.truncate",
)

#: Every injection point a plan may name.
INJECTION_POINTS = POOL_POINTS + IO_POINTS

#: Injection points that fire *inside* a worker process (the supervisor
#: attaches them to the task payload as a directive).
WORKER_POINTS = ("worker.crash", "worker.hang", "chunk.result")

#: Default sleep for ``worker.hang`` when the rule gives no ``seconds=``;
#: long enough to trip any sane ``task_timeout``, short enough that a
#: leaked worker self-heals within a minute.
DEFAULT_HANG_SECONDS = 60.0


class FaultInjected(ReproError):
    """Raised by a worker when a scripted ``chunk.result`` fault fires."""


@dataclass
class FaultRule:
    """One rule of a fault plan: a point plus its firing constraints.

    ``times`` counts down on every firing; ``None`` means unlimited.
    """

    point: str
    task: Optional[int] = None
    stage: Optional[str] = None
    times: Optional[int] = 1
    seconds: float = DEFAULT_HANG_SECONDS
    #: For ``io.write``: bytes of the pending buffer persisted before the
    #: simulated crash (0 = nothing lands, the pure ordering case).
    offset: int = 0

    def matches(self, point: str, task: Optional[int], stage: Optional[str]) -> bool:
        if self.point != point:
            return False
        if self.times is not None and self.times <= 0:
            return False
        if self.task is not None and task != self.task:
            return False
        if self.stage is not None and stage != self.stage:
            return False
        return True

    def consume(self) -> None:
        if self.times is not None:
            self.times -= 1


class FaultPlan:
    """A parsed, stateful fault plan (rule countdowns burn as they fire)."""

    __slots__ = ("rules", "spec")

    def __init__(self, rules: Tuple[FaultRule, ...] = (), spec: str = "") -> None:
        self.rules = list(rules)
        self.spec = spec

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec!r})"

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Parse a spec string into a fresh plan (full countdowns).

        ``None`` / empty / whitespace specs yield an empty, falsy plan.
        Bad points or keys raise ``ValueError``.
        """
        if not spec or not spec.strip():
            return cls()
        rules = []
        for rule_spec in spec.split(";"):
            rule_spec = rule_spec.strip()
            if not rule_spec:
                continue
            tokens = rule_spec.split(":")
            point = tokens[0].strip()
            if point not in INJECTION_POINTS:
                raise ValueError(
                    f"unknown fault injection point {point!r} "
                    f"(known: {', '.join(INJECTION_POINTS)})"
                )
            rule = FaultRule(point=point)
            for token in tokens[1:]:
                key, sep, value = token.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep:
                    raise ValueError(f"malformed fault rule token {token!r}")
                if key in ("chunk", "task"):
                    rule.task = int(value)
                elif key == "times":
                    rule.times = None if value == "inf" else int(value)
                elif key == "stage":
                    rule.stage = value
                elif key == "seconds":
                    rule.seconds = float(value)
                elif key == "offset":
                    rule.offset = int(value)
                    if rule.offset < 0:
                        raise ValueError("offset must be >= 0")
                else:
                    raise ValueError(f"unknown fault rule key {key!r} in {rule_spec!r}")
            rules.append(rule)
        return cls(tuple(rules), spec=spec)

    def fire(
        self,
        point: str,
        *,
        task: Optional[int] = None,
        stage: Optional[str] = None,
    ) -> Optional[FaultRule]:
        """Consume and return the first live rule matching, else ``None``."""
        if not self.rules:  # the hot, faults-disabled path: one truthiness test
            return None
        for rule in self.rules:
            if rule.matches(point, task, stage):
                rule.consume()
                return rule
        return None


#: The shared no-op plan (never fires; do not mutate).
EMPTY_PLAN = FaultPlan()


def resolve_fault_plan(spec=None) -> FaultPlan:
    """Resolve a fault plan from argument / environment / empty.

    Accepts an already-parsed :class:`FaultPlan` (returned as-is, keeping
    its countdown state), a spec string, or ``None`` — which falls back to
    ``REPRO_FAULT_PLAN``, mirroring the legacy ``resolve_*`` helpers for
    direct, engine-less calls.
    """
    if isinstance(spec, FaultPlan):
        return spec
    if spec is None:
        spec = env_str(ENV_FAULT_PLAN)
    return FaultPlan.parse(spec)


def random_spec(seed: int) -> str:
    """One random single-fault spec for the chaos CI leg.

    Deterministic in *seed* (which CI prints), so any chaos failure is
    reproducible with ``REPRO_FAULT_PLAN="$(python -c ...random_spec(seed))"``.
    Draws only from :data:`POOL_POINTS`: an ambient ``io.*`` rule would
    SIGKILL the test process itself mid-save — those belong to the
    kill-torture harness, which scripts them into writer *subprocesses*
    (see :func:`random_io_spec`).
    """
    rng = random.Random(seed)
    point = rng.choice(POOL_POINTS)
    parts = [point]
    if point in WORKER_POINTS and rng.random() < 0.5:
        parts.append(f"task={rng.randrange(3)}")
    parts.append(f"times={rng.randrange(1, 3)}")
    if point == "worker.hang":
        # Hang "forever" relative to the chaos leg's REPRO_TASK_TIMEOUT.
        parts.append("seconds=30")
    return ":".join(parts)


#: ``(point, stage)`` pairs reachable on a normal ``save_index`` (the
#: delta-append path); the torture harness enumerates these exhaustively
#: and :func:`random_io_spec` samples them for the crash-torture CI leg.
IO_SAVE_SITES = (
    ("io.fsync", "text.tmp"),
    ("io.replace", "text.replace"),
    ("io.fsync", "text.dir"),
    ("io.write", "delta.record"),
    ("io.fsync", "delta.record"),
    ("io.write", "delta.header"),
    ("io.fsync", "delta.header"),
)

#: Additional sites of the full-rewrite (compacting) save path.
IO_REWRITE_SITES = (
    ("io.write", "sidecar.header"),
    ("io.fsync", "sidecar.tmp"),
    ("io.replace", "sidecar.replace"),
    ("io.fsync", "sidecar.dir"),
)


def random_io_spec(seed: int) -> str:
    """One random crash-point spec for the kill-torture CI leg.

    Deterministic in *seed* (which CI prints).  Picks a ``(point, stage)``
    site that a delta-append or compacting save actually reaches, plus a
    random torn-write offset for ``io.write`` points, so every draw kills
    the torture writer somewhere real.
    """
    rng = random.Random(seed)
    point, stage = rng.choice(IO_SAVE_SITES + IO_REWRITE_SITES)
    parts = [point, f"stage={stage}", "times=1"]
    if point == "io.write":
        parts.append(f"offset={rng.randrange(0, 24)}")
    return ":".join(parts)
