"""TA-based top-k sub-unit search (Algorithm 2, Section V-A).

Given a query star ``s_q``, find the ``k`` database stars with the smallest
star edit distance without scanning the whole catalog.  Equation (1) rewrites
the SED so that, ignoring the non-negative root term,

* for stars with ``|L_i| ≤ |L_q|``:  ``λ = 2·|L_q| − (ψ + |L_i|)``,
* for stars with ``|L_i| > |L_q|``:  ``λ = −|L_q| − (ψ − 2·|L_i|)``,

where ``ψ`` is the number of common leaf labels.  Both are monotone in the
per-list quantities the lower-level index sorts by — label frequencies
(descending) and leaf size (descending towards ``|L_q|`` on the low side,
ascending on the high side) — so Fagin's Threshold Algorithm applies: do
sorted round-robin access, compute the exact SED of every star seen, and
halt once the threshold ``ω`` built from the *last seen* frequencies/sizes
can no longer beat the current k-th best.

The two sides run as two independent TA passes that share one top-k heap.

Since the columnar mirror (:mod:`repro.perf.columnar`) landed, TA is one of
*two* interchangeable top-k backends:

* ``ta`` — the round-robin threshold algorithm above: few accesses when k
  is small relative to the catalog and the query's labels are selective;
* ``scan`` — one vectorized SED sweep over the whole columnar catalog
  followed by an ``argpartition``: a constant, tiny per-row cost that wins
  whenever TA would have to touch a sizeable catalog fraction anyway.

Both return the *k lexicographically smallest* ``(sed, sid)`` pairs — the
TA pass halts only when the threshold strictly exceeds the k-th best SED,
so even tie sids are deterministic and the two backends are result-identical.
:func:`top_k_stars` picks a backend per search: an explicit argument, then
the ``REPRO_TOPK_BACKEND`` environment variable (``ta`` / ``scan`` /
``auto``), then the adaptive planner (:func:`plan_topk_backend`), whose
cost model weighs live-star count, k and label selectivity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import ENV_TOPK_BACKEND, env_str
from ..graphs.star import Star, star_edit_distance
from ..perf.columnar import columnar_snapshot, numpy_available
from ..perf.sed_cache import cached_star_edit_distance
from .index import LowerEntry, TwoLevelIndex
from .merge import merge_groups

#: Recognised backend names.
TOPK_BACKENDS = ("ta", "scan", "auto")

# Planner cost-model constants, in units of "one TA sorted access" (a
# Python-level heap push + scalar Lemma 1, ~5 µs).  Calibrated against the
# crossover curve of benchmarks/bench_columnar_scan.py: a vectorized row
# costs ~3 orders of magnitude less than a sorted access, a scan pays about
# one access-equivalent of numpy dispatch per distinct query label, and TA
# observably needs ~10 accesses per requested entry per stream before the
# threshold can halt (its Figure 20 curves flatten near there too).
SCAN_ROW_COST = 0.002
SCAN_SETUP_COST = 1.0
TA_ACCESS_ESTIMATE_PER_K = 10.0


@dataclass
class TopKResult:
    """Result of a top-k sub-unit search.

    Attributes
    ----------
    entries:
        ``(sid, sed)`` pairs sorted by increasing SED (ties by sid); at most
        k of them.
    kth_sed:
        Guaranteed floor on the SED of any star *not* in ``entries``
        (the CA stage builds its bounds from this).  When fewer than k
        stars exist at all, there is no star outside the result and the
        floor is ``+inf``.
    exhaustive:
        True when the search saw every live star (no threshold halt).
    accesses:
        Number of sorted accesses performed (Figure 20's overhead metric).
        Zero for the scan backend, which performs none.
    backend:
        Which backend produced the result (``"ta"`` or ``"scan"``).
    scan_width:
        Rows scored by the vectorized scan (zero for the TA backend) — the
        scan-side analogue of ``accesses``.
    """

    entries: List[Tuple[int, int]]
    kth_sed: float
    exhaustive: bool
    accesses: int = 0
    backend: str = "ta"
    scan_width: int = 0


class _TopKHeap:
    """Fixed-capacity max-heap of (sed, sid) keeping the k smallest SEDs."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[Tuple[int, int]] = []  # (-sed, -sid): max-heap

    def offer(self, sid: int, sed: int) -> None:
        item = (-sed, -sid)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    def worst(self) -> Optional[int]:
        """Current k-th best SED, or None while the heap is not full."""
        if len(self._heap) < self.k:
            return None
        return -self._heap[0][0]

    def bound(self) -> float:
        """Halting bound: k-th best SED, or +inf while under-full."""
        worst = self.worst()
        return float("inf") if worst is None else float(worst)

    def items(self) -> List[Tuple[int, int]]:
        """``(sid, sed)`` sorted by (sed, sid) ascending."""
        return sorted(((-s, -d) for d, s in self._heap), key=lambda p: (p[1], p[0]))


def resolve_topk_backend(backend: Optional[str] = None) -> str:
    """Resolve the backend name from argument / environment / ``auto``.

    An unknown *explicit* name raises (fail fast, mirroring the assignment
    backend registry); an unknown environment value degrades to ``auto``
    so one bad shell export cannot take queries down.
    """
    if backend is not None:
        if backend not in TOPK_BACKENDS:
            raise ValueError(
                f"unknown top-k backend {backend!r} (expected one of {TOPK_BACKENDS})"
            )
        return backend
    env = env_str(ENV_TOPK_BACKEND).strip().lower()
    return env if env in TOPK_BACKENDS else "auto"


def plan_topk_backend(index: TwoLevelIndex, query: Star, k: int) -> str:
    """The adaptive planner: pick ``ta`` or ``scan`` for this search.

    Cost model, in units of one TA sorted access:

    * ``scan`` costs a fixed numpy dispatch overhead per distinct query
      label plus :data:`SCAN_ROW_COST` per live star (every row is scored);
    * ``ta`` costs at most every posting under the query's labels plus the
      full size list (it cannot access more), and when k is small it
      typically halts after roughly :data:`TA_ACCESS_ESTIMATE_PER_K`
      accesses per requested entry per stream.

    Degenerate cases short-circuit: no numpy or no generation counter means
    no columnar mirror (``ta``); ``k`` at or beyond the catalog size means
    TA degenerates to an exhaustive scan with Python-level constants
    (``scan``).
    """
    if not numpy_available():
        return "ta"
    if getattr(index, "generation", None) is None:
        return "ta"
    n = len(index.catalog)
    if n == 0:
        return "ta"
    if k >= n:
        return "scan"
    labels = set(query.leaves)
    streams = len(labels) + 1  # one merged stream per label + the size list
    counter = getattr(index.lower, "label_postings_count", None)
    if counter is not None:
        postings = sum(counter(label) for label in labels)
    else:  # pragma: no cover - every in-tree backend exposes the counter
        postings = sum(len(index.lower.label_list(label)) for label in labels)
    ta_cap = postings + n  # TA can never perform more sorted accesses
    ta_est = min(ta_cap, TA_ACCESS_ESTIMATE_PER_K * k * streams)
    scan_est = SCAN_SETUP_COST * streams + SCAN_ROW_COST * n
    return "scan" if scan_est <= ta_est else "ta"


def top_k_stars(
    index: TwoLevelIndex,
    query: Star,
    k: int,
    *,
    backend: Optional[str] = None,
) -> TopKResult:
    """Algorithm 2 (or its columnar full-scan equivalent): the k most
    similar database stars to *query*.

    ``backend`` overrides the ``REPRO_TOPK_BACKEND`` environment variable;
    ``"auto"`` (the default) defers to :func:`plan_topk_backend`.  Both
    backends return identical entries and ``kth_sed`` floors.

    Examples are in ``tests/test_ta_search.py`` (including Figure 8's
    worked run).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    choice = resolve_topk_backend(backend)
    if choice == "auto":
        choice = plan_topk_backend(index, query, k)
    if choice == "scan":
        result = _top_k_scan(index, query, k)
        if result is not None:
            return result
    return _top_k_ta(index, query, k)


def _top_k_scan(index: TwoLevelIndex, query: Star, k: int) -> Optional[TopKResult]:
    """One vectorized SED sweep over the columnar mirror + argpartition."""
    snapshot = columnar_snapshot(index)
    if snapshot is None:
        return None
    entries, width = snapshot.top_k(query, k)
    kth: float = float(entries[-1][1]) if len(entries) == k else float("inf")
    return TopKResult(
        entries=entries,
        kth_sed=kth,
        exhaustive=True,
        accesses=0,
        backend="scan",
        scan_width=width,
    )


def _top_k_ta(index: TwoLevelIndex, query: Star, k: int) -> TopKResult:
    """The round-robin threshold-algorithm backend."""
    heap = _TopKHeap(k)
    seen: set = set()
    catalog = index.catalog
    accesses = 0

    leaf_counts = sorted(query.leaf_counter().items())
    lq = query.leaf_size

    low_size, high_size = index.lower.split_size_list(lq)

    def run_side(low: bool, size_entries: List[LowerEntry]) -> bool:
        """One TA pass; returns True if it halted via the threshold."""
        nonlocal accesses
        label_streams: List[Iterator[LowerEntry]] = []
        last_freq: List[float] = []
        for label, _count in leaf_counts:
            low_groups, high_groups = index.lower.split_label_list(label, lq)
            stream = merge_groups(low_groups if low else high_groups)
            label_streams.append(stream)
            last_freq.append(0.0)  # replaced on first access
        size_iter = iter(size_entries)
        last_size: float = 0.0

        exhausted = [False] * len(label_streams)
        size_exhausted = False
        while True:
            progressed = False
            # Round-robin: each label list, then the size list.
            for j, stream in enumerate(label_streams):
                if exhausted[j]:
                    continue
                entry = next(stream, None)
                if entry is None:
                    exhausted[j] = True
                    last_freq[j] = 0.0  # unseen stars miss this list: ψ_j = 0
                    continue
                accesses += 1
                progressed = True
                last_freq[j] = float(entry.freq)
                if entry.sid not in seen:
                    seen.add(entry.sid)
                    # Equation (1)'s exact-SED evaluation of a seen star; the
                    # memo cache absorbs the massive signature repetition
                    # across queries sharing vocabulary.
                    heap.offer(
                        entry.sid,
                        cached_star_edit_distance(query, catalog.star(entry.sid)),
                    )
            if not size_exhausted:
                entry = next(size_iter, None)
                if entry is None:
                    size_exhausted = True
                else:
                    accesses += 1
                    progressed = True
                    last_size = float(entry.leaf_size)
                    if entry.sid not in seen:
                        seen.add(entry.sid)
                        heap.offer(
                            entry.sid,
                            cached_star_edit_distance(query, catalog.star(entry.sid)),
                        )
            if size_exhausted:
                # Every star on this side lives in the size list, so an
                # exhausted size list means the side has been fully seen.
                return False
            if not progressed:
                return False
            # Threshold test (step 2 of Algorithm 2).  t(χ̄) caps each
            # list's contribution by the query's own label multiplicity.
            t_chi = sum(
                min(float(count), last_freq[j])
                for j, (_, count) in enumerate(leaf_counts)
            )
            if low:
                omega = 2 * lq - (t_chi + last_size)
            else:
                omega = -lq - (t_chi - 2 * last_size)
            # Strict comparison: ω == k-th SED may hide unseen ties with
            # smaller sids, and backend-identical results (scan vs TA)
            # require even the tie sids to be deterministic.  Unseen stars
            # have SED ≥ ω, so halting at ω > k-th keeps every (sed, sid)
            # that could enter the final answer.
            if omega > heap.bound():
                return True

    halted_low = run_side(True, low_size)
    halted_high = run_side(False, high_size)

    entries = heap.items()
    exhaustive = not halted_low and not halted_high
    # A threshold halt requires a full heap, so len(entries) < k implies the
    # catalog itself has fewer than k stars: nothing lives outside the
    # result and the outside-SED floor is unbounded.
    kth: float = float(entries[-1][1]) if len(entries) == k else float("inf")
    return TopKResult(entries=entries, kth_sed=kth, exhaustive=exhaustive, accesses=accesses)


def brute_force_top_k(index: TwoLevelIndex, query: Star, k: int) -> List[Tuple[int, int]]:
    """Reference implementation: scan every live star (tests compare to this)."""
    scored = [
        (sid, star_edit_distance(query, index.catalog.star(sid)))
        for sid in index.catalog.live_sids()
    ]
    scored.sort(key=lambda p: (p[1], p[0]))
    return scored[:k]
