"""Execute the doctest examples embedded in the public-facing modules."""

from __future__ import annotations

import doctest
import importlib

import pytest

# Resolved via importlib because `from .hungarian import hungarian` in the
# package __init__ shadows the submodule attribute with the function.
MODULE_NAMES = [
    "repro",
    "repro.core.engine",
    "repro.core.knn",
    "repro.core.pipeline",
    "repro.core.subsearch",
    "repro.graphs.edit_distance",
    "repro.graphs.model",
    "repro.graphs.star",
    "repro.graphs.isomorphism",
    "repro.graphs.subgraph_distance",
    "repro.matching.hungarian",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    # Every module listed here is expected to actually carry examples.
    assert result.attempted > 0
