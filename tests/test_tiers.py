"""Composable filter tiers (repro.core.tiers + plan wiring).

Three contracts under test:

* **Soundness** — every tier's lower bound never exceeds the exact GED,
  and the anchor's upper bound never undercuts it, so adding tiers can
  only prune provable non-answers and settle provable matches.
* **Identity** — the full five-tier chain answers byte-identically to
  the legacy ``ta -> ca -> verify`` chain across every query mode
  (serial, batch, pipelined, sharded, kNN, join) plus subsearch.
* **Configuration** — ``filter_tiers`` validation (order, duplicates,
  unknown names, required tiers) and the env knob's degrade-to-default
  behaviour.

Plus the satellite guards: the aggregation-bound chain stays deduped in
``core/bounds.py`` (grep guard), and a sidecar predating the embedding
sections degrades loudly to an on-the-fly build with identical answers.
"""

from __future__ import annotations

import hashlib
import pathlib
import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    DEFAULT_FILTER_TIERS,
    ENV_FILTER_TIERS,
    FULL_TIER_CHAIN,
    EngineConfig,
    validate_filter_tiers,
)
from repro.core.engine import SegosIndex
from repro.core.join import similarity_self_join
from repro.core.knn import knn_query
from repro.core.persistence import load_index, save_index
from repro.core.pipeline import PipelinedSegos
from repro.core.subsearch import SubgraphSearch
from repro.core.tiers import (
    COST_CLASSES,
    AnchorTier,
    EmbedTier,
    anchor_bounds,
    resolve_tier_chain,
)
from repro.graphs.edit_distance import graph_edit_distance, trivial_lower_bound
from repro.graphs.model import Graph
from repro.perf.columnar import GraphEmbeddings

LABELS = "abc"

labels_st = st.sampled_from(LABELS)


@st.composite
def graph_st(draw, max_order=5):
    order = draw(st.integers(min_value=1, max_value=max_order))
    graph = Graph([draw(labels_st) for _ in range(order)])
    for u in range(order):
        for v in range(u + 1, order):
            if draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


corpus_st = st.lists(graph_st(), min_size=2, max_size=6)

FULL = ",".join(FULL_TIER_CHAIN)


def build_engine(graphs, **config) -> SegosIndex:
    engine = SegosIndex(**config)
    for i, graph in enumerate(graphs):
        engine.add(f"g{i}", graph)
    return engine


def canonical(result):
    return (sorted(map(str, result.candidates)), sorted(map(str, result.matches)))


# ----------------------------------------------------------------------
# Tier soundness (hypothesis)
# ----------------------------------------------------------------------
class TestTierSoundness:
    @settings(deadline=None, max_examples=40)
    @given(q=graph_st(), g=graph_st())
    def test_embed_bound_is_admissible(self, q, g):
        ged = graph_edit_distance(q, g)
        assert EmbedTier().lower_bound(q, g) <= ged

    @settings(deadline=None, max_examples=40)
    @given(q=graph_st(), g=graph_st())
    def test_anchor_bounds_bracket_exact_ged(self, q, g):
        lower, upper = anchor_bounds(q, g)
        ged = graph_edit_distance(q, g)
        assert lower <= ged <= upper

    @settings(deadline=None, max_examples=40)
    @given(q=graph_st(), g=graph_st())
    def test_anchor_identity_settles_immediately(self, q, g):
        lower, upper = anchor_bounds(q, q)
        assert lower == upper == 0
        assert AnchorTier().lower_bound(q, g) == anchor_bounds(q, g)[0]

    @settings(
        deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st())
    def test_vectorized_sweep_matches_pairwise_spec(self, corpus, query):
        # The batch sweep (numpy or pure-Python fallback) must agree
        # element-wise with the pairwise executable specification.
        pairs = [(f"g{i}", g) for i, g in enumerate(corpus)]
        emb = GraphEmbeddings.build(pairs, generation=0)
        swept = emb.lower_bounds(query)
        assert list(emb.gids) == [gid for gid, _ in pairs]
        for (gid, graph), value in zip(pairs, swept):
            assert int(value) == trivial_lower_bound(query, graph), gid

    def test_pure_python_sweep_matches_numpy_sweep(self, monkeypatch):
        from repro.perf import columnar

        corpus = [
            Graph(["a", "b", "c"], [(0, 1), (1, 2)]),
            Graph(["a", "a"], [(0, 1)]),
            Graph(["x"], []),
            Graph(["b", "c", "b", "a"], [(0, 1), (1, 2), (2, 3), (0, 3)]),
        ]
        pairs = [(f"g{i}", g) for i, g in enumerate(corpus)]
        query = Graph(["a", "b"], [(0, 1)])
        emb = GraphEmbeddings.build(pairs, generation=0)
        with_numpy = [int(v) for v in emb.lower_bounds(query)]
        monkeypatch.setattr(columnar, "_np", None)
        without = [int(v) for v in emb.lower_bounds(query)]
        assert with_numpy == without
        assert without == [trivial_lower_bound(query, g) for g in corpus]


# ----------------------------------------------------------------------
# Full chain == legacy chain, every query mode
# ----------------------------------------------------------------------
class TestChainIdentity:
    @settings(
        deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st(), tau=st.sampled_from([0, 1, 2, 4]))
    def test_range_query_identity(self, corpus, query, tau):
        legacy = build_engine(corpus)
        full = build_engine(corpus, filter_tiers=FULL)
        lhs = legacy.range_query(query, tau=tau, verify="exact")
        rhs = full.range_query(query, tau=tau, verify="exact")
        assert sorted(map(str, lhs.matches)) == sorted(map(str, rhs.matches))
        # Extra tiers may shrink the candidate pool but never the answers.
        assert set(map(str, rhs.candidates)) <= set(map(str, lhs.candidates))

    @settings(
        deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st())
    def test_batch_pipelined_sharded_identity(self, corpus, query):
        legacy = build_engine(corpus)
        full = build_engine(corpus, filter_tiers=FULL)
        want = sorted(map(str, legacy.range_query(query, tau=2, verify="exact").matches))

        batch = full.batch_range_query([query], tau=2, verify="exact")[0]
        assert sorted(map(str, batch.matches)) == want

        piped = PipelinedSegos(full).range_query(query, tau=2, verify="exact")
        assert sorted(map(str, piped.matches)) == want

        sharded = build_engine(corpus, filter_tiers=FULL, shards=2)
        scat = sharded.range_query(query, tau=2, verify="exact")
        assert sorted(map(str, scat.matches)) == want

    @settings(
        deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(corpus=corpus_st, query=graph_st())
    def test_knn_join_subsearch_identity(self, corpus, query):
        legacy = build_engine(corpus)
        full = build_engine(corpus, filter_tiers=FULL)

        k = min(2, len(corpus))
        lhs = knn_query(legacy, query, k=k)
        rhs = knn_query(full, query, k=k)
        assert sorted(d for _, d in lhs.neighbours) == sorted(
            d for _, d in rhs.neighbours
        )

        assert (
            similarity_self_join(legacy, tau=1, verify="exact").matches
            == similarity_self_join(full, tau=1, verify="exact").matches
        )

        # Subsearch keeps its own adapted plan (sub-GED is not a metric;
        # the GED tiers would be unsound there) — but the engine config
        # carrying a full chain must not perturb its answers.
        sub_l = SubgraphSearch(legacy).range_query(query, tau=1, verify="exact")
        sub_r = SubgraphSearch(full).range_query(query, tau=1, verify="exact")
        assert sorted(map(str, sub_l.matches)) == sorted(map(str, sub_r.matches))

    def test_tier_stats_surface(self):
        corpus = [
            Graph(["a", "b"], [(0, 1)]),
            Graph(["a", "b", "c"], [(0, 1), (1, 2)]),
            Graph(["x", "y", "z", "x", "y"], [(0, 1), (1, 2), (2, 3), (3, 4)]),
        ]
        engine = build_engine(corpus, filter_tiers=FULL)
        result = engine.range_query(corpus[0], tau=1, verify="exact")
        assert result.stats.pruned_by.get("embed", 0) >= 1
        assert "embed" in result.stats.tier_bounds
        assert result.stats.anchor_settled >= 1
        summary = result.stats.summary()
        assert "anchor settled" in summary
        for stage in ("embed", "anchor"):
            assert stage in result.stats.stage_seconds


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
class TestTierConfig:
    def test_default_chain_is_the_paper_chain(self):
        assert EngineConfig().filter_tiers == DEFAULT_FILTER_TIERS
        assert resolve_tier_chain() == DEFAULT_FILTER_TIERS
        assert tuple(COST_CLASSES) == FULL_TIER_CHAIN

    def test_accepts_comma_string_and_iterable(self):
        assert validate_filter_tiers("embed,ta,ca,verify") == (
            "embed",
            "ta",
            "ca",
            "verify",
        )
        assert validate_filter_tiers(["ta", "ca", "anchor", "verify"]) == (
            "ta",
            "ca",
            "anchor",
            "verify",
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "bogus,ta,ca,verify",  # unknown tier
            "ta,ta,ca,verify",  # duplicate
            "ca,ta,verify",  # out of chain order
            "embed,anchor,verify",  # missing required ta/ca
            "ta,ca",  # missing verify
            "",
        ],
    )
    def test_rejects_malformed_chains(self, bad):
        with pytest.raises(ValueError):
            validate_filter_tiers(bad)

    def test_env_knob_applies(self, monkeypatch):
        monkeypatch.setenv(ENV_FILTER_TIERS, FULL)
        assert EngineConfig.from_env().filter_tiers == FULL_TIER_CHAIN

    def test_invalid_env_degrades_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_FILTER_TIERS, "bogus")
        assert EngineConfig.from_env().filter_tiers == DEFAULT_FILTER_TIERS

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FILTER_TIERS, FULL)
        engine = SegosIndex(filter_tiers="ta,ca,verify")
        assert engine.filter_tiers == DEFAULT_FILTER_TIERS

    def test_per_query_override(self):
        corpus = [Graph(["a", "b"], [(0, 1)]), Graph(["c"], [])]
        engine = build_engine(corpus)
        result = engine.range_query(
            corpus[0], tau=0, verify="exact", filter_tiers=FULL
        )
        assert "embed" in result.stats.tier_bounds
        # The engine's own config is untouched by the per-query override.
        assert engine.filter_tiers == DEFAULT_FILTER_TIERS

    def test_chain_survives_persistence(self, tmp_path):
        engine = build_engine(
            [Graph(["a", "b"], [(0, 1)]), Graph(["a", "c"], [(0, 1)])],
            filter_tiers=FULL,
        )
        path = tmp_path / "db.segos"
        save_index(engine, path)
        loaded = load_index(path)
        assert loaded.filter_tiers == FULL_TIER_CHAIN


# ----------------------------------------------------------------------
# Satellite guards
# ----------------------------------------------------------------------
SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


class TestBoundsDedup:
    def test_full_bound_chain_lives_only_in_bounds_module(self):
        # The ζ ≤ L_µ ≤ µ ≤ U_µ settle chain was once pasted into three
        # call sites; it now lives in core/bounds.py alone.  Nobody else
        # may import the raw mapping bounds to rebuild it.
        pattern = re.compile(r"from\s+\.\.?matching\.mapping\s+import\s+.*\bbounds\b")
        offenders = []
        for path in (SRC / "core").glob("*.py"):
            if path.name == "bounds.py":
                continue
            if pattern.search(path.read_text()):
                offenders.append(path.name)
        assert not offenders, f"raw bound-chain import leaked into {offenders}"

    def test_settlers_route_through_shared_helper(self):
        for module in ("ca_search.py", "pipeline.py", "verify.py"):
            text = (SRC / "core" / module).read_text()
            assert "settle_by_full_bounds" in text, module


class TestStaleSidecarDegradation:
    def _engine(self):
        return build_engine(
            [
                Graph(["a", "b"], [(0, 1)]),
                Graph(["a", "b", "c"], [(0, 1), (1, 2)]),
                Graph(["x", "y"], [(0, 1)]),
            ],
            filter_tiers=FULL,
        )

    def test_pre_embedding_sidecar_degrades_loudly(self, tmp_path):
        import dataclasses

        from repro.perf import diskcat

        engine = self._engine()
        path = tmp_path / "db.segos"
        save_index(engine, path)
        sidecar = pathlib.Path(str(path) + ".segosx")
        assert sidecar.exists()

        fresh = load_index(path)
        query = Graph(["a", "b"], [(0, 1)])
        want = fresh.range_query(query, tau=1, verify="exact")
        assert not want.stats.degradations

        # Rewrite the sidecar in the pre-embedding layout, as an index
        # built by an older release would have left it.
        data = path.read_bytes()
        diskcat.write_sidecar(
            sidecar,
            list(fresh._graphs.items()),
            config=dataclasses.asdict(fresh.config),
            generation=0,
            source_size=len(data),
            source_sha=hashlib.sha256(data).digest(),
            embeddings=False,
        )
        stale = load_index(path)
        got = stale.range_query(query, tau=1, verify="exact")
        assert canonical(got) == canonical(want)
        events = [e for e in got.stats.degradations if e.point == "embeddings.sidecar"]
        assert events, "missing-embeddings fallback must be loud"
        assert events[0].fallback == "recompute"

    def test_fresh_sidecar_carries_embeddings(self, tmp_path):
        from repro.perf import diskcat

        engine = self._engine()
        path = tmp_path / "db.segos"
        save_index(engine, path)
        disk = diskcat.DiskCatalog(pathlib.Path(str(path) + ".segosx"))
        try:
            assert disk.has_embeddings()
            assert disk.embedding_bytes() > 0
        finally:
            disk.close()
