"""Tests for the two-level inverted index (Section IV), incl. Figures 5/6."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import (
    GraphAlreadyIndexed,
    GraphNotIndexed,
    IndexCorruptionError,
)
from repro.graphs.model import Graph
from repro.graphs.star import Star, decompose
from repro.core.index import GraphMeta, StarCatalog, TwoLevelIndex


def build_paper_index(paper_g1, paper_g2) -> TwoLevelIndex:
    index = TwoLevelIndex()
    index.add_graph("g1", paper_g1, decompose(paper_g1))
    index.add_graph("g2", paper_g2, decompose(paper_g2))
    return index


class TestStarCatalog:
    def test_acquire_release_lifecycle(self):
        catalog = StarCatalog()
        sid, created = catalog.acquire(Star("a", "bb"))
        assert created
        sid2, created2 = catalog.acquire(Star("a", "bb"))
        assert sid2 == sid and not created2
        assert not catalog.release(sid)
        assert catalog.release(sid)  # last ref: star dies
        assert catalog.sid(Star("a", "bb")) is None

    def test_sid_reuse_after_death(self):
        catalog = StarCatalog()
        sid, _ = catalog.acquire(Star("a"))
        catalog.release(sid)
        sid2, _ = catalog.acquire(Star("b"))
        assert sid2 == sid  # freed id recycled
        assert catalog.star(sid2) == Star("b")

    def test_star_of_dead_sid_raises(self):
        catalog = StarCatalog()
        sid, _ = catalog.acquire(Star("a"))
        catalog.release(sid)
        with pytest.raises(IndexCorruptionError):
            catalog.star(sid)

    def test_over_release_raises(self):
        catalog = StarCatalog()
        sid, _ = catalog.acquire(Star("a"))
        with pytest.raises(IndexCorruptionError):
            catalog.release(sid, count=2)

    def test_len_counts_live_stars(self):
        catalog = StarCatalog()
        catalog.acquire(Star("a"))
        catalog.acquire(Star("b"))
        catalog.acquire(Star("a"))
        assert len(catalog) == 2


class TestUpperLevel:
    """Figure 5: the upper-level index over the paper's g1, g2."""

    def test_postings_content(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        catalog = index.catalog

        def postings_for(signature):
            sid = catalog.sid(Star(signature[0], signature[1:]))
            return [(e.gid, e.freq) for e in index.upper.postings(sid)]

        # Figure 5's seven lists (signature → [(gid, freq)]).
        assert postings_for("abbcc") == [("g1", 1)]
        assert postings_for("abbccd") == [("g2", 1)]
        assert postings_for("bab") == [("g1", 1), ("g2", 1)]
        assert postings_for("babcc") == [("g1", 1)]
        assert postings_for("babccd") == [("g2", 1)]
        assert postings_for("cab") == [("g1", 2), ("g2", 2)]
        assert postings_for("dab") == [("g2", 1)]

    def test_lists_sorted_by_graph_size(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        sid = index.catalog.sid(Star("c", "ab"))
        orders = [e.order for e in index.upper.postings(sid)]
        assert orders == sorted(orders)
        assert orders == [5, 6]

    def test_split_by_order(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        sid = index.catalog.sid(Star("c", "ab"))
        small, large = index.upper.split_by_order(sid, 5)
        assert [e.gid for e in small] == ["g1"]
        assert [e.gid for e in large] == ["g2"]

    def test_split_unknown_sid(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        assert index.upper.split_by_order(99999, 5) == ([], [])

    def test_distinct_star_count(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        assert len(index.catalog) == 7  # s0..s6 of Figure 5


class TestLowerLevel:
    """Figure 6: the lower-level index over the same catalog."""

    def test_label_list_grouping(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        entries = index.lower.label_list("b")
        # Groups by leaf size ascending: sizes 2, 2, 2 then 4, 4 then 5, 5;
        # within each group frequency descending.
        sizes = [e.leaf_size for e in entries]
        assert sizes == sorted(sizes)
        by_size = {}
        for e in entries:
            by_size.setdefault(e.leaf_size, []).append(e.freq)
        for freqs in by_size.values():
            assert freqs == sorted(freqs, reverse=True)
        # Figure 6: the size-4 group has abbcc with freq 2 first.
        assert by_size[4] == [2, 1]
        assert by_size[5] == [2, 1]

    def test_label_list_frequencies(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        catalog = index.catalog
        c_list = {e.sid: e.freq for e in index.lower.label_list("c")}
        sid_abbcc = catalog.sid(Star("a", "bbcc"))
        assert c_list[sid_abbcc] == 2

    def test_unknown_label_is_empty(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        assert index.lower.label_list("zz") == []

    def test_split_label_list(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        low_groups, high_groups = index.lower.split_label_list("b", 4)
        low_sizes = [g[0].leaf_size for g in low_groups]
        high_sizes = [g[0].leaf_size for g in high_groups]
        assert all(s <= 4 for s in low_sizes)
        assert all(s > 4 for s in high_sizes)

    def test_size_list_split_orders(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        low, high = index.lower.split_size_list(4)
        # Low side must be served in decreasing leaf size (Figure 8).
        assert [e.leaf_size for e in low] == sorted(
            (e.leaf_size for e in low), reverse=True
        )
        assert [e.leaf_size for e in high] == sorted(e.leaf_size for e in high)
        assert all(e.leaf_size <= 4 for e in low)
        assert all(e.leaf_size > 4 for e in high)

    def test_size_list_covers_all_stars(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        low, high = index.lower.split_size_list(999)
        assert len(low) == 7 and high == []


class TestGraphUpdates:
    def test_add_duplicate_gid_rejected(self, paper_g1):
        index = TwoLevelIndex()
        index.add_graph("g", paper_g1, decompose(paper_g1))
        with pytest.raises(GraphAlreadyIndexed):
            index.add_graph("g", paper_g1, decompose(paper_g1))

    def test_remove_unknown_gid_rejected(self):
        with pytest.raises(GraphNotIndexed):
            TwoLevelIndex().remove_graph("nope")

    def test_meta_unknown_gid(self):
        with pytest.raises(GraphNotIndexed):
            TwoLevelIndex().meta("nope")

    def test_remove_graph_clears_everything(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        index.remove_graph("g1")
        index.remove_graph("g2")
        assert len(index) == 0
        assert len(index.catalog) == 0
        assert index.size_estimate() == 0

    def test_remove_one_graph_keeps_shared_stars(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        index.remove_graph("g1")
        # 'cab' and 'bab' survive via g2; g1-only stars are gone.
        assert index.catalog.sid(Star("c", "ab")) is not None
        assert index.catalog.sid(Star("a", "bbcc")) is None
        index.check_consistency()

    def test_apply_star_delta_matches_rebuild(self, paper_g1):
        """Edge insertion via delta == rebuilding the index from scratch."""
        index = TwoLevelIndex()
        index.add_graph("g", paper_g1, decompose(paper_g1))
        mutated = paper_g1.copy()
        before = [
            s
            for v, s in zip((1, 3), (None, None))
        ]  # placeholder, computed below
        from repro.graphs.star import star_at

        touched = (1, 3)
        removed = [star_at(mutated, v) for v in touched]
        mutated.add_edge(1, 3)
        added = [star_at(mutated, v) for v in touched]
        index.apply_star_delta(
            "g", removed, added, GraphMeta(mutated.order, mutated.max_degree())
        )
        index.check_consistency()
        fresh = TwoLevelIndex()
        fresh.add_graph("g", mutated, decompose(mutated))
        assert index.graph_star_counts("g") is not None
        # Compare star multisets by signature.
        sig = lambda idx: Counter(
            idx.catalog.star(sid).signature
            for sid, cnt in idx.graph_star_counts("g").items()
            for _ in range(cnt)
        )
        assert sig(index) == sig(fresh)

    def test_delta_with_unknown_star_raises(self, paper_g1):
        index = TwoLevelIndex()
        index.add_graph("g", paper_g1, decompose(paper_g1))
        with pytest.raises(IndexCorruptionError):
            index.apply_star_delta(
                "g", [Star("zz", "zz")], [], GraphMeta(5, 4)
            )

    def test_database_max_degree_tracks_updates(self, paper_g1, paper_g2):
        index = TwoLevelIndex()
        index.add_graph("g1", paper_g1, decompose(paper_g1))
        assert index.database_max_degree() == 4
        index.add_graph("g2", paper_g2, decompose(paper_g2))
        assert index.database_max_degree() == 5
        index.remove_graph("g2")
        assert index.database_max_degree() == 4

    def test_size_estimate_positive(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        assert index.size_estimate() > 0

    def test_contains_and_gids(self, paper_g1, paper_g2):
        index = build_paper_index(paper_g1, paper_g2)
        assert "g1" in index
        assert set(index.gids()) == {"g1", "g2"}
        assert len(index) == 2

    def test_consistency_check_passes(self, paper_g1, paper_g2):
        build_paper_index(paper_g1, paper_g2).check_consistency()
