"""Tests for the batch range-query API (shared TA cache, Figure 11)."""

from __future__ import annotations

import pytest

from repro.core.engine import SegosIndex
from repro.datasets import aids_like, sample_queries
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def batch_setup():
    data = aids_like(40, seed=5, mean_order=8, stddev=2)
    engine = SegosIndex(data.graphs, k=15, h=40)
    return data, engine


class TestBatchRangeQuery:
    def test_same_answers_as_individual_queries(self, batch_setup):
        data, engine = batch_setup
        queries = sample_queries(data, 4, seed=9)
        batch = engine.batch_range_query(queries, tau=2)
        for query, result in zip(queries, batch):
            solo = engine.range_query(query, tau=2)
            assert set(result.candidates) == set(solo.candidates)
            assert result.matches == solo.matches

    def test_shared_cache_saves_ta_searches(self, batch_setup):
        data, engine = batch_setup
        query = sample_queries(data, 1, seed=9)[0]
        repeats = [query, query.copy(), query.copy()]
        batch = engine.batch_range_query(repeats, tau=2)
        solo = [engine.range_query(q, tau=2) for q in repeats]
        assert sum(r.stats.ta_searches for r in batch) < sum(
            r.stats.ta_searches for r in solo
        )
        # Answers are unaffected by the cache.
        assert all(
            set(b.candidates) == set(s.candidates) for b, s in zip(batch, solo)
        )

    def test_verified_batch(self, batch_setup):
        data, engine = batch_setup
        queries = sample_queries(data, 2, seed=10)
        batch = engine.batch_range_query(queries, tau=1, verify="exact")
        for query, result in zip(queries, batch):
            assert result.verified
            assert result.matches == engine.range_query(
                query, tau=1, verify="exact"
            ).matches

    def test_empty_batch(self, batch_setup):
        _, engine = batch_setup
        assert engine.batch_range_query([], tau=1) == []

    def test_validation(self, batch_setup):
        _, engine = batch_setup
        with pytest.raises(ValueError):
            engine.batch_range_query([Graph(["a"])], tau=1, verify="bogus")
        with pytest.raises(ValueError):
            engine.batch_range_query([Graph()], tau=1)
        with pytest.raises(ValueError):
            engine.batch_range_query([Graph(["a"])], tau=-1)
