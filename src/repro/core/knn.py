"""k-nearest-neighbour graph queries on top of the SEGOS range machinery.

The paper studies range queries; kNN is the other classic similarity query
and falls out of the same filter stack via the standard *expanding-ring*
reduction: run range queries at growing τ until k answers are verified,
then trim to the k smallest exact distances.  All rings run through one
:class:`~repro.core.plan.QuerySession`: TA top-k results do not depend on
τ, so every ring after the first reuses the first ring's searches and pays
only the CA re-scan.  The cost is a handful of cheap range filters plus
exact GED on the few final candidates — the same verification the paper's
filter-and-verify contract assumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import SearchBudgetExceeded
from ..graphs.edit_distance import DEFAULT_BUDGET, graph_edit_distance
from ..graphs.model import Graph
from .engine import SegosIndex
from .plan import QueryResult, traced_scope
from .stats import QueryStats


@dataclass
class KnnResult(QueryResult):
    """Result of a k-nearest-neighbour query.

    A :class:`~repro.core.plan.QueryResult` — ``candidates`` lists the
    neighbour gids by distance, ``matches`` is the same set, ``stats`` /
    ``elapsed`` / ``trace`` carry the merged filter counters, wall clock
    and span-tree handle — plus the kNN-specific fields:

    ``neighbours`` holds ``(gid, exact_ged)`` sorted by distance then gid;
    ties at the k-th distance are all included, so the list may exceed k.
    ``rings`` counts the range-query rounds needed.
    """

    neighbours: List[Tuple[object, int]] = field(default_factory=list)
    rings: int = 0  # how many range-query rounds were needed


def knn_query(
    engine: SegosIndex,
    query: Graph,
    *,
    k: int,
    tau_start: int = 0,
    tau_step: int = 2,
    tau_limit: Optional[int] = None,
    budget: int = DEFAULT_BUDGET,
) -> KnnResult:
    """Return the *k* graphs nearest to *query* under exact GED.

    ``tau_limit`` caps the ring expansion (default: the destroy-and-rebuild
    bound, beyond which every graph matches).  Raises ``ValueError`` on a
    k larger than the database.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> db = SegosIndex()
    >>> db.add("near", Graph(["a", "b"], [(0, 1)]))
    >>> db.add("far", Graph(["x", "y", "z"], [(0, 1), (1, 2)]))
    >>> knn_query(db, Graph(["a", "b"], [(0, 1)]), k=1).neighbours
    [('near', 0)]
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(engine) < k:
        raise ValueError(f"database holds {len(engine)} graphs; cannot return {k}")
    if query.order == 0:
        raise ValueError("query graph must not be empty")
    if tau_step < 1:
        raise ValueError("tau_step must be >= 1")

    if tau_limit is None:
        # λ(q, g) never exceeds deleting q and building g; take the max
        # over the database once.
        biggest = max(
            engine.graph(gid).order + engine.graph(gid).size for gid in engine.gids()
        )
        tau_limit = query.order + query.size + biggest

    started = time.perf_counter()
    stats = QueryStats()
    session = engine.session()  # rings share the τ-independent TA cache
    distances: dict = {}
    rings = 0
    tau = tau_start
    with traced_scope(session.config, "knn", k=k) as tracer:
        while True:
            rings += 1
            result = session.range_query(query, tau=tau)
            stats.merge(result.stats)
            for gid in result.candidates:
                if gid in distances:
                    continue
                try:
                    exact = graph_edit_distance(
                        query, engine.graph(gid), threshold=tau, budget=budget
                    )
                except SearchBudgetExceeded:
                    exact = None  # treat as beyond this ring; retried later
                if exact is not None:
                    distances[gid] = exact
            if len(distances) >= k or tau >= tau_limit:
                break
            tau += tau_step

    ordered = sorted(distances.items(), key=lambda item: (item[1], str(item[0])))
    if len(ordered) > k:
        cutoff = ordered[k - 1][1]
        ordered = [item for item in ordered if item[1] <= cutoff]
    return KnnResult(
        candidates=[gid for gid, _ in ordered],
        matches={gid for gid, _ in ordered},
        stats=stats,
        elapsed=time.perf_counter() - started,
        verified=True,
        trace=tracer.to_trace() if tracer.enabled else None,
        neighbours=ordered,
        rings=rings,
    )
