#!/usr/bin/env python3
"""EXPLAIN for graph queries: see what each SEGOS stage did — plus the
edit script showing *how* a match differs from the query.

Run with::

    python examples/query_explain.py
"""

from repro import SegosIndex
from repro.core.explain import explain_range_query
from repro.datasets import aids_like, sample_queries
from repro.graphs.editpath import extract_edit_script, render_edit_script


def main() -> None:
    data = aids_like(200, seed=31, mean_order=10.0)
    engine = SegosIndex(data.graphs, k=30, h=100)
    query = sample_queries(data, 1, seed=37, edits=2)[0]

    explanation = explain_range_query(engine, query, tau=3)
    print(explanation.render())

    result = engine.range_query(query, tau=3, verify="exact")
    if result.matches:
        gid = sorted(result.matches)[0]
        script = extract_edit_script(query, engine.graph(gid))
        print(f"\nedit script from the query to match {gid} "
              f"({len(script)} operations):")
        print(render_edit_script(script) or "  (identical)")


if __name__ == "__main__":
    main()
